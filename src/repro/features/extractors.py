"""Digest extraction for one executable.

The three features of the paper (Section 3, "Feature Extraction"):

* ``ssdeep-file`` — fuzzy hash of the raw binary content,
* ``ssdeep-strings`` — fuzzy hash of the ``strings`` output (continuous
  printable characters),
* ``ssdeep-symbols`` — fuzzy hash of the ``nm`` output (global symbols
  from the symbol table).

plus the cryptographic digest (``sha256``) of the raw content used by
the exact-match baseline.  Stripped binaries yield an empty symbols
digest and are flagged, matching the paper's limitation discussion.

Every CTPH feature has a ``vector-*`` sibling computed over the same
content stream with the fixed-length TLSH-style digest from
:mod:`repro.hashing.vector` (``vector-file``, ``vector-strings``,
``vector-symbols``, ``vector-libs``).  Each content source — raw bytes,
``strings`` output, ``nm`` output, ``ldd`` output — is produced once
and hashed by whichever families the requested feature types cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..binfmt.dynamic import ldd_output
from ..binfmt.reader import ElfReader, is_elf
from ..binfmt.strings_extract import extract_strings, strings_output
from ..binfmt.symbols import extract_global_symbols, nm_output
from ..exceptions import FeatureExtractionError, SymbolTableError
from ..hashing.crypto import crypto_digest
from ..hashing.ssdeep import FuzzyHasher
from ..hashing.vector import VectorHasher
from .records import SampleFeatures

__all__ = ["FEATURE_TYPES", "EXTENDED_FEATURE_TYPES",
           "VECTOR_FEATURE_TYPES", "ALL_FEATURE_TYPES", "HASH_FAMILIES",
           "FeatureExtractor", "resolve_family_feature_types"]

#: The canonical feature types of the paper, in the order used throughout
#: the library.
FEATURE_TYPES: tuple[str, ...] = ("ssdeep-file", "ssdeep-strings", "ssdeep-symbols")

#: The paper's features plus the future-work ``ldd`` feature (fuzzy hash of
#: the shared-library dependency list).
EXTENDED_FEATURE_TYPES: tuple[str, ...] = FEATURE_TYPES + ("ssdeep-libs",)

#: Fixed-length vector-digest siblings of the CTPH features, computed
#: over the same content sources.
VECTOR_FEATURE_TYPES: tuple[str, ...] = (
    "vector-file", "vector-strings", "vector-symbols", "vector-libs")

#: Every feature type the extractor knows how to compute.
ALL_FEATURE_TYPES: tuple[str, ...] = EXTENDED_FEATURE_TYPES + VECTOR_FEATURE_TYPES

#: Hash-family selectors accepted by :func:`resolve_family_feature_types`.
HASH_FAMILIES: tuple[str, ...] = ("ctph", "vector", "both")


def _vector_sibling(feature_type: str) -> str:
    """``ssdeep-file`` → ``vector-file`` (vector types map to themselves)."""

    if feature_type.startswith("vector-"):
        return feature_type
    return "vector-" + feature_type.split("-", 1)[1]


def resolve_family_feature_types(feature_types: Sequence[str],
                                 family: str) -> tuple[str, ...]:
    """Expand base CTPH feature types to the requested hash families.

    ``family="ctph"`` returns ``feature_types`` unchanged; ``"vector"``
    swaps each for its fixed-length vector sibling over the same content
    source; ``"both"`` appends the vector siblings after the CTPH block,
    giving the classifier parallel per-class feature columns from both
    families.
    """

    if family not in HASH_FAMILIES:
        raise FeatureExtractionError(
            f"family must be one of {HASH_FAMILIES}, got {family!r}")
    if family == "ctph":
        resolved = tuple(feature_types)
    elif family == "vector":
        resolved = tuple(_vector_sibling(ft) for ft in feature_types)
    else:
        resolved = tuple(feature_types) + tuple(
            _vector_sibling(ft) for ft in feature_types
            if _vector_sibling(ft) not in feature_types)
    seen: dict[str, None] = {}
    for ft in resolved:
        seen.setdefault(ft, None)
    resolved = tuple(seen)
    unknown = set(resolved) - set(ALL_FEATURE_TYPES)
    if unknown:
        raise FeatureExtractionError(
            f"family {family!r} expansion produced unknown feature types "
            f"{sorted(unknown)}; expected a subset of {ALL_FEATURE_TYPES}")
    return resolved


class FeatureExtractor:
    """Compute the fuzzy-hash features of executable bytes.

    Parameters
    ----------
    feature_types:
        Subset of :data:`FEATURE_TYPES` to compute (ablation experiments
        use this to drop features).
    min_string_length:
        Minimum printable-run length for the ``strings`` feature.
    include_symbol_addresses:
        Include addresses in the ``nm`` output before hashing (off by
        default; addresses change with every build and only add noise).
    """

    def __init__(self, feature_types: Sequence[str] = FEATURE_TYPES, *,
                 min_string_length: int = 4,
                 include_symbol_addresses: bool = False) -> None:
        unknown = set(feature_types) - set(ALL_FEATURE_TYPES)
        if unknown:
            raise FeatureExtractionError(
                f"unknown feature types {sorted(unknown)}; expected a subset of "
                f"{ALL_FEATURE_TYPES}")
        if not feature_types:
            raise FeatureExtractionError("feature_types must not be empty")
        self.feature_types = tuple(feature_types)
        self.min_string_length = int(min_string_length)
        self.include_symbol_addresses = bool(include_symbol_addresses)
        self._hasher = FuzzyHasher()
        self._vhasher = VectorHasher()

    # ----------------------------------------------------------------- API
    def extract(self, data: bytes, *, sample_id: str = "", class_name: str = "",
                version: str = "", executable: str = "") -> SampleFeatures:
        """Extract features from in-memory executable bytes."""

        if not data:
            raise FeatureExtractionError(f"sample {sample_id!r} is empty")

        digests: dict[str, str] = {}
        n_symbols = 0
        n_strings = 0
        stripped = False
        wanted = set(self.feature_types)

        if "ssdeep-file" in wanted:
            digests["ssdeep-file"] = str(self._hasher.hash(data))
        if "vector-file" in wanted:
            digests["vector-file"] = str(self._vhasher.hash(data))

        if wanted & {"ssdeep-strings", "vector-strings"}:
            text = strings_output(data, min_length=self.min_string_length)
            n_strings = text.count("\n")
            if "ssdeep-strings" in wanted:
                digests["ssdeep-strings"] = str(self._hasher.hash(text))
            if "vector-strings" in wanted:
                digests["vector-strings"] = str(self._vhasher.hash(text))

        if wanted & {"ssdeep-symbols", "vector-symbols"}:
            symbol_text = ""
            if is_elf(data):
                try:
                    reader = ElfReader(data)
                    symbol_text = nm_output(
                        reader, include_addresses=self.include_symbol_addresses)
                    n_symbols = symbol_text.count("\n")
                except (SymbolTableError, Exception) as exc:
                    if isinstance(exc, SymbolTableError):
                        stripped = True
                        symbol_text = ""
                    else:
                        raise
            else:
                stripped = True
            if "ssdeep-symbols" in wanted:
                digests["ssdeep-symbols"] = str(self._hasher.hash(symbol_text))
            if "vector-symbols" in wanted:
                digests["vector-symbols"] = str(self._vhasher.hash(symbol_text))

        if wanted & {"ssdeep-libs", "vector-libs"}:
            libs_text = ""
            if is_elf(data):
                try:
                    libs_text = ldd_output(data)
                except Exception:
                    libs_text = ""
            if "ssdeep-libs" in wanted:
                digests["ssdeep-libs"] = str(self._hasher.hash(libs_text))
            if "vector-libs" in wanted:
                digests["vector-libs"] = str(self._vhasher.hash(libs_text))

        return SampleFeatures(
            sample_id=sample_id or crypto_digest(data)[:16],
            class_name=class_name,
            version=version,
            executable=executable,
            digests=digests,
            sha256=crypto_digest(data),
            file_size=len(data),
            n_symbols=n_symbols,
            n_strings=n_strings,
            stripped=stripped,
        )

    def extract_file(self, path: str, *, sample_id: str = "",
                     class_name: str = "", version: str = "",
                     executable: str = "") -> SampleFeatures:
        """Extract features from a file on disk."""

        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise FeatureExtractionError(f"cannot read {path}: {exc}") from exc
        return self.extract(data, sample_id=sample_id or path,
                            class_name=class_name, version=version,
                            executable=executable)
