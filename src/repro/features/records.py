"""Per-sample feature records.

A :class:`SampleFeatures` holds everything the classifier ever needs to
know about one executable: its labels (class, version, executable name)
and its fuzzy-hash digests.  Raw file contents are *not* retained —
one of the practical advantages the paper claims for fuzzy hashes is
that storing digests "avoids integrity and privacy concerns of
accessing raw content of users' files" and keeps storage small.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Mapping, Sequence

from ..exceptions import FeatureExtractionError

__all__ = ["SampleFeatures", "features_to_json", "features_from_json"]


@dataclass(frozen=True)
class SampleFeatures:
    """Fuzzy-hash features and metadata of one application sample."""

    sample_id: str
    class_name: str
    version: str
    executable: str
    digests: Mapping[str, str]          # feature type -> SSDeep digest string
    sha256: str = ""
    file_size: int = 0
    n_symbols: int = 0
    n_strings: int = 0
    stripped: bool = False

    def digest(self, feature_type: str) -> str:
        """Digest for one feature type (empty string if unavailable)."""

        return self.digests.get(feature_type, "")

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["digests"] = dict(self.digests)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SampleFeatures":
        try:
            return cls(
                sample_id=str(payload["sample_id"]),
                class_name=str(payload["class_name"]),
                version=str(payload["version"]),
                executable=str(payload["executable"]),
                digests=dict(payload["digests"]),
                sha256=str(payload.get("sha256", "")),
                file_size=int(payload.get("file_size", 0)),
                n_symbols=int(payload.get("n_symbols", 0)),
                n_strings=int(payload.get("n_strings", 0)),
                stripped=bool(payload.get("stripped", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FeatureExtractionError(f"invalid SampleFeatures payload: {exc}") from exc


def features_to_json(features: Iterable[SampleFeatures]) -> str:
    """Serialise a sequence of feature records to a JSON string."""

    return json.dumps({"samples": [f.to_dict() for f in features]}, indent=2)


def features_from_json(text: str) -> list[SampleFeatures]:
    """Parse feature records serialised by :func:`features_to_json`."""

    try:
        payload = json.loads(text)
        items = payload["samples"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise FeatureExtractionError(f"invalid feature JSON: {exc}") from exc
    return [SampleFeatures.from_dict(item) for item in items]
