"""Similarity feature matrices.

The classifier never sees digests directly; it sees *similarity scores*
("We compute a feature matrix for our dataset based on the SSDeep fuzzy
hash similarity between sample features", Section 3).  This module
builds that matrix:

* the **anchors** are the training samples (grouped by class);
* for every query sample and every fuzzy-hash type, the feature value
  of column ``(type, class)`` is the maximum SSDeep similarity between
  the query's digest and the digests of that class's anchors
  (``class-max`` strategy).  Alternative strategies keep one column per
  anchor (``all-train``) or per class medoid (``class-medoids``).

Candidate generation and scoring are delegated to the persistent
:class:`~repro.index.SimilarityIndex`: ``fit`` indexes the anchors once
(block-size buckets, 7-gram inverted postings, batched NumPy
edit-distance scoring) and every ``transform`` reuses that index.  A
builder can also adopt an index loaded from disk
(:meth:`SimilarityFeatureBuilder.fit_from_index`), so a restarted
workflow skips re-indexing its anchors (pair it with a persisted
feature store to avoid re-hashing the corpus as well).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import NotFittedError, ValidationError
from ..hashing.rolling import ROLLING_WINDOW
from ..index import ShardedSimilarityIndex, SimilarityIndex
from ..logging_utils import get_logger
from .extractors import FEATURE_TYPES
from .records import SampleFeatures

__all__ = ["SimilarityMatrix", "SimilarityFeatureBuilder"]

_LOG = get_logger("features.similarity")

_ANCHOR_STRATEGIES = ("class-max", "class-medoids", "all-train")


@dataclass
class SimilarityMatrix:
    """A feature matrix plus the metadata needed to interpret it."""

    X: np.ndarray
    feature_names: list[str]
    feature_groups: dict[str, list[int]]
    sample_ids: list[str]

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    def columns_for(self, feature_type: str) -> np.ndarray:
        """The sub-matrix of columns belonging to one fuzzy-hash type."""

        indices = self.feature_groups.get(feature_type, [])
        return self.X[:, indices]


class SimilarityFeatureBuilder:
    """Build similarity feature matrices against a set of anchor samples.

    Parameters
    ----------
    feature_types:
        Fuzzy-hash types to use (columns are grouped by type).
    anchor_strategy:
        ``"class-max"`` (default, one column per class and type),
        ``"class-medoids"`` (like class-max but only ``medoids_per_class``
        anchors per class are retained, cutting comparison cost), or
        ``"all-train"`` (one column per anchor and type).
    medoids_per_class:
        Anchors retained per class under ``class-medoids``.
    ngram_length:
        Length of the common-substring gate (7, like SSDeep).
    """

    def __init__(self, feature_types: Sequence[str] = FEATURE_TYPES, *,
                 anchor_strategy: str = "class-max",
                 medoids_per_class: int = 5,
                 ngram_length: int = ROLLING_WINDOW) -> None:
        if anchor_strategy not in _ANCHOR_STRATEGIES:
            raise ValidationError(
                f"anchor_strategy must be one of {_ANCHOR_STRATEGIES}, "
                f"got {anchor_strategy!r}")
        if medoids_per_class < 1:
            raise ValidationError("medoids_per_class must be >= 1")
        if ngram_length < 1:
            raise ValidationError("ngram_length must be >= 1")
        self.feature_types = tuple(feature_types)
        self.anchor_strategy = anchor_strategy
        self.medoids_per_class = int(medoids_per_class)
        self.ngram_length = int(ngram_length)

    # ------------------------------------------------------------------ fit
    def fit(self, anchors: Sequence[SampleFeatures]) -> "SimilarityFeatureBuilder":
        """Index the anchor (training) samples."""

        if not anchors:
            raise ValidationError("cannot fit on an empty anchor set")
        anchors = self._select_anchors(list(anchors))
        self.anchors_ = anchors
        index = SimilarityIndex(self.feature_types,
                                ngram_length=self.ngram_length)
        index.add_many(anchors)
        return self._adopt_index(index)

    def fit_from_index(self, index: "SimilarityIndex | ShardedSimilarityIndex"
                       ) -> "SimilarityFeatureBuilder":
        """Adopt a prebuilt (e.g. loaded-from-disk) anchor index.

        Accepts a plain :class:`~repro.index.SimilarityIndex` or a
        :class:`~repro.index.ShardedSimilarityIndex` (whose queries then
        fan out over its execution backend).  The index must cover this
        builder's feature types, use the same n-gram length, and carry a
        class label on every member.  Anchor selection
        (``class-medoids``) is *not* re-applied — the index is trusted
        to already hold the intended anchor set.
        """

        missing = set(self.feature_types) - set(index.feature_types)
        if missing:
            raise ValidationError(
                f"index does not cover feature types {sorted(missing)}")
        if index.ngram_length != self.ngram_length:
            raise ValidationError(
                f"index n-gram length {index.ngram_length} does not match "
                f"builder n-gram length {self.ngram_length}")
        if index.n_members == 0:
            raise ValidationError("cannot adopt an empty index")
        unlabelled = sum(1 for name in index.class_names if not name)
        if unlabelled:
            raise ValidationError(
                f"{unlabelled} index members carry no class label; the "
                "feature builder needs labelled anchors")
        return self._adopt_index(index)

    def refresh_from_index(self, index=None) -> "SimilarityFeatureBuilder":
        """Re-adopt the (mutated) anchor index without changing columns.

        Online ingestion appends members to — and age-off tombstones
        members of — the already-adopted index; this recomputes the
        anchor bookkeeping (``anchor_ids_``, the per-class grouping used
        by ``_aggregate``) from the index's current membership.  The
        class set must be unchanged: under ``class-max`` /
        ``class-medoids`` the feature columns are one per (type, class),
        so new or vanished classes would silently change the matrix
        layout under a forest trained on the old one.
        """

        if not hasattr(self, "index_"):
            raise NotFittedError("SimilarityFeatureBuilder is not fitted")
        if index is None:
            index = self.index_
        if index.n_members == 0:
            raise ValidationError("cannot refresh from an empty index")
        classes = sorted(set(index.class_names))
        if classes != self.classes_:
            raise ValidationError(
                f"refresh would change the class set from {self.classes_} "
                f"to {classes}; feature columns are per class, so the "
                "forest trained on the old layout would mis-read them")
        return self._adopt_index(index)

    def fit_transform(self, anchors: Sequence[SampleFeatures], *,
                      exclude_self: bool = True) -> SimilarityMatrix:
        """Fit on ``anchors`` and transform them (excluding self matches).

        ``exclude_self`` prevents the trivial 100-similarity of a sample
        with itself from leaking into the training matrix.
        """

        self.fit(anchors)
        return self.transform(anchors, exclude_self=exclude_self)

    # ------------------------------------------------------------ transform
    def transform(self, queries: Sequence[SampleFeatures], *,
                  exclude_self: bool = False) -> SimilarityMatrix:
        """Similarity feature matrix of ``queries`` against the anchors."""

        if not hasattr(self, "index_"):
            raise NotFittedError("SimilarityFeatureBuilder is not fitted")
        queries = list(queries)
        n_anchors = self.index_.n_members
        n_anchor_cols = (len(self.classes_)
                         if self.anchor_strategy != "all-train"
                         else n_anchors)
        X = np.zeros((len(queries), n_anchor_cols * len(self.feature_types)),
                     dtype=np.float64)

        exclude = None
        if exclude_self:
            exclude = [self.index_.members_for_id(q.sample_id) for q in queries]

        # One batched pass over all feature types: candidate pairs are
        # de-duplicated across types and scored by a single DP sweep.
        matrices = self.index_.score_matrices(
            {ft: [q.digest(ft) for q in queries] for ft in self.feature_types},
            exclude=exclude)
        for type_offset, feature_type in enumerate(self.feature_types):
            # ``scores`` is (n_queries, n_anchors); aggregate into columns.
            block = self._aggregate(matrices[feature_type])
            start = type_offset * n_anchor_cols
            X[:, start:start + n_anchor_cols] = block

        return SimilarityMatrix(
            X=X,
            feature_names=list(self.feature_names_),
            feature_groups=self._feature_groups(n_anchor_cols),
            sample_ids=[q.sample_id for q in queries],
        )

    # ---------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """Serialisable snapshot of the fitted builder (model artifacts).

        The fitted state *is* the anchor index, exported through
        :meth:`repro.index.SimilarityIndex.get_state`; the builder's
        configuration lives in its constructor parameters and is stored
        separately by the artifact writer.
        """

        if not hasattr(self, "index_"):
            raise NotFittedError("SimilarityFeatureBuilder is not fitted")
        header, arrays = self.index_.get_state()
        return {"index_header": header, "index_arrays": arrays}

    def set_state(self, state: dict, *,
                  source: str = "builder state") -> "SimilarityFeatureBuilder":
        """Restore a snapshot produced by :meth:`get_state`.

        Runs the full :meth:`fit_from_index` validation (feature-type
        coverage, n-gram length, labelled anchors), so corrupt or
        mismatched state fails loudly instead of mis-scoring.  A caller
        that has already restored the anchor index (the model-artifact
        reader, which controls copy/mmap semantics itself) may pass it
        directly under an ``"index"`` key instead of header/arrays.
        """

        ready = state.get("index") if isinstance(state, dict) else None
        if ready is not None:
            if not isinstance(ready, (SimilarityIndex,
                                      ShardedSimilarityIndex)):
                raise ValidationError(
                    f"invalid feature-builder state: 'index' must be a "
                    f"similarity index, got {type(ready).__name__}")
            return self.fit_from_index(ready)
        try:
            header = state["index_header"]
            arrays = state["index_arrays"]
        except (KeyError, TypeError) as exc:
            raise ValidationError(
                f"invalid feature-builder state: {exc}") from exc
        # The header self-describes its kind: a sharded snapshot carries
        # "sharded": true (and the .rpm v2 artifact embeds it verbatim).
        if isinstance(header, dict) and header.get("sharded"):
            index: SimilarityIndex | ShardedSimilarityIndex = \
                ShardedSimilarityIndex.from_state(header, arrays,
                                                  source=source)
        else:
            index = SimilarityIndex.from_state(header, arrays, source=source)
        return self.fit_from_index(index)

    # ----------------------------------------------------------- internals
    def _adopt_index(self, index: SimilarityIndex) -> "SimilarityFeatureBuilder":
        self.index_ = index
        self.anchor_ids_ = list(index.sample_ids)
        self.anchor_classes_ = list(index.class_names)
        self.classes_ = sorted(set(self.anchor_classes_))
        self._class_index = {name: i for i, name in enumerate(self.classes_)}
        self._anchor_class_idx = np.array(
            [self._class_index[c] for c in self.anchor_classes_], dtype=np.int64)
        # Anchors grouped by class for the vectorised per-class max in
        # _aggregate: one stable sort at fit time, one reduceat per
        # transform (every class has at least one anchor by
        # construction, so the group starts are always valid).
        self._class_order = np.argsort(self._anchor_class_idx, kind="stable")
        counts = np.bincount(self._anchor_class_idx,
                             minlength=len(self.classes_))
        self._class_starts = np.zeros(len(self.classes_), dtype=np.int64)
        np.cumsum(counts[:-1], out=self._class_starts[1:])
        self.feature_names_ = self._build_feature_names()
        _LOG.debug("builder adopted index with %d anchors across %d classes",
                   index.n_members, len(self.classes_))
        return self

    def _select_anchors(self, anchors: list[SampleFeatures]) -> list[SampleFeatures]:
        if self.anchor_strategy != "class-medoids":
            return anchors
        by_class: dict[str, list[SampleFeatures]] = defaultdict(list)
        for anchor in anchors:
            by_class[anchor.class_name].append(anchor)
        selected: list[SampleFeatures] = []
        for class_name in sorted(by_class):
            members = sorted(by_class[class_name], key=lambda a: a.sample_id)
            if len(members) <= self.medoids_per_class:
                selected.extend(members)
                continue
            # Deterministic spread across the class (different versions end
            # up adjacent after sorting by id, so an even stride samples a
            # representative cross-section).
            positions = np.linspace(0, len(members) - 1,
                                    self.medoids_per_class).astype(int)
            selected.extend(members[p] for p in sorted(set(positions.tolist())))
        return selected

    def _aggregate(self, scores: np.ndarray) -> np.ndarray:
        """Aggregate per-anchor scores into the configured column layout."""

        if self.anchor_strategy == "all-train":
            return scores
        # Per-class max in one pass: anchors were grouped by class at
        # fit time, so a single reduceat replaces the per-class Python
        # loop over column subsets.
        return np.maximum.reduceat(scores[:, self._class_order],
                                   self._class_starts, axis=1)

    def _build_feature_names(self) -> list[str]:
        names = []
        if self.anchor_strategy == "all-train":
            for feature_type in self.feature_types:
                names.extend(f"{feature_type}|{anchor_id}"
                             for anchor_id in self.anchor_ids_)
        else:
            for feature_type in self.feature_types:
                names.extend(f"{feature_type}|{class_name}"
                             for class_name in self.classes_)
        return names

    def _feature_groups(self, n_anchor_cols: int) -> dict[str, list[int]]:
        groups: dict[str, list[int]] = {}
        for type_offset, feature_type in enumerate(self.feature_types):
            start = type_offset * n_anchor_cols
            groups[feature_type] = list(range(start, start + n_anchor_cols))
        return groups
