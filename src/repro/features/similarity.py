"""Similarity feature matrices.

The classifier never sees digests directly; it sees *similarity scores*
("We compute a feature matrix for our dataset based on the SSDeep fuzzy
hash similarity between sample features", Section 3).  This module
builds that matrix:

* the **anchors** are the training samples (grouped by class);
* for every query sample and every fuzzy-hash type, the feature value
  of column ``(type, class)`` is the maximum SSDeep similarity between
  the query's digest and the digests of that class's anchors
  (``class-max`` strategy).  Alternative strategies keep one column per
  anchor (``all-train``) or per class medoid (``class-medoids``).

Large-scale scoring is made tractable by the same two tricks the
reference SSDeep tooling uses plus one batching trick of our own:

1. digests are only comparable when their block sizes are equal or one
   step apart — expanding every digest into its ``(block_size, chunk)``
   and ``(2*block_size, double_chunk)`` entries turns this into exact
   block-size matching;
2. a pair can only score above zero when the two signatures share a
   7-character substring, so candidates are generated from a 7-gram
   inverted index (virtually all cross-application pairs are rejected
   here without computing an edit distance);
3. the surviving pairs are scored by the *batched* NumPy edit-distance
   engine (:class:`repro.distance.batch.BatchEditDistance`), after
   de-duplicating identical signature pairs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..distance.batch import BatchEditDistance
from ..distance.scoring import ssdeep_score_from_distance
from ..exceptions import NotFittedError, ValidationError
from ..hashing.compare import normalize_repeats
from ..hashing.rolling import ROLLING_WINDOW
from ..hashing.ssdeep import SsdeepDigest
from ..logging_utils import get_logger
from .extractors import FEATURE_TYPES
from .records import SampleFeatures

__all__ = ["SimilarityMatrix", "SimilarityFeatureBuilder"]

_LOG = get_logger("features.similarity")

_ANCHOR_STRATEGIES = ("class-max", "class-medoids", "all-train")


@dataclass
class SimilarityMatrix:
    """A feature matrix plus the metadata needed to interpret it."""

    X: np.ndarray
    feature_names: list[str]
    feature_groups: dict[str, list[int]]
    sample_ids: list[str]

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    def columns_for(self, feature_type: str) -> np.ndarray:
        """The sub-matrix of columns belonging to one fuzzy-hash type."""

        indices = self.feature_groups.get(feature_type, [])
        return self.X[:, indices]


@dataclass(frozen=True)
class _SignatureEntry:
    """One comparable signature of an anchor digest."""

    anchor_index: int
    block_size: int
    signature: str


class SimilarityFeatureBuilder:
    """Build similarity feature matrices against a set of anchor samples.

    Parameters
    ----------
    feature_types:
        Fuzzy-hash types to use (columns are grouped by type).
    anchor_strategy:
        ``"class-max"`` (default, one column per class and type),
        ``"class-medoids"`` (like class-max but only ``medoids_per_class``
        anchors per class are retained, cutting comparison cost), or
        ``"all-train"`` (one column per anchor and type).
    medoids_per_class:
        Anchors retained per class under ``class-medoids``.
    ngram_length:
        Length of the common-substring gate (7, like SSDeep).
    """

    def __init__(self, feature_types: Sequence[str] = FEATURE_TYPES, *,
                 anchor_strategy: str = "class-max",
                 medoids_per_class: int = 5,
                 ngram_length: int = ROLLING_WINDOW) -> None:
        if anchor_strategy not in _ANCHOR_STRATEGIES:
            raise ValidationError(
                f"anchor_strategy must be one of {_ANCHOR_STRATEGIES}, "
                f"got {anchor_strategy!r}")
        if medoids_per_class < 1:
            raise ValidationError("medoids_per_class must be >= 1")
        if ngram_length < 1:
            raise ValidationError("ngram_length must be >= 1")
        self.feature_types = tuple(feature_types)
        self.anchor_strategy = anchor_strategy
        self.medoids_per_class = int(medoids_per_class)
        self.ngram_length = int(ngram_length)
        self._engine = BatchEditDistance(insert_cost=1, delete_cost=1,
                                         substitute_cost=3, transpose_cost=5)

    # ------------------------------------------------------------------ fit
    def fit(self, anchors: Sequence[SampleFeatures]) -> "SimilarityFeatureBuilder":
        """Index the anchor (training) samples."""

        if not anchors:
            raise ValidationError("cannot fit on an empty anchor set")
        anchors = self._select_anchors(list(anchors))
        self.anchors_ = anchors
        self.anchor_ids_ = [a.sample_id for a in anchors]
        self.anchor_classes_ = [a.class_name for a in anchors]
        self.classes_ = sorted(set(self.anchor_classes_))
        self._class_index = {name: i for i, name in enumerate(self.classes_)}
        self._anchor_class_idx = np.array(
            [self._class_index[c] for c in self.anchor_classes_], dtype=np.int64)

        # Per feature type: signature entries and the 7-gram inverted index.
        self._entries: dict[str, list[_SignatureEntry]] = {}
        self._gram_index: dict[str, dict[tuple[int, str], list[int]]] = {}
        for feature_type in self.feature_types:
            entries: list[_SignatureEntry] = []
            index: dict[tuple[int, str], list[int]] = defaultdict(list)
            for anchor_index, anchor in enumerate(anchors):
                for block_size, signature in self._expand(anchor.digest(feature_type)):
                    entry_id = len(entries)
                    entries.append(_SignatureEntry(anchor_index, block_size, signature))
                    for gram in self._grams(signature):
                        index[(block_size, gram)].append(entry_id)
            self._entries[feature_type] = entries
            self._gram_index[feature_type] = dict(index)
        self.feature_names_ = self._build_feature_names()
        return self

    def fit_transform(self, anchors: Sequence[SampleFeatures], *,
                      exclude_self: bool = True) -> SimilarityMatrix:
        """Fit on ``anchors`` and transform them (excluding self matches).

        ``exclude_self`` prevents the trivial 100-similarity of a sample
        with itself from leaking into the training matrix.
        """

        self.fit(anchors)
        return self.transform(anchors, exclude_self=exclude_self)

    # ------------------------------------------------------------ transform
    def transform(self, queries: Sequence[SampleFeatures], *,
                  exclude_self: bool = False) -> SimilarityMatrix:
        """Similarity feature matrix of ``queries`` against the anchors."""

        if not hasattr(self, "anchors_"):
            raise NotFittedError("SimilarityFeatureBuilder is not fitted")
        queries = list(queries)
        n_queries = len(queries)
        n_anchor_cols = (len(self.classes_)
                         if self.anchor_strategy != "all-train"
                         else len(self.anchors_))
        X = np.zeros((n_queries, n_anchor_cols * len(self.feature_types)),
                     dtype=np.float64)

        anchor_id_lookup = {}
        if exclude_self:
            for anchor_index, anchor_id in enumerate(self.anchor_ids_):
                anchor_id_lookup.setdefault(anchor_id, set()).add(anchor_index)

        for type_offset, feature_type in enumerate(self.feature_types):
            scores = self._score_feature_type(feature_type, queries,
                                              anchor_id_lookup if exclude_self else None)
            # ``scores`` is (n_queries, n_anchors); aggregate into columns.
            block = self._aggregate(scores)
            start = type_offset * n_anchor_cols
            X[:, start:start + n_anchor_cols] = block

        return SimilarityMatrix(
            X=X,
            feature_names=list(self.feature_names_),
            feature_groups=self._feature_groups(n_anchor_cols),
            sample_ids=[q.sample_id for q in queries],
        )

    # ----------------------------------------------------------- internals
    def _select_anchors(self, anchors: list[SampleFeatures]) -> list[SampleFeatures]:
        if self.anchor_strategy != "class-medoids":
            return anchors
        by_class: dict[str, list[SampleFeatures]] = defaultdict(list)
        for anchor in anchors:
            by_class[anchor.class_name].append(anchor)
        selected: list[SampleFeatures] = []
        for class_name in sorted(by_class):
            members = sorted(by_class[class_name], key=lambda a: a.sample_id)
            if len(members) <= self.medoids_per_class:
                selected.extend(members)
                continue
            # Deterministic spread across the class (different versions end
            # up adjacent after sorting by id, so an even stride samples a
            # representative cross-section).
            positions = np.linspace(0, len(members) - 1,
                                    self.medoids_per_class).astype(int)
            selected.extend(members[p] for p in sorted(set(positions.tolist())))
        return selected

    def _expand(self, digest: str) -> list[tuple[int, str]]:
        """Expand a digest into comparable ``(block_size, signature)`` pairs."""

        if not digest:
            return []
        parsed = SsdeepDigest.parse(digest)
        pairs = []
        chunk = normalize_repeats(parsed.chunk)
        double_chunk = normalize_repeats(parsed.double_chunk)
        if chunk:
            pairs.append((parsed.block_size, chunk))
        if double_chunk:
            pairs.append((parsed.block_size * 2, double_chunk))
        return pairs

    def _grams(self, signature: str) -> set[str]:
        n = self.ngram_length
        if len(signature) < n:
            return set()
        return {signature[i:i + n] for i in range(len(signature) - n + 1)}

    def _score_feature_type(self, feature_type: str,
                            queries: Sequence[SampleFeatures],
                            exclude_lookup: Mapping[str, set[int]] | None
                            ) -> np.ndarray:
        """Dense (n_queries, n_anchors) SSDeep score matrix for one type."""

        entries = self._entries[feature_type]
        gram_index = self._gram_index[feature_type]
        n_anchors = len(self.anchors_)
        scores = np.zeros((len(queries), n_anchors), dtype=np.float64)

        # Candidate generation: (query, entry) pairs sharing a 7-gram.
        pair_query: list[int] = []
        pair_entry: list[int] = []
        for query_index, query in enumerate(queries):
            excluded = exclude_lookup.get(query.sample_id, set()) \
                if exclude_lookup else set()
            seen: set[int] = set()
            for block_size, signature in self._expand(query.digest(feature_type)):
                for gram in self._grams(signature):
                    for entry_id in gram_index.get((block_size, gram), ()):
                        if entry_id in seen:
                            continue
                        seen.add(entry_id)
                        if entries[entry_id].anchor_index in excluded:
                            continue
                        pair_query.append(query_index)
                        pair_entry.append(entry_id)
        if not pair_entry:
            return scores

        # De-duplicate identical signature pairs before running the DP.
        left: list[str] = []
        right: list[str] = []
        block_sizes: list[int] = []
        pair_key_to_slot: dict[tuple[str, str, int], int] = {}
        slot_of_pair: list[int] = []
        query_signatures = [
            {bs: sig for bs, sig in self._expand(q.digest(feature_type))}
            for q in queries
        ]
        for query_index, entry_id in zip(pair_query, pair_entry):
            entry = entries[entry_id]
            q_sig = query_signatures[query_index].get(entry.block_size, "")
            key = (q_sig, entry.signature, entry.block_size)
            slot = pair_key_to_slot.get(key)
            if slot is None:
                slot = len(left)
                pair_key_to_slot[key] = slot
                left.append(q_sig)
                right.append(entry.signature)
                block_sizes.append(entry.block_size)
            slot_of_pair.append(slot)

        distances = self._engine.distances_two_lists(left, right)
        lengths_left = np.array([len(s) for s in left], dtype=np.float64)
        lengths_right = np.array([len(s) for s in right], dtype=np.float64)
        pair_scores = ssdeep_score_from_distance(
            distances, lengths_left, lengths_right,
            np.array(block_sizes, dtype=np.float64)).astype(np.float64)
        # Identical signatures always score 100 (the reference's fast path),
        # even where the small-block-size cap would otherwise bite.
        identical = np.array([l == r for l, r in zip(left, right)], dtype=bool)
        pair_scores[identical] = 100.0

        _LOG.debug("%s: %d candidate pairs (%d unique) for %d queries x %d anchors",
                   feature_type, len(slot_of_pair), len(left), len(queries), n_anchors)

        for (query_index, entry_id), slot in zip(zip(pair_query, pair_entry),
                                                 slot_of_pair):
            anchor_index = entries[entry_id].anchor_index
            score = pair_scores[slot]
            if score > scores[query_index, anchor_index]:
                scores[query_index, anchor_index] = score
        return scores

    def _aggregate(self, scores: np.ndarray) -> np.ndarray:
        """Aggregate per-anchor scores into the configured column layout."""

        if self.anchor_strategy == "all-train":
            return scores
        n_classes = len(self.classes_)
        block = np.zeros((scores.shape[0], n_classes), dtype=np.float64)
        for class_idx in range(n_classes):
            members = np.flatnonzero(self._anchor_class_idx == class_idx)
            if members.size:
                block[:, class_idx] = scores[:, members].max(axis=1)
        return block

    def _build_feature_names(self) -> list[str]:
        names = []
        if self.anchor_strategy == "all-train":
            for feature_type in self.feature_types:
                names.extend(f"{feature_type}|{anchor_id}"
                             for anchor_id in self.anchor_ids_)
        else:
            for feature_type in self.feature_types:
                names.extend(f"{feature_type}|{class_name}"
                             for class_name in self.classes_)
        return names

    def _feature_groups(self, n_anchor_cols: int) -> dict[str, list[int]]:
        groups: dict[str, list[int]] = {}
        for type_offset, feature_type in enumerate(self.feature_types):
            start = type_offset * n_anchor_cols
            groups[feature_type] = list(range(start, start + n_anchor_cols))
        return groups
