"""Fuzzy-hash feature extraction and similarity feature matrices.

This package implements the middle of the paper's pipeline: from
executable bytes to the numeric feature matrix the Random Forest is
trained on.

* :mod:`repro.features.extractors` — compute the three SSDeep digests
  (raw file, ``strings`` output, ``nm`` output) plus the cryptographic
  digest used by the exact-match baseline,
* :mod:`repro.features.records` — the :class:`SampleFeatures` record
  and its JSON (de)serialisation,
* :mod:`repro.features.pipeline` — batch extraction over a corpus
  (optionally in parallel worker processes),
* :mod:`repro.features.similarity` — turn digests into the similarity
  feature matrix (SSDeep scores against per-class anchors), with
  7-gram candidate pruning and a batched edit-distance engine,
* :mod:`repro.features.store` — on-disk feature cache.
"""

from .extractors import FEATURE_TYPES, FeatureExtractor
from .records import SampleFeatures, features_to_json, features_from_json
from .pipeline import FeatureExtractionPipeline
from .similarity import SimilarityFeatureBuilder, SimilarityMatrix
from .store import FeatureStore

__all__ = [
    "FEATURE_TYPES",
    "FeatureExtractor",
    "SampleFeatures",
    "features_to_json",
    "features_from_json",
    "FeatureExtractionPipeline",
    "SimilarityFeatureBuilder",
    "SimilarityMatrix",
    "FeatureStore",
]
