"""Array-backed n-gram postings for the similarity index.

This module is the columnar storage layer behind
:class:`~repro.index.core.SimilarityIndex`.  Where the first-generation
index kept ``dict[(block_size, gram)] -> list[int]`` postings and one
``_Entry`` dataclass per indexed signature, everything here lives in
compact NumPy arrays:

* **signatures** are interned once in a :class:`SignaturePool`; entries
  reference them by ``int32`` id, so a family of near-identical members
  stores each distinct signature string exactly once;
* **entries** (one per comparable ``(member, block_size, signature)``)
  are three parallel columns — ``member: int32``, ``block: int64``,
  ``signature id: int32`` — held in growable :class:`_IntVec` buffers;
* **postings** are a sorted CSR-style triple per feature type:
  ``keys: int64[]`` (FNV-64 hash of ``block_size || gram``, sorted),
  ``offsets: int64[]`` and ``entry_ids: int32[]``, plus parallel
  ``key_blocks``/``key_grams`` metadata used to collision-check every
  key at merge time and to reject false hash matches at query time, so
  correctness never depends on the hash being perfect.

Updates stay incremental: :meth:`ArrayPostings.add_entry` appends to a
small mutable tail (flat, unsorted) and the tail is merged into the
sorted CSR arrays on demand — at query time, or automatically once it
outgrows an eighth of the sealed region — so bulk loads pay ``O(log n)``
merges total instead of one sort per add.  The sealed arrays live in
one atomically-swapped tuple and the merge itself is serialised by a
lock, so concurrent *readers* of a quiescent (no concurrent ``add``)
index are safe even when the first query triggers the merge.

The candidate walk (:meth:`ArrayPostings.lookup`) is fully vectorised:
hashed query grams are located with one :func:`numpy.searchsorted` over
the key array, verified against the key metadata, and their posting
slabs gathered with ``np.repeat`` arithmetic — no per-gram Python loop,
no per-query ``set``.
"""

from __future__ import annotations

import threading
from functools import lru_cache

import numpy as np

from ..exceptions import SimilarityIndexError
from ..hashing.fnv import FNV64_INIT, FNV64_PRIME

__all__ = ["ArrayPostings", "SignaturePool", "block_prefix64",
           "hash_windows", "signature_windows"]

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Tail postings below this count never trigger an automatic merge.
_MIN_TAIL_MERGE = 32768

#: Hashed-key cache entries kept per signature pool (FIFO eviction).
_KEY_CACHE_MAX = 4096


def signature_windows(signature: str, ngram_length: int) -> np.ndarray:
    """All n-gram windows of a signature as a ``(m, n)`` uint8 matrix.

    Returns an empty ``(0, n)`` matrix when the signature is shorter
    than ``ngram_length`` (such signatures never match — the documented
    common-substring precondition).
    """

    n = ngram_length
    raw = signature.encode("ascii")
    if len(raw) < n:
        return np.zeros((0, n), dtype=np.uint8)
    buf = np.frombuffer(raw, dtype=np.uint8)
    return np.lib.stride_tricks.sliding_window_view(buf, n)


@lru_cache(maxsize=4096)
def block_prefix64(block_size: int) -> int:
    """FNV-64 state after hashing a block size (8 little-endian bytes)."""

    h = FNV64_INIT
    value = block_size & _MASK64
    for shift in range(0, 64, 8):
        h = ((h * FNV64_PRIME) & _MASK64) ^ ((value >> shift) & 0xFF)
    return h


def hash_windows(prefix: "int | np.ndarray", windows: np.ndarray
                 ) -> np.ndarray:
    """FNV-64 keys for gram windows, continuing from ``prefix`` state(s).

    ``prefix`` is a scalar (one block size for every window) or a
    per-window uint64 vector; the result is viewed as ``int64`` so the
    same bit patterns sort and :func:`numpy.searchsorted` consistently
    everywhere (including on disk).
    """

    m = windows.shape[0]
    with np.errstate(over="ignore"):
        if np.isscalar(prefix) or isinstance(prefix, int):
            h = np.full(m, np.uint64(prefix), dtype=np.uint64)
        else:
            h = prefix.astype(np.uint64, copy=True)
        prime = np.uint64(FNV64_PRIME)
        for col in range(windows.shape[1]):
            h = (h * prime) ^ windows[:, col].astype(np.uint64)
    return h.view(np.int64)


class _IntVec:
    """Growable NumPy-backed integer column (amortised O(1) appends)."""

    __slots__ = ("_buf", "_n")

    def __init__(self, dtype, capacity: int = 16) -> None:
        self._buf = np.empty(capacity, dtype=dtype)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        if need > len(self._buf):
            capacity = max(need, 2 * len(self._buf))
            buf = np.empty(capacity, dtype=self._buf.dtype)
            buf[:self._n] = self._buf[:self._n]
            self._buf = buf

    def append(self, value: int) -> None:
        self._reserve(1)
        self._buf[self._n] = value
        self._n += 1

    def extend(self, values) -> None:
        values = np.asarray(values, dtype=self._buf.dtype)
        if not len(values):
            return
        self._reserve(len(values))
        self._buf[self._n:self._n + len(values)] = values
        self._n += len(values)

    def extend_repeat(self, value: int, count: int) -> None:
        self._reserve(count)
        self._buf[self._n:self._n + count] = value
        self._n += count

    def array(self) -> np.ndarray:
        """A zero-copy view of the live region (do not mutate)."""

        return self._buf[:self._n]

    @classmethod
    def adopt(cls, array: np.ndarray, dtype) -> "_IntVec":
        """Wrap an existing 1-D array without copying (the load path).

        The adopted buffer may be read-only (an mmap view): it is never
        written in place — the vector is exactly full, so the first
        append triggers :meth:`_reserve`'s reallocation into a fresh
        writeable buffer (copy-on-grow).
        """

        array = np.asarray(array)
        if array.dtype != np.dtype(dtype) or array.ndim != 1:
            array = np.ascontiguousarray(array, dtype=dtype).reshape(-1)
        vec = cls.__new__(cls)
        vec._buf = array
        vec._n = len(array)
        return vec


class SignaturePool:
    """Index-wide signature interning: each distinct string stored once.

    Entries reference signatures by ``int32`` id; the pool also memoises
    each signature's n-gram window matrix (content-dependent only) and
    the per-``(signature, block_size)`` hashed key set, so re-indexing a
    signature the corpus has seen before — the common case in mutated
    families and on reload — does no hashing at all.
    """

    def __init__(self, ngram_length: int) -> None:
        self._ngram_length = int(ngram_length)
        self._strings: list[str] = []
        self._ids: dict[str, int] = {}
        self._windows: dict[int, np.ndarray] = {}
        self._keys: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        # Lazy (zero-copy load) state: the raw on-disk pool arrays.  The
        # Python string list and id dict are only built when something
        # actually needs them (scoring, interning), so opening a mapped
        # container never pays an O(corpus) string-decoding loop.
        self._packed: tuple[np.ndarray, np.ndarray] | None = None

    def _materialise(self) -> None:
        """Decode the packed pool into the string list + id dict."""

        packed = self._packed
        if packed is None:
            return
        pool_bytes, bounds = packed
        text = pool_bytes.tobytes().decode("ascii")
        offsets = bounds.tolist()
        strings = [text[start:end] for start, end in zip(offsets, offsets[1:])]
        self._strings = strings
        self._ids = {s: i for i, s in enumerate(strings)}
        self._packed = None

    def __len__(self) -> int:
        if self._packed is not None:
            return len(self._packed[1]) - 1
        return len(self._strings)

    def __getitem__(self, sig_id: int) -> str:
        packed = self._packed
        if packed is not None:
            pool_bytes, bounds = packed
            start, end = int(bounds[sig_id]), int(bounds[sig_id + 1])
            return pool_bytes[start:end].tobytes().decode("ascii")
        return self._strings[sig_id]

    @property
    def strings(self) -> list[str]:
        self._materialise()
        return self._strings

    def intern(self, signature: str) -> int:
        self._materialise()
        sig_id = self._ids.get(signature)
        if sig_id is None:
            sig_id = len(self._strings)
            self._ids[signature] = sig_id
            self._strings.append(signature)
        return sig_id

    def local_id(self, signature: str) -> int | None:
        """The pool id of ``signature``, or ``None`` if never interned."""

        self._materialise()
        return self._ids.get(signature)

    def windows(self, sig_id: int) -> np.ndarray:
        cached = self._windows.get(sig_id)
        if cached is None:
            cached = signature_windows(self[sig_id], self._ngram_length)
            if len(self._windows) >= 2 * _KEY_CACHE_MAX:
                self._windows.pop(next(iter(self._windows)))
            self._windows[sig_id] = cached
        return cached

    def keys_for(self, sig_id: int, block_size: int
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Unique ``(keys, windows)`` of one signature at one block size.

        Keys are sorted ascending with the first-occurrence window kept
        per key, so repeated grams inside a signature post exactly once
        (the old set-of-grams semantics).
        """

        cached = self._keys.get((sig_id, block_size))
        if cached is None:
            windows = self.windows(sig_id)
            keys = hash_windows(block_prefix64(block_size), windows)
            uniq, first = np.unique(keys, return_index=True)
            cached = (uniq, windows[first])
            # Bounded FIFO: repeats (duplicate members, reloads) hit the
            # cache; a corpus of unique signatures must not accumulate
            # one key array per member.
            if len(self._keys) >= _KEY_CACHE_MAX:
                self._keys.pop(next(iter(self._keys)))
            self._keys[(sig_id, block_size)] = cached
        return cached

    def packed(self) -> tuple[np.ndarray, np.ndarray]:
        """``(pool_bytes, pool_offsets)`` for the on-disk container."""

        if self._packed is not None:
            # Still lazy: the on-disk form is exactly what was adopted.
            return self._packed
        blob = "".join(self._strings).encode("ascii")
        offsets = np.zeros(len(self._strings) + 1, dtype=np.int64)
        np.cumsum([len(s) for s in self._strings], out=offsets[1:])
        payload = (np.frombuffer(blob, dtype=np.uint8).copy()
                   if blob else np.zeros(0, dtype=np.uint8))
        return payload, offsets

    @classmethod
    def from_packed(cls, ngram_length: int, pool_bytes: np.ndarray,
                    pool_offsets: np.ndarray, *,
                    lazy: bool = False) -> "SignaturePool":
        pool = cls(ngram_length)
        pool._packed = (np.asarray(pool_bytes), np.asarray(pool_offsets))
        if not lazy:
            # Eager loads keep decoding up front so malformed pool bytes
            # fail at load time, exactly as before.
            pool._materialise()
        return pool


class _Sealed:
    """Immutable sealed postings: sorted CSR over hashed keys.

    Held by :class:`ArrayPostings` behind a single reference that is
    swapped atomically at merge time, so concurrent readers never see
    half-updated arrays.
    """

    __slots__ = ("keys", "key_blocks", "key_grams", "offsets", "entry_ids")

    def __init__(self, keys, key_blocks, key_grams, offsets, entry_ids):
        self.keys = keys
        self.key_blocks = key_blocks
        self.key_grams = key_grams
        self.offsets = offsets
        self.entry_ids = entry_ids

    @classmethod
    def empty(cls, ngram_length: int) -> "_Sealed":
        return cls(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                   np.zeros((0, ngram_length), dtype=np.uint8),
                   np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int32))


class ArrayPostings:
    """Columnar entries + sorted CSR postings for one feature type."""

    def __init__(self, pool: SignaturePool, ngram_length: int) -> None:
        self._pool = pool
        self._ngram_length = int(ngram_length)
        # Entry columns (entry id == row index, insertion order).
        self._e_member = _IntVec(np.int32)
        self._e_block = _IntVec(np.int64)
        self._e_sig = _IntVec(np.int32)
        self._sealed = _Sealed.empty(self._ngram_length)
        self._merge_lock = threading.Lock()
        # Mutable tail: flat keys + raw gram bytes, plus one
        # (entry id, block, key count) triple per appended entry — the
        # per-item entry/block columns expand only transiently at merge.
        self._t_keys = _IntVec(np.int64)
        self._t_grams = bytearray()
        self._t_eids = _IntVec(np.int32)
        self._t_eblocks = _IntVec(np.int64)
        self._t_ecounts = _IntVec(np.int32)

    # ------------------------------------------------------------- entries
    @property
    def n_entries(self) -> int:
        return len(self._e_member)

    @property
    def entry_member(self) -> np.ndarray:
        return self._e_member.array()

    @property
    def entry_block(self) -> np.ndarray:
        return self._e_block.array()

    @property
    def entry_sig(self) -> np.ndarray:
        return self._e_sig.array()

    # ------------------------------------------------------------- updates
    def add_entry(self, member: int, block_size: int, sig_id: int) -> int:
        """Append one entry and its tail postings; returns the entry id."""

        entry_id = len(self._e_member)
        self._e_member.append(member)
        self._e_block.append(block_size)
        self._e_sig.append(sig_id)
        keys, windows = self._pool.keys_for(sig_id, block_size)
        if len(keys):
            self._t_keys.extend(keys)
            self._t_grams += windows.tobytes()
            self._t_eids.append(entry_id)
            self._t_eblocks.append(block_size)
            self._t_ecounts.append(len(keys))
            if len(self._t_keys) >= max(_MIN_TAIL_MERGE,
                                        len(self._sealed.entry_ids) // 8):
                self.merge()
        return entry_id

    # --------------------------------------------------------------- merge
    @property
    def tail_size(self) -> int:
        return len(self._t_keys)

    def merge(self) -> None:
        """Fold the mutable tail into the sorted CSR arrays (idempotent).

        A sorted merge, not a re-sort: only the (bounded) tail is
        sorted; sealed postings — already grouped by key, ascending
        entry ids per bucket — are moved slab-wise into their new
        offsets.  Peak transient memory is one index array over the
        sealed postings plus the merged output, a fraction of what a
        full stable argsort over the concatenation would allocate.
        """

        if not len(self._t_keys):
            return
        with self._merge_lock:
            self._merge_locked()

    def _merge_locked(self) -> None:
        if not len(self._t_keys):
            # Another reader finished the merge while we waited.
            return
        n = self._ngram_length
        sealed = self._sealed
        # Expand the per-entry tail triples into flat columns, then
        # sort; stable keeps ascending entry ids per key.
        ecounts = self._t_ecounts.array()
        t_order = np.argsort(self._t_keys.array(), kind="stable")
        t_keys = self._t_keys.array()[t_order]
        t_entries = np.repeat(self._t_eids.array(), ecounts)[t_order]
        t_blocks = np.repeat(self._t_eblocks.array(), ecounts)[t_order]
        t_grams = np.frombuffer(bytes(self._t_grams),
                                dtype=np.uint8).reshape(-1, n)[t_order]
        # Unique tail keys (sorted) with their posting counts.
        t_new = np.ones(len(t_keys), dtype=bool)
        t_new[1:] = t_keys[1:] != t_keys[:-1]
        tu_idx = np.flatnonzero(t_new)
        tu_keys = t_keys[tu_idx]
        tu_counts = np.diff(np.append(tu_idx, len(t_keys)))
        tu_blocks = t_blocks[tu_idx]
        tu_grams = t_grams[tu_idx]
        # Collision checks: one 64-bit key must never stand for two
        # different (block size, gram) buckets — neither inside the
        # tail nor between the tail and the sealed keys.
        dup = ~t_new[1:]
        if dup.any() and bool(np.any(
                dup & ((t_blocks[1:] != t_blocks[:-1])
                       | (t_grams[1:] != t_grams[:-1]).any(axis=1)))):
            raise SimilarityIndexError(
                "64-bit n-gram key collision between posting buckets; "
                "this corpus cannot be indexed with hashed postings")

        old_keys = sealed.keys
        old_counts = np.diff(sealed.offsets)
        pos = np.searchsorted(old_keys, tu_keys)
        clamped = np.minimum(pos, max(len(old_keys) - 1, 0))
        if len(old_keys):
            already = old_keys[clamped] == tu_keys
            if already.any() and bool(np.any(
                    already & ((sealed.key_blocks[clamped] != tu_blocks)
                               | (sealed.key_grams[clamped]
                                  != tu_grams).any(axis=1)))):
                raise SimilarityIndexError(
                    "64-bit n-gram key collision between posting buckets; "
                    "this corpus cannot be indexed with hashed postings")
        else:
            already = np.zeros(len(tu_keys), dtype=bool)

        # Interleave brand-new keys into the sealed key order.
        fresh = ~already
        n_merged = len(old_keys) + int(fresh.sum())
        insert_at = pos[fresh] + np.arange(int(fresh.sum()), dtype=np.int64)
        old_at = np.ones(n_merged, dtype=bool)
        old_at[insert_at] = False
        merged_keys = np.empty(n_merged, dtype=np.int64)
        merged_keys[insert_at] = tu_keys[fresh]
        merged_keys[old_at] = old_keys
        merged_blocks = np.empty(n_merged, dtype=np.int64)
        merged_blocks[insert_at] = tu_blocks[fresh]
        merged_blocks[old_at] = sealed.key_blocks
        merged_grams = np.empty((n_merged, n), dtype=np.uint8)
        merged_grams[insert_at] = tu_grams[fresh]
        merged_grams[old_at] = sealed.key_grams
        merged_counts = np.zeros(n_merged, dtype=np.int64)
        merged_counts[old_at] = old_counts
        tu_merged = np.searchsorted(merged_keys, tu_keys)
        merged_counts[tu_merged] += tu_counts
        merged_offsets = np.zeros(n_merged + 1, dtype=np.int64)
        np.cumsum(merged_counts, out=merged_offsets[1:])

        # Placement by run copies: sealed postings are already laid out
        # in merged order, only interrupted where a tail group lands, so
        # everything moves as contiguous slices — no index arithmetic
        # over the full posting list, and sealed slabs stay first inside
        # each bucket (their entry ids predate every tail id).
        out = np.empty(int(merged_offsets[-1]), dtype=np.int32)
        entry_ids = sealed.entry_ids
        old_offsets = sealed.offsets
        src = dst = 0
        pos_list = pos.tolist()
        already_list = already.tolist()
        bounds = np.append(tu_idx, len(t_keys)).tolist()
        for j in range(len(tu_keys)):
            src_end = int(old_offsets[pos_list[j] + 1]) if already_list[j] \
                else int(old_offsets[pos_list[j]])
            if src_end > src:
                out[dst:dst + src_end - src] = entry_ids[src:src_end]
                dst += src_end - src
                src = src_end
            count = bounds[j + 1] - bounds[j]
            out[dst:dst + count] = t_entries[bounds[j]:bounds[j + 1]]
            dst += count
        if len(entry_ids) > src:
            out[dst:] = entry_ids[src:]

        # Swap the sealed reference first (atomic), then clear the
        # tail: a concurrent reader either sees a non-empty tail and
        # blocks on the merge lock, or an empty tail with the new
        # sealed arrays already in place.
        self._sealed = _Sealed(merged_keys, merged_blocks, merged_grams,
                               merged_offsets, out)
        self._t_keys = _IntVec(np.int64)
        self._t_grams = bytearray()
        self._t_eids = _IntVec(np.int32)
        self._t_eblocks = _IntVec(np.int64)
        self._t_ecounts = _IntVec(np.int32)

    # -------------------------------------------------------------- queries
    @property
    def n_keys(self) -> int:
        """Distinct posting buckets (forces a tail merge)."""

        self.merge()
        return len(self._sealed.keys)

    def lookup(self, query_keys: np.ndarray, query_blocks: np.ndarray,
               query_grams: np.ndarray, window_rows: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised candidate gather for hashed query windows.

        The first three parameters are parallel per query window: the
        ``int64`` hashed key, the block size, and the raw gram bytes
        (for exact verification of hash matches); ``window_rows`` maps
        each window back to its query row.  Returns ``(row, entry_id)``
        pairs — one per posting under a matched key — with entry ids in
        the postings' native ``int32``.
        """

        self.merge()
        sealed = self._sealed
        empty = (np.zeros(0, dtype=window_rows.dtype),
                 np.zeros(0, dtype=np.int32))
        if not len(sealed.keys) or not len(query_keys):
            return empty
        pos = np.searchsorted(sealed.keys, query_keys)
        clamped = np.minimum(pos, len(sealed.keys) - 1)
        hit = sealed.keys[clamped] == query_keys
        # Exact verification: a matched key must carry the same block
        # size and gram bytes, so a (vanishingly unlikely) query-side
        # hash collision can never surface a false candidate.
        hit &= sealed.key_blocks[clamped] == query_blocks
        hit &= (sealed.key_grams[clamped] == query_grams).all(axis=1)
        window_idx = np.flatnonzero(hit)
        if not window_idx.size:
            return empty
        matched = pos[window_idx]
        starts = sealed.offsets[matched]
        slab = sealed.offsets[matched + 1] - starts
        # Slab expansion by slice-concatenation: one C-level pass over
        # the gathered postings instead of repeat/arange index
        # arithmetic (the matched-window count is small; the total hit
        # count is what dominates).
        entry_ids = sealed.entry_ids
        chunks = [entry_ids[s:s + c]
                  for s, c in zip(starts.tolist(), slab.tolist())]
        gathered = np.concatenate(chunks) if chunks else empty[1]
        return np.repeat(window_rows[window_idx], slab), gathered

    # ---------------------------------------------------------- inspection
    def iter_buckets(self):
        """Yield ``(block_size, gram, entry_ids)`` per posting bucket."""

        self.merge()
        sealed = self._sealed
        for i in range(len(sealed.keys)):
            gram = sealed.key_grams[i].tobytes().decode("ascii")
            yield (int(sealed.key_blocks[i]), gram,
                   sealed.entry_ids[sealed.offsets[i]:sealed.offsets[i + 1]])

    def nbytes(self) -> int:
        """Resident byte estimate of the columnar arrays."""

        self.merge()
        n_keys = len(self._sealed.keys)
        return (self.n_entries * 16
                + n_keys * (16 + self._ngram_length)
                + (n_keys + 1) * 8
                + len(self._sealed.entry_ids) * 4)

    # ---------------------------------------------------------- persistence
    def get_arrays(self) -> dict[str, np.ndarray]:
        """Columnar snapshot (tail merged first) for the container."""

        self.merge()
        sealed = self._sealed
        return {
            "entry_member": self.entry_member.copy(),
            "entry_block": self.entry_block.copy(),
            "entry_sig": self.entry_sig.copy(),
            "post_keys": sealed.keys.copy(),
            "post_blocks": sealed.key_blocks.copy(),
            "post_grams": sealed.key_grams.copy(),
            "post_offsets": sealed.offsets.copy(),
            "post_entries": sealed.entry_ids.copy(),
        }

    def adopt_arrays(self, arrays: dict[str, np.ndarray], *,
                     copy: bool = True) -> None:
        """Adopt validated columnar arrays (the fast load path).

        With ``copy=False`` the arrays are adopted as views — possibly
        read-only zero-copy views into a mapped container.  Nothing here
        ever mutates an adopted array in place: sealed postings are
        replaced wholesale at merge time and the entry columns grow by
        reallocation, so read-only buffers are safe to serve and a later
        ``add`` simply pays the copy then.
        """

        def _column(array, dtype):
            wanted = np.dtype(dtype)
            if array.dtype == wanted and array.flags.c_contiguous:
                return array.copy() if copy else array
            # A dtype/contiguity conversion allocates fresh storage, so
            # the result is owned either way.
            return np.ascontiguousarray(array, dtype=wanted)

        self._e_member = _IntVec.adopt(_column(arrays["entry_member"],
                                               np.int32), np.int32)
        self._e_block = _IntVec.adopt(_column(arrays["entry_block"],
                                              np.int64), np.int64)
        self._e_sig = _IntVec.adopt(_column(arrays["entry_sig"], np.int32),
                                    np.int32)
        self._sealed = _Sealed(
            _column(arrays["post_keys"], np.int64),
            _column(arrays["post_blocks"], np.int64),
            _column(arrays["post_grams"], np.uint8),
            _column(arrays["post_offsets"], np.int64),
            _column(arrays["post_entries"], np.int32))
