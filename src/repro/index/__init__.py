"""Persistent top-k similarity index subsystem.

This package turns the library's ad-hoc, rebuilt-per-fit candidate
structures into a first-class index that can be built once, updated
incrementally, queried repeatedly and shipped between processes:

* :class:`~repro.index.core.SimilarityIndex` — members bucketed by
  ``(feature_type, block_size)`` with 7-gram inverted postings;
  ``add`` / ``add_many`` incremental updates, ``top_k`` queries,
  a budgeted ``pairwise_matrix`` and dense ``score_matrix`` scoring
  (the backend of
  :class:`~repro.features.similarity.SimilarityFeatureBuilder`);
* :mod:`~repro.index.postings` — the columnar storage behind it:
  signatures interned in an index-wide pool, entries as ``int32``
  columns, postings as sorted CSR triples over FNV-64 hashed
  ``(block_size, gram)`` keys with a vectorised candidate walk
  (``np.searchsorted`` + slab gather + ``np.unique``), built
  incrementally through a merge-on-demand tail (``seal()`` forces the
  merge);
* :mod:`~repro.index.storage` — the single-file on-disk container
  (JSON header + raw NumPy arrays, versioned, magic ``RPROSIDX``;
  format v2 carries the columnar arrays, v1 files rebuild on load);
* :class:`~repro.index.sharded.ShardedSimilarityIndex` — the same
  corpus partitioned across N shards by a deterministic ``sample_id``
  hash, with tombstoned ``remove`` + ``compact``, queries fanned out
  over a pluggable execution backend with bit-identical merged
  results, and per-shard directory persistence
  (``manifest.json`` + one container per shard);
  :func:`~repro.index.sharded.load_index` opens either format.

Digest format and comparability rules
-------------------------------------
An SSDeep digest is ``block_size:chunk:double_chunk``, where ``chunk``
was computed at ``block_size`` and ``double_chunk`` at twice that.  Two
digests are comparable only when their block sizes are **equal or one
step apart** (a factor of two); the index therefore expands every digest
into its ``(block_size, chunk)`` and ``(2 * block_size, double_chunk)``
signatures so comparability becomes exact block-size bucket matching.
Signatures are run-length normalised (runs longer than three characters
collapse to three) before indexing, and a pair can only score above zero
when it shares at least one **7-character substring** — the 7-gram
precondition that backs the inverted postings.  A consequence worth
remembering: signatures shorter than seven characters never match,
*even when identical*.  Scores are the SSDeep 0–100 scale (weighted
edit distance: insert/delete 1, substitute 3, transpose 5) with
identical signatures pinned to 100.

The same rules are documented from the CLI via
``repro-classify index stats`` and in the README's *Similarity index*
section.

Vector-digest members (second hash family)
------------------------------------------
Feature types named ``vector-*`` hold fixed-length ``vr1:`` digests
(:mod:`repro.hashing.vector`) instead of CTPH signatures.  They bypass
the posting machinery entirely: each vector store keeps one packed
``uint64`` row per member and candidates are scored by a vectorised
XOR + popcount Hamming sweep — every pair is comparable, no block-size
or 7-gram gate applies.  :class:`~repro.index.knn.VectorKNNIndex` is
the standalone top-k structure over one such packed matrix.
"""

from .core import IndexMatch, PairScore, SimilarityIndex, expand_digest
from .knn import KNNMatch, PackedDigestStore, VectorKNNIndex, brute_force_top_k
from .sharded import ShardedSimilarityIndex, load_index
from .storage import FORMAT_VERSION

__all__ = [
    "FORMAT_VERSION",
    "IndexMatch",
    "KNNMatch",
    "PackedDigestStore",
    "PairScore",
    "ShardedSimilarityIndex",
    "SimilarityIndex",
    "VectorKNNIndex",
    "brute_force_top_k",
    "expand_digest",
    "load_index",
]
