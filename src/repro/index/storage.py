"""On-disk container shared by the similarity index and model artifacts.

A saved container is one compact binary file:

====================  =======================================================
offset                content
====================  =======================================================
0                     8-byte magic (``b"RPROSIDX"`` for similarity indexes)
8                     format version, ``uint32`` little-endian
12                    header length in bytes, ``uint64`` little-endian
20                    UTF-8 JSON header
20 + header length    array payloads, C-contiguous, in header order
====================  =======================================================

The JSON header carries everything that is not bulk data (feature types,
sample ids, class names, n-gram length) plus one descriptor per array:
``{"name", "dtype", "shape"}``.  Only the small allowlisted set of dtypes
a container actually uses can appear, so a corrupted header cannot make
the reader allocate through an attacker-controlled dtype string.

Since format version 4 every array payload starts at the next
64-byte-aligned file offset (:data:`ARRAY_ALIGNMENT`): the writer pads
with zero bytes before each payload, records the alignment in the
header (``"payload_alignment": 64``), and the reader re-derives each
payload offset from the descriptor order plus that alignment — no
explicit offset table, the padded layout stays self-describing, and a
file remains readable even if its preamble version is re-stamped.
Alignment is what makes the zero-copy load mode safe and fast: with
``mmap_mode="r"`` the reader maps the file once and returns read-only
array views into the map instead of materialised copies — load cost is
O(header), the bulk payloads are faulted in lazily by the OS, and any
number of processes mapping the same file share one copy of the pages
in the page cache.  Files older than version 4 declare no alignment
(payloads are packed back to back) and always load through the
materialising copy path, bit-identically to previous releases.

The physical layout is parameterised by :class:`ContainerFormat` (magic,
version, dtype allowlist, error classes); :data:`INDEX_FORMAT` describes
similarity-index files and :mod:`repro.api.artifact` defines the model
artifact format on top of the same reader/writer.

Readers accept any file whose version is the format's current version or
lower; anything else (bad magic, truncated payload, unparsable header,
future version) raises the format's error class with a message naming
the file and the problem.

Writes are atomic and durable: the container is written to a ``*.tmp``
sibling, fsynced, moved into place with :func:`os.replace`, and the
parent directory is fsynced — an interrupted save can never leave a
half-written file under the final name, and a crash right after the
rename cannot lose the directory entry.
"""

from __future__ import annotations

import json
import math
import mmap
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

import numpy as np

from ..exceptions import IndexFormatError, ReproError, SimilarityIndexError

__all__ = ["FORMAT_VERSION", "MAGIC", "ARRAY_ALIGNMENT", "ContainerFormat",
           "INDEX_FORMAT", "write_container", "read_container",
           "read_container_header"]

#: Current similarity-index container format version.  Version 4 pads
#: every array payload to a 64-byte-aligned file offset so the file can
#: be memory-mapped and served zero-copy (``read_container(...,
#: mmap_mode="r")``).  Version 3 adds the optional packed vector-digest
#: sections (``v{idx}.*`` ``uint64`` matrices, :mod:`repro.index.knn`);
#: version 2 carries the columnar postings layout (interned signature
#: pool + CSR posting arrays per feature type,
#: :mod:`repro.index.postings`); version 1 files — flat per-entry
#: arrays — still load through the rebuild path in
#: :meth:`repro.index.SimilarityIndex.from_state`.  v1–v3 files have no
#: padding (and no vector sections below v3) and keep loading through
#: the materialising path, bit-identically.
FORMAT_VERSION = 4

#: File magic identifying a repro similarity index.
MAGIC = b"RPROSIDX"

#: Array payloads start at multiples of this offset since format
#: version 4.  64 bytes covers every dtype a container may declare and
#: matches the widest vector registers, so mapped views are always
#: element- and SIMD-aligned.
ARRAY_ALIGNMENT = 64

_PREAMBLE = struct.Struct("<8sIQ")


@dataclass(frozen=True)
class ContainerFormat:
    """Physical parameters of one container file family.

    Attributes
    ----------
    magic:
        8-byte file magic.
    version:
        Current format version; readers accept this version and lower.
    allowed_dtypes:
        dtype strings a well-formed header may declare.
    kind:
        Human-readable file-kind name used in error messages.
    format_error:
        Exception class raised for malformed/unsupported files.
    io_error:
        Exception class raised when the file cannot be written.
    """

    magic: bytes
    version: int
    allowed_dtypes: tuple[str, ...]
    kind: str
    format_error: type[ReproError]
    io_error: type[ReproError]


#: Container format of :class:`repro.index.SimilarityIndex` files.
INDEX_FORMAT = ContainerFormat(
    magic=MAGIC,
    version=FORMAT_VERSION,
    allowed_dtypes=("<i2", "<i4", "<i8", "|u1", "<u8"),
    kind="similarity index",
    format_error=IndexFormatError,
    io_error=SimilarityIndexError,
)


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory entry after a rename."""

    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        # Some filesystems (and all of Windows) refuse directory fsync;
        # the rename itself is still atomic, only crash durability of
        # the directory entry is best-effort there.
        pass
    finally:
        os.close(dir_fd)


def write_container(path: str | os.PathLike, header: Mapping,
                    arrays: Mapping[str, np.ndarray], *,
                    fmt: ContainerFormat = INDEX_FORMAT) -> Path:
    """Atomically and durably write ``header`` and ``arrays`` to ``path``."""

    path = Path(path)
    descriptors = []
    payloads = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        # dtype.str spells out the byte order even for native ('=') dtypes,
        # so this converts on big-endian hosts where byteorder is not '>'.
        if array.dtype.str.startswith(">"):
            array = array.astype(array.dtype.newbyteorder("<"))
        if array.dtype.str not in fmt.allowed_dtypes:
            raise fmt.format_error(
                f"cannot serialise array {name!r} with dtype {array.dtype.str!r}")
        descriptors.append({"name": name, "dtype": array.dtype.str,
                            "shape": list(array.shape)})
        payloads.append(array)

    align = ARRAY_ALIGNMENT
    full_header = dict(header)
    full_header["format_version"] = fmt.version
    full_header["payload_alignment"] = align
    full_header["arrays"] = descriptors
    header_bytes = json.dumps(full_header, separators=(",", ":"),
                              sort_keys=True).encode("utf-8")

    # Write-to-temp + fsync + rename keeps a concurrent reader (or a
    # crash at any point) from ever observing a truncated container
    # under the final name, including a crash right after the rename.
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "wb") as fh:
            fh.write(_PREAMBLE.pack(fmt.magic, fmt.version, len(header_bytes)))
            fh.write(header_bytes)
            offset = _PREAMBLE.size + len(header_bytes)
            for payload in payloads:
                pad = -offset % align
                if pad:
                    fh.write(b"\0" * pad)
                view = memoryview(payload).cast("B") if payload.size \
                    else b""
                fh.write(view)
                offset += pad + payload.nbytes
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except OSError as exc:
        try:
            tmp_path.unlink()
        except OSError:
            pass
        raise fmt.io_error(
            f"cannot write {fmt.kind} file {path}: {exc}") from exc
    _fsync_directory(path.parent)
    return path


def _parse_descriptor(descriptor, path: Path, fmt: ContainerFormat
                      ) -> tuple[str, np.dtype, tuple[int, ...], int, int]:
    """Validate one header array descriptor; returns its read plan."""

    try:
        name = descriptor["name"]
        dtype_str = descriptor["dtype"]
        shape = tuple(int(dim) for dim in descriptor["shape"])
    except (TypeError, KeyError, ValueError) as exc:
        raise fmt.format_error(
            f"{path} has a malformed array descriptor: {descriptor!r}") from exc
    if dtype_str not in fmt.allowed_dtypes:
        raise fmt.format_error(
            f"{path} declares disallowed dtype {dtype_str!r} for array {name!r}")
    if any(dim < 0 for dim in shape):
        raise fmt.format_error(
            f"{path} declares a negative dimension for array {name!r}")
    dtype = np.dtype(dtype_str)
    # Arbitrary-precision Python ints: a header declaring absurd
    # dimensions must fail the size check, not wrap around int64.
    n_items = math.prod(shape)
    n_bytes = dtype.itemsize * n_items
    return name, dtype, shape, n_items, n_bytes


def read_container(path: str | os.PathLike, *,
                   fmt: ContainerFormat = INDEX_FORMAT,
                   mmap_mode: str | None = None
                   ) -> tuple[dict, dict[str, np.ndarray]]:
    """Read ``(header, arrays)`` from ``path``, validating the format.

    With the default ``mmap_mode=None`` every array is materialised:
    the header is streamed first and each payload is read directly into
    its own freshly-allocated (writeable) array, so peak memory is ~1x
    the payload size.  With ``mmap_mode="r"`` and a version-4 file, the
    file is mapped once and the returned arrays are read-only zero-copy
    views into the map — the call is O(header), payload pages fault in
    on first touch, and the views keep working even after the source
    path is :func:`os.replace`-d (the mapping pins the old inode).
    Files older than version 4 have no alignment guarantee and fall
    back to the materialising path regardless of ``mmap_mode``.
    """

    if mmap_mode not in (None, "r"):
        raise ValueError(f"unsupported mmap_mode {mmap_mode!r}; "
                         "use None (materialise) or 'r' (read-only map)")
    path = Path(path)
    if not path.is_file():
        raise fmt.format_error(f"{fmt.kind} file {path} does not exist")
    try:
        with open(path, "rb") as fh:
            return _read_open_container(fh, path, fmt, mmap_mode)
    except OSError as exc:
        raise fmt.format_error(
            f"cannot read {fmt.kind} file {path}: {exc}") from exc


def read_container_header(path: str | os.PathLike, *,
                          fmt: ContainerFormat = INDEX_FORMAT) -> dict:
    """Read and validate just the JSON header of a container file.

    O(header) regardless of payload size — no array is touched.  Used
    by callers that only need container metadata (e.g. the serving
    tier peeking at a model artifact's ``wal_checkpoint`` before
    deciding which write-ahead-log records still need replaying).
    """

    path = Path(path)
    if not path.is_file():
        raise fmt.format_error(f"{fmt.kind} file {path} does not exist")
    try:
        with open(path, "rb") as fh:
            file_size = os.fstat(fh.fileno()).st_size
            return _read_header(fh, path, fmt, file_size)[0]
    except OSError as exc:
        raise fmt.format_error(
            f"cannot read {fmt.kind} file {path}: {exc}") from exc


def _read_header(fh, path: Path, fmt: ContainerFormat,
                 file_size: int) -> tuple[dict, int]:
    """Parse and validate the preamble + JSON header of an open file;
    returns ``(header, header_end_offset)``."""

    preamble = fh.read(_PREAMBLE.size)
    if len(preamble) < _PREAMBLE.size:
        raise fmt.format_error(f"{path} is too short to be a {fmt.kind}")
    magic, version, header_len = _PREAMBLE.unpack(preamble)
    if magic != fmt.magic:
        raise fmt.format_error(f"{path} is not a {fmt.kind} file (bad magic)")
    if version > fmt.version:
        raise fmt.format_error(
            f"{path} uses {fmt.kind} format version {version}; this build "
            f"reads up to version {fmt.version}")

    header_end = _PREAMBLE.size + header_len
    if header_end > file_size:
        raise fmt.format_error(f"{path} is truncated (incomplete header)")
    try:
        header = json.loads(fh.read(header_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise fmt.format_error(f"{path} has a corrupt header: {exc}") from exc
    if not isinstance(header, dict) or not isinstance(header.get("arrays"), list):
        raise fmt.format_error(f"{path} has a malformed header")
    return header, header_end


def _read_open_container(fh, path: Path, fmt: ContainerFormat,
                         mmap_mode: str | None
                         ) -> tuple[dict, dict[str, np.ndarray]]:
    file_size = os.fstat(fh.fileno()).st_size
    header, header_end = _read_header(fh, path, fmt, file_size)

    align = header.get("payload_alignment", 1)
    if not isinstance(align, int) or align < 1:
        raise fmt.format_error(
            f"{path} declares an invalid payload alignment {align!r}")
    # Zero-copy needs the v4 alignment guarantee; unpadded legacy files
    # (no declared alignment) fall back to the materialising path.
    use_mmap = mmap_mode == "r" and align % ARRAY_ALIGNMENT == 0
    mapped = None
    if use_mmap:
        # One shared read-only map for every array; the file descriptor
        # can be closed immediately (the mapping pins the inode), so
        # repeated reloads never accumulate descriptors.
        mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)

    arrays: dict[str, np.ndarray] = {}
    offset = header_end
    for descriptor in header["arrays"]:
        name, dtype, shape, n_items, n_bytes = _parse_descriptor(
            descriptor, path, fmt)
        offset += -offset % align
        if offset + n_bytes > file_size:
            raise fmt.format_error(
                f"{path} is truncated (array {name!r} ends past end of file)")
        if use_mmap:
            # np.frombuffer over ACCESS_READ yields non-writeable views:
            # a stray in-place mutation raises instead of corrupting the
            # shared page cache.
            array = np.frombuffer(mapped, dtype=dtype, count=n_items,
                                  offset=offset)
        else:
            fh.seek(offset)
            array = np.empty(n_items, dtype=dtype)
            if fh.readinto(memoryview(array).cast("B")) != n_bytes:
                raise fmt.format_error(
                    f"{path} is truncated (array {name!r} ends past end of file)")
        arrays[name] = array.reshape(shape)
        offset += n_bytes
    if offset != file_size:
        raise fmt.format_error(
            f"{path} has {file_size - offset} trailing bytes after the last array")
    return header, arrays
