"""On-disk container for the similarity index.

A saved index is one compact binary file:

====================  =======================================================
offset                content
====================  =======================================================
0                     magic ``b"RPROSIDX"`` (8 bytes)
8                     format version, ``uint32`` little-endian
12                    header length in bytes, ``uint64`` little-endian
20                    UTF-8 JSON header
20 + header length    raw array payloads, C-contiguous, in header order
====================  =======================================================

The JSON header carries everything that is not bulk data (feature types,
sample ids, class names, n-gram length) plus one descriptor per array:
``{"name", "dtype", "shape"}``.  Only the small allowlisted set of dtypes
the index actually uses can appear, so a corrupted header cannot make the
reader allocate through an attacker-controlled dtype string.

Readers accept any file whose major version is :data:`FORMAT_VERSION` or
lower; anything else (bad magic, truncated payload, unparsable header,
future version) raises :class:`~repro.exceptions.IndexFormatError` with a
message naming the file and the problem.
"""

from __future__ import annotations

import json
import math
import os
import struct
from pathlib import Path
from typing import Mapping

import numpy as np

from ..exceptions import IndexFormatError, SimilarityIndexError

__all__ = ["FORMAT_VERSION", "MAGIC", "write_container", "read_container"]

#: Current (and oldest readable) container format version.
FORMAT_VERSION = 1

#: File magic identifying a repro similarity index.
MAGIC = b"RPROSIDX"

_PREAMBLE = struct.Struct("<8sIQ")

#: dtypes a well-formed header may declare.
_ALLOWED_DTYPES = ("<i2", "<i4", "<i8", "|u1")


def write_container(path: str | os.PathLike, header: Mapping,
                    arrays: Mapping[str, np.ndarray]) -> Path:
    """Write ``header`` and ``arrays`` to ``path``; returns the path."""

    path = Path(path)
    descriptors = []
    payloads = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        # dtype.str spells out the byte order even for native ('=') dtypes,
        # so this converts on big-endian hosts where byteorder is not '>'.
        if array.dtype.str.startswith(">"):
            array = array.astype(array.dtype.newbyteorder("<"))
        if array.dtype.str not in _ALLOWED_DTYPES:
            raise IndexFormatError(
                f"cannot serialise array {name!r} with dtype {array.dtype.str!r}")
        descriptors.append({"name": name, "dtype": array.dtype.str,
                            "shape": list(array.shape)})
        payloads.append(array.tobytes())

    full_header = dict(header)
    full_header["format_version"] = FORMAT_VERSION
    full_header["arrays"] = descriptors
    header_bytes = json.dumps(full_header, separators=(",", ":"),
                              sort_keys=True).encode("utf-8")

    try:
        with open(path, "wb") as fh:
            fh.write(_PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(header_bytes)))
            fh.write(header_bytes)
            for payload in payloads:
                fh.write(payload)
    except OSError as exc:
        raise SimilarityIndexError(
            f"cannot write index file {path}: {exc}") from exc
    return path


def read_container(path: str | os.PathLike) -> tuple[dict, dict[str, np.ndarray]]:
    """Read ``(header, arrays)`` from ``path``, validating the format."""

    path = Path(path)
    if not path.is_file():
        raise IndexFormatError(f"index file {path} does not exist")
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise IndexFormatError(f"cannot read index file {path}: {exc}") from exc

    if len(data) < _PREAMBLE.size:
        raise IndexFormatError(f"{path} is too short to be a similarity index")
    magic, version, header_len = _PREAMBLE.unpack_from(data)
    if magic != MAGIC:
        raise IndexFormatError(f"{path} is not a similarity index file (bad magic)")
    if version > FORMAT_VERSION:
        raise IndexFormatError(
            f"{path} uses index format version {version}; this build reads "
            f"up to version {FORMAT_VERSION}")

    header_end = _PREAMBLE.size + header_len
    if header_end > len(data):
        raise IndexFormatError(f"{path} is truncated (incomplete header)")
    try:
        header = json.loads(data[_PREAMBLE.size:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IndexFormatError(f"{path} has a corrupt header: {exc}") from exc
    if not isinstance(header, dict) or not isinstance(header.get("arrays"), list):
        raise IndexFormatError(f"{path} has a malformed header")

    arrays: dict[str, np.ndarray] = {}
    offset = header_end
    for descriptor in header["arrays"]:
        try:
            name = descriptor["name"]
            dtype_str = descriptor["dtype"]
            shape = tuple(int(dim) for dim in descriptor["shape"])
        except (TypeError, KeyError, ValueError) as exc:
            raise IndexFormatError(
                f"{path} has a malformed array descriptor: {descriptor!r}") from exc
        if dtype_str not in _ALLOWED_DTYPES:
            raise IndexFormatError(
                f"{path} declares disallowed dtype {dtype_str!r} for array {name!r}")
        if any(dim < 0 for dim in shape):
            raise IndexFormatError(
                f"{path} declares a negative dimension for array {name!r}")
        dtype = np.dtype(dtype_str)
        # Arbitrary-precision Python ints: a header declaring absurd
        # dimensions must fail the size check, not wrap around int64.
        n_items = math.prod(shape)
        n_bytes = dtype.itemsize * n_items
        if offset + n_bytes > len(data):
            raise IndexFormatError(
                f"{path} is truncated (array {name!r} ends past end of file)")
        arrays[name] = np.frombuffer(
            data, dtype=dtype, count=n_items,
            offset=offset).reshape(shape).copy()
        offset += n_bytes
    if offset != len(data):
        raise IndexFormatError(
            f"{path} has {len(data) - offset} trailing bytes after the last array")
    return header, arrays
