"""On-disk container shared by the similarity index and model artifacts.

A saved container is one compact binary file:

====================  =======================================================
offset                content
====================  =======================================================
0                     8-byte magic (``b"RPROSIDX"`` for similarity indexes)
8                     format version, ``uint32`` little-endian
12                    header length in bytes, ``uint64`` little-endian
20                    UTF-8 JSON header
20 + header length    raw array payloads, C-contiguous, in header order
====================  =======================================================

The JSON header carries everything that is not bulk data (feature types,
sample ids, class names, n-gram length) plus one descriptor per array:
``{"name", "dtype", "shape"}``.  Only the small allowlisted set of dtypes
a container actually uses can appear, so a corrupted header cannot make
the reader allocate through an attacker-controlled dtype string.

The physical layout is parameterised by :class:`ContainerFormat` (magic,
version, dtype allowlist, error classes); :data:`INDEX_FORMAT` describes
similarity-index files and :mod:`repro.api.artifact` defines the model
artifact format on top of the same reader/writer.

Readers accept any file whose version is the format's current version or
lower; anything else (bad magic, truncated payload, unparsable header,
future version) raises the format's error class with a message naming
the file and the problem.

Writes are atomic: the container is written to a ``*.tmp`` sibling and
moved into place with :func:`os.replace`, so an interrupted save can
never leave a half-written file under the final name.
"""

from __future__ import annotations

import json
import math
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

import numpy as np

from ..exceptions import IndexFormatError, ReproError, SimilarityIndexError

__all__ = ["FORMAT_VERSION", "MAGIC", "ContainerFormat", "INDEX_FORMAT",
           "write_container", "read_container"]

#: Current similarity-index container format version.  Version 3 adds
#: the optional packed vector-digest sections (``v{idx}.*`` ``uint64``
#: matrices, :mod:`repro.index.knn`); version 2 carries the columnar
#: postings layout (interned signature pool + CSR posting arrays per
#: feature type, :mod:`repro.index.postings`); version 1 files — flat
#: per-entry arrays — still load through the rebuild path in
#: :meth:`repro.index.SimilarityIndex.from_state`.  v1/v2 files simply
#: have no vector sections and load CTPH-only, bit-identically.
FORMAT_VERSION = 3

#: File magic identifying a repro similarity index.
MAGIC = b"RPROSIDX"

_PREAMBLE = struct.Struct("<8sIQ")


@dataclass(frozen=True)
class ContainerFormat:
    """Physical parameters of one container file family.

    Attributes
    ----------
    magic:
        8-byte file magic.
    version:
        Current format version; readers accept this version and lower.
    allowed_dtypes:
        dtype strings a well-formed header may declare.
    kind:
        Human-readable file-kind name used in error messages.
    format_error:
        Exception class raised for malformed/unsupported files.
    io_error:
        Exception class raised when the file cannot be written.
    """

    magic: bytes
    version: int
    allowed_dtypes: tuple[str, ...]
    kind: str
    format_error: type[ReproError]
    io_error: type[ReproError]


#: Container format of :class:`repro.index.SimilarityIndex` files.
INDEX_FORMAT = ContainerFormat(
    magic=MAGIC,
    version=FORMAT_VERSION,
    allowed_dtypes=("<i2", "<i4", "<i8", "|u1", "<u8"),
    kind="similarity index",
    format_error=IndexFormatError,
    io_error=SimilarityIndexError,
)


def write_container(path: str | os.PathLike, header: Mapping,
                    arrays: Mapping[str, np.ndarray], *,
                    fmt: ContainerFormat = INDEX_FORMAT) -> Path:
    """Atomically write ``header`` and ``arrays`` to ``path``."""

    path = Path(path)
    descriptors = []
    payloads = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        # dtype.str spells out the byte order even for native ('=') dtypes,
        # so this converts on big-endian hosts where byteorder is not '>'.
        if array.dtype.str.startswith(">"):
            array = array.astype(array.dtype.newbyteorder("<"))
        if array.dtype.str not in fmt.allowed_dtypes:
            raise fmt.format_error(
                f"cannot serialise array {name!r} with dtype {array.dtype.str!r}")
        descriptors.append({"name": name, "dtype": array.dtype.str,
                            "shape": list(array.shape)})
        payloads.append(array.tobytes())

    full_header = dict(header)
    full_header["format_version"] = fmt.version
    full_header["arrays"] = descriptors
    header_bytes = json.dumps(full_header, separators=(",", ":"),
                              sort_keys=True).encode("utf-8")

    # Write-to-temp + rename keeps a concurrent reader (or a crash) from
    # ever observing a truncated container under the final name.
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "wb") as fh:
            fh.write(_PREAMBLE.pack(fmt.magic, fmt.version, len(header_bytes)))
            fh.write(header_bytes)
            for payload in payloads:
                fh.write(payload)
        os.replace(tmp_path, path)
    except OSError as exc:
        try:
            tmp_path.unlink()
        except OSError:
            pass
        raise fmt.io_error(
            f"cannot write {fmt.kind} file {path}: {exc}") from exc
    return path


def read_container(path: str | os.PathLike, *,
                   fmt: ContainerFormat = INDEX_FORMAT
                   ) -> tuple[dict, dict[str, np.ndarray]]:
    """Read ``(header, arrays)`` from ``path``, validating the format."""

    path = Path(path)
    if not path.is_file():
        raise fmt.format_error(f"{fmt.kind} file {path} does not exist")
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise fmt.format_error(
            f"cannot read {fmt.kind} file {path}: {exc}") from exc

    if len(data) < _PREAMBLE.size:
        raise fmt.format_error(f"{path} is too short to be a {fmt.kind}")
    magic, version, header_len = _PREAMBLE.unpack_from(data)
    if magic != fmt.magic:
        raise fmt.format_error(f"{path} is not a {fmt.kind} file (bad magic)")
    if version > fmt.version:
        raise fmt.format_error(
            f"{path} uses {fmt.kind} format version {version}; this build "
            f"reads up to version {fmt.version}")

    header_end = _PREAMBLE.size + header_len
    if header_end > len(data):
        raise fmt.format_error(f"{path} is truncated (incomplete header)")
    try:
        header = json.loads(data[_PREAMBLE.size:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise fmt.format_error(f"{path} has a corrupt header: {exc}") from exc
    if not isinstance(header, dict) or not isinstance(header.get("arrays"), list):
        raise fmt.format_error(f"{path} has a malformed header")

    arrays: dict[str, np.ndarray] = {}
    offset = header_end
    for descriptor in header["arrays"]:
        try:
            name = descriptor["name"]
            dtype_str = descriptor["dtype"]
            shape = tuple(int(dim) for dim in descriptor["shape"])
        except (TypeError, KeyError, ValueError) as exc:
            raise fmt.format_error(
                f"{path} has a malformed array descriptor: {descriptor!r}") from exc
        if dtype_str not in fmt.allowed_dtypes:
            raise fmt.format_error(
                f"{path} declares disallowed dtype {dtype_str!r} for array {name!r}")
        if any(dim < 0 for dim in shape):
            raise fmt.format_error(
                f"{path} declares a negative dimension for array {name!r}")
        dtype = np.dtype(dtype_str)
        # Arbitrary-precision Python ints: a header declaring absurd
        # dimensions must fail the size check, not wrap around int64.
        n_items = math.prod(shape)
        n_bytes = dtype.itemsize * n_items
        if offset + n_bytes > len(data):
            raise fmt.format_error(
                f"{path} is truncated (array {name!r} ends past end of file)")
        arrays[name] = np.frombuffer(
            data, dtype=dtype, count=n_items,
            offset=offset).reshape(shape).copy()
        offset += n_bytes
    if offset != len(data):
        raise fmt.format_error(
            f"{path} has {len(data) - offset} trailing bytes after the last array")
    return header, arrays
