"""Packed-Hamming kNN over fixed-length vector digests.

Two layers live here:

* :class:`PackedDigestStore` — the storage engine: one member = one row
  of :data:`~repro.hashing.vector.VECTOR_WORDS` ``uint64`` words (plus a
  presence flag and the 2-byte digest header), kept as a single packed
  ``(n, words)`` matrix so a query is answered by one vectorised
  ``XOR`` + popcount sweep.  :class:`~repro.index.core.SimilarityIndex`
  embeds one store per ``vector-*`` feature type, which is how the
  vector family rides the existing sharding, persistence, ingestion and
  hot-reload machinery.
* :class:`VectorKNNIndex` — a standalone index over one digest per
  member, mirroring the :class:`~repro.index.core.SimilarityIndex`
  contract (``add`` / ``remove`` tombstones / ``compact`` / ``top_k`` /
  ``stats`` / ``get_state`` / ``from_state`` / ``save`` / ``load``).
  Benchmarks and property tests drive this class directly.

:func:`brute_force_top_k` is the deliberately unvectorised reference
implementation the property tests and the benchmark compare against:
packed top-k must be bit-identical to it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import SimilarityIndexError, ValidationError
from ..hashing.vector import (
    VECTOR_WORDS,
    VectorDigest,
    hamming_distance,
    packed_hamming,
    score_from_distance,
)
from .storage import INDEX_FORMAT, read_container, write_container

__all__ = ["PackedDigestStore", "VectorKNNIndex", "KNNMatch",
           "brute_force_top_k"]


@dataclass(frozen=True)
class KNNMatch:
    """One top-k neighbour: member, class, Hamming distance and score."""

    sample_id: str
    class_name: str
    distance: int
    score: int


class PackedDigestStore:
    """Append-only packed storage for one vector-digest feature type.

    Rows align 1:1 with the owning index's member order; members whose
    digest is missing (e.g. a feature the extractor could not compute)
    still occupy a zeroed row with ``present == 0`` so row index ==
    member index always holds.

    Storage is a columnar *base* (immutable arrays — on load these are
    adopted directly from the container, possibly as read-only zero-copy
    views into a mapped file) plus a small mutable *tail* of appended
    rows; the packed matrix over both is materialised lazily and
    invalidated on append.  The base arrays are never written in place,
    so mapped views are safe to serve from any number of processes.
    """

    def __init__(self) -> None:
        self._base_words = np.zeros((0, VECTOR_WORDS), dtype=np.uint64)
        self._base_present = np.zeros(0, dtype=bool)
        self._base_lvalues = np.zeros(0, dtype=np.uint8)
        self._base_checksums = np.zeros(0, dtype=np.uint8)
        self._tail_words: list[np.ndarray] = []  # (VECTOR_WORDS,) uint64 each
        self._tail_present: list[bool] = []
        self._tail_lvalues: list[int] = []
        self._tail_checksums: list[int] = []
        self._matrix: np.ndarray | None = None
        self._present_arr: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._base_words) + len(self._tail_words)

    # ------------------------------------------------------------- updates
    def append(self, digest: "VectorDigest | str | None") -> None:
        """Append one member row (``None`` or ``""`` = digest absent)."""

        if digest is None or digest == "":
            self._tail_words.append(np.zeros(VECTOR_WORDS, dtype=np.uint64))
            self._tail_present.append(False)
            self._tail_lvalues.append(0)
            self._tail_checksums.append(0)
        else:
            parsed = digest if isinstance(digest, VectorDigest) \
                else VectorDigest.parse(digest)
            self._tail_words.append(parsed.words.astype(np.uint64))
            self._tail_present.append(True)
            self._tail_lvalues.append(parsed.lvalue)
            self._tail_checksums.append(parsed.checksum)
        self._matrix = None
        self._present_arr = None

    # ------------------------------------------------------------- queries
    @property
    def matrix(self) -> np.ndarray:
        """Packed ``(n, VECTOR_WORDS)`` ``uint64`` digest matrix."""

        if self._matrix is None:
            if self._tail_words:
                self._matrix = np.vstack(
                    [self._base_words] + self._tail_words).astype(
                        np.uint64, copy=False)
            else:
                # No appends since load: the base (possibly a zero-copy
                # mapped view) is served as-is.
                self._matrix = self._base_words
        return self._matrix

    @property
    def present(self) -> np.ndarray:
        """``(n,)`` boolean mask of rows that carry a digest."""

        if self._present_arr is None:
            if self._tail_present:
                self._present_arr = np.concatenate(
                    [self._base_present,
                     np.asarray(self._tail_present, dtype=bool)])
            else:
                self._present_arr = self._base_present
        return self._present_arr

    def _lvalues_array(self) -> np.ndarray:
        if self._tail_lvalues:
            return np.concatenate(
                [self._base_lvalues,
                 np.asarray(self._tail_lvalues, dtype=np.uint8)])
        return self._base_lvalues

    def _checksums_array(self) -> np.ndarray:
        if self._tail_checksums:
            return np.concatenate(
                [self._base_checksums,
                 np.asarray(self._tail_checksums, dtype=np.uint8)])
        return self._base_checksums

    def distances(self, digest: "VectorDigest | str") -> np.ndarray:
        """Body Hamming distance of ``digest`` against every row.

        Absent rows get distance ``VECTOR_BODY_BITS + 1`` (past any
        real distance) so downstream score mapping sends them to 0.
        """

        parsed = digest if isinstance(digest, VectorDigest) \
            else VectorDigest.parse(digest)
        dist = packed_hamming(self.matrix, parsed.words)
        if len(dist) and not self.present.all():
            dist = np.where(self.present, dist,
                            np.int32(8 * VECTOR_WORDS * 8 + 1))
        return dist

    def scores(self, digest: "VectorDigest | str") -> np.ndarray:
        """0–100 scores of ``digest`` against every row (absent rows 0)."""

        scores = score_from_distance(self.distances(digest))
        return np.asarray(scores, dtype=np.int64)

    def digest_string(self, row: int) -> str:
        """Canonical digest string of one row (``""`` if absent)."""

        n_base = len(self._base_words)
        if row < n_base:
            if not self._base_present[row]:
                return ""
            return str(VectorDigest.from_words(int(self._base_lvalues[row]),
                                               int(self._base_checksums[row]),
                                               self._base_words[row]))
        tail = row - n_base
        if not self._tail_present[tail]:
            return ""
        return str(VectorDigest.from_words(self._tail_lvalues[tail],
                                           self._tail_checksums[tail],
                                           self._tail_words[tail]))

    def subset(self, indices: Sequence[int]) -> "PackedDigestStore":
        """New store holding ``indices`` rows in the given order."""

        out = PackedDigestStore()
        idx = np.asarray(list(indices), dtype=np.int64)
        if len(idx):
            # Fancy indexing materialises fresh arrays, so the subset
            # never aliases this store (or a mapped file).
            out._base_words = self.matrix[idx]
            out._base_present = self.present[idx]
            out._base_lvalues = self._lvalues_array()[idx]
            out._base_checksums = self._checksums_array()[idx]
        return out

    @property
    def nbytes(self) -> int:
        """Approximate payload bytes of the packed representation."""

        return len(self) * (VECTOR_WORDS * 8 + 3)

    # --------------------------------------------------------- persistence
    def get_arrays(self) -> dict[str, np.ndarray]:
        """Arrays for container persistence (``words``/``present``/headers)."""

        return {
            "words": self.matrix.astype("<u8", copy=False),
            "present": self.present.astype("|u1"),
            "lvalues": self._lvalues_array().astype("|u1", copy=False),
            "checksums": self._checksums_array().astype("|u1", copy=False),
        }

    @classmethod
    def adopt_arrays(cls, arrays: Mapping[str, np.ndarray], *,
                     copy: bool = True) -> "PackedDigestStore":
        """Rebuild a store from :meth:`get_arrays` output, validating shape.

        With ``copy=False`` the arrays become the store's base columns
        without copying — the zero-copy load path for mapped containers.
        """

        def _column(array, dtype):
            wanted = np.dtype(dtype)
            array = np.asarray(array)
            if array.dtype == wanted and array.flags.c_contiguous:
                return array.copy() if copy else array
            return np.ascontiguousarray(array, dtype=wanted)

        try:
            words = np.asarray(arrays["words"])
            present = np.asarray(arrays["present"])
            lvalues = np.asarray(arrays["lvalues"])
            checksums = np.asarray(arrays["checksums"])
        except KeyError as exc:
            raise ValidationError(
                f"vector store payload is missing array {exc}") from exc
        if words.ndim != 2 or words.shape[1] != VECTOR_WORDS:
            raise ValidationError(
                f"vector store words must be (n, {VECTOR_WORDS}), "
                f"got {words.shape}")
        n = words.shape[0]
        if not (len(present) == len(lvalues) == len(checksums) == n):
            raise ValidationError(
                "vector store arrays disagree on member count")
        store = cls()
        store._base_words = _column(words, np.uint64)
        # The 1-byte presence mask is normalised to bool (a copy, but a
        # negligible one next to the digest matrix staying mapped).
        store._base_present = present.astype(bool)
        store._base_lvalues = _column(lvalues, np.uint8)
        store._base_checksums = _column(checksums, np.uint8)
        return store


class VectorKNNIndex:
    """Standalone kNN index over one vector digest per member.

    Mirrors the :class:`~repro.index.core.SimilarityIndex` lifecycle:
    ``add`` appends, ``remove`` tombstones (queries skip dead members
    without rebuilding the matrix), ``compact`` rebuilds densely, and
    ``get_state``/``from_state``/``save``/``load`` round-trip through
    the shared container format.
    """

    def __init__(self) -> None:
        self._store = PackedDigestStore()
        self._sample_ids: list[str] = []
        self._classes: list[str] = []
        self._by_id: dict[str, int] = {}
        self._dead: set[int] = set()

    # ------------------------------------------------------------- updates
    def add(self, sample_id: str, class_name: str,
            digest: "VectorDigest | str") -> None:
        sample_id = str(sample_id)
        if sample_id in self._by_id:
            raise SimilarityIndexError(
                f"sample {sample_id!r} is already indexed")
        # Parse before mutating so a malformed digest cannot leave a
        # half-added member behind.
        parsed = digest if isinstance(digest, VectorDigest) \
            else VectorDigest.parse(digest)
        self._by_id[sample_id] = len(self._sample_ids)
        self._sample_ids.append(sample_id)
        self._classes.append(str(class_name))
        self._store.append(parsed)

    def add_many(self, items: Iterable[tuple[str, str, "VectorDigest | str"]]
                 ) -> None:
        for sample_id, class_name, digest in items:
            self.add(sample_id, class_name, digest)

    def remove(self, sample_id: str) -> None:
        """Tombstone one member; queries stop returning it immediately."""

        row = self._by_id.get(str(sample_id))
        if row is None or row in self._dead:
            raise SimilarityIndexError(f"sample {sample_id!r} is not indexed")
        self._dead.add(row)

    def compact(self) -> int:
        """Drop tombstoned rows; returns the number of rows reclaimed."""

        if not self._dead:
            return 0
        survivors = [i for i in range(len(self._sample_ids))
                     if i not in self._dead]
        reclaimed = len(self._sample_ids) - len(survivors)
        self._store = self._store.subset(survivors)
        self._sample_ids = [self._sample_ids[i] for i in survivors]
        self._classes = [self._classes[i] for i in survivors]
        self._by_id = {sid: row for row, sid in enumerate(self._sample_ids)}
        self._dead = set()
        return reclaimed

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._sample_ids) - len(self._dead)

    def __contains__(self, sample_id: str) -> bool:
        row = self._by_id.get(str(sample_id))
        return row is not None and row not in self._dead

    def top_k(self, digest: "VectorDigest | str", k: int = 10, *,
              min_score: int = 1,
              exclude: "set[str] | None" = None) -> list[KNNMatch]:
        """Best ``k`` members by Hamming distance, one packed sweep.

        Ties break by (distance, member order) so results are stable and
        bit-identical to :func:`brute_force_top_k`.
        """

        if k < 1:
            raise ValidationError("k must be >= 1")
        n = len(self._sample_ids)
        if n == 0:
            return []
        dist = self._store.distances(digest)
        scores = np.asarray(score_from_distance(dist), dtype=np.int64)
        alive = np.ones(n, dtype=bool)
        if self._dead:
            alive[list(self._dead)] = False
        if exclude:
            for sid in exclude:
                row = self._by_id.get(str(sid))
                if row is not None:
                    alive[row] = False
        eligible = alive & (scores >= min_score)
        rows = np.flatnonzero(eligible)
        if not len(rows):
            return []
        order = rows[np.argsort(dist[rows], kind="stable")][:k]
        return [KNNMatch(sample_id=self._sample_ids[row],
                         class_name=self._classes[row],
                         distance=int(dist[row]),
                         score=int(scores[row]))
                for row in order]

    def stats(self) -> dict:
        """Operator-facing summary (family breakdown lives here)."""

        present = self._store.present
        alive = np.ones(len(self._sample_ids), dtype=bool)
        if self._dead:
            alive[list(self._dead)] = False
        return {
            "members": int(len(self)),
            "tombstones": int(len(self._dead)),
            "digest_bits": 8 * VECTOR_WORDS * 8,
            "words_per_digest": VECTOR_WORDS,
            "packed_matrix_bytes": int(self._store.nbytes),
            "members_with_digest": int((present & alive).sum()) if len(alive) else 0,
            "classes": sorted({self._classes[i]
                               for i in range(len(self._classes))
                               if alive[i]}),
        }

    # --------------------------------------------------------- persistence
    def get_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        header = {
            "kind": "vector-knn",
            "sample_ids": list(self._sample_ids),
            "class_names": list(self._classes),
            "dead": sorted(self._dead),
        }
        arrays = {f"v0.{name}": arr
                  for name, arr in self._store.get_arrays().items()}
        return header, arrays

    @classmethod
    def from_state(cls, header: Mapping, arrays: Mapping[str, np.ndarray], *,
                   copy: bool = True) -> "VectorKNNIndex":
        if header.get("kind") != "vector-knn":
            raise ValidationError(
                f"not a vector-knn state (kind={header.get('kind')!r})")
        index = cls()
        index._sample_ids = [str(s) for s in header.get("sample_ids", [])]
        index._classes = [str(c) for c in header.get("class_names", [])]
        if len(index._sample_ids) != len(index._classes):
            raise ValidationError(
                "vector-knn state: sample_ids and class_names disagree")
        index._by_id = {sid: row for row, sid in enumerate(index._sample_ids)}
        if len(index._by_id) != len(index._sample_ids):
            raise ValidationError("vector-knn state: duplicate sample ids")
        index._store = PackedDigestStore.adopt_arrays(
            {name.split(".", 1)[1]: arr for name, arr in arrays.items()
             if name.startswith("v0.")}, copy=copy)
        if len(index._store) != len(index._sample_ids):
            raise ValidationError(
                "vector-knn state: digest rows and sample_ids disagree")
        dead = {int(d) for d in header.get("dead", [])}
        if any(d < 0 or d >= len(index._sample_ids) for d in dead):
            raise ValidationError("vector-knn state: tombstone out of range")
        index._dead = dead
        return index

    def save(self, path: str | os.PathLike) -> None:
        header, arrays = self.get_state()
        write_container(path, header, arrays, fmt=INDEX_FORMAT)

    @classmethod
    def load(cls, path: str | os.PathLike, *,
             mmap_mode: str | None = None) -> "VectorKNNIndex":
        """Load a saved index; ``mmap_mode="r"`` adopts zero-copy views."""

        header, arrays = read_container(path, fmt=INDEX_FORMAT,
                                        mmap_mode=mmap_mode)
        header.pop("format_version", None)
        header.pop("payload_alignment", None)
        header.pop("arrays", None)
        # A freshly-read container is exclusively owned (eager) or an
        # immutable mapped view (mmap): adopting without copies is safe.
        return cls.from_state(header, arrays, copy=False)


def brute_force_top_k(members: Sequence[tuple[str, str, str]],
                      digest: "VectorDigest | str", k: int = 10, *,
                      min_score: int = 1) -> list[KNNMatch]:
    """Reference top-k: per-pair Hamming loop, no packing, no NumPy sweep.

    ``members`` is ``(sample_id, class_name, digest_string)`` in index
    order.  Property tests and the benchmark assert the packed sweep of
    :meth:`VectorKNNIndex.top_k` is bit-identical to this.
    """

    scored = []
    for order, (sample_id, class_name, member_digest) in enumerate(members):
        dist = hamming_distance(digest, member_digest)
        score = int(score_from_distance(dist))
        if score >= min_score:
            scored.append((dist, order, sample_id, class_name, score))
    scored.sort(key=lambda item: (item[0], item[1]))
    return [KNNMatch(sample_id=sid, class_name=cls_name, distance=dist,
                     score=score)
            for dist, _, sid, cls_name, score in scored[:k]]
