"""The persistent top-k similarity index.

:class:`SimilarityIndex` is the candidate-generation and scoring engine
shared by every bulk digest workload in the library.  It holds *members*
(samples identified by ``sample_id``, optionally carrying a class label)
whose SSDeep digests are bucketed by ``(feature_type, block_size)`` and
indexed by their 7-gram postings, and answers:

* ``top_k`` — the best-scoring members for a query digest;
* ``score_matrix`` — a dense query × member score matrix (what the
  similarity feature builder consumes);
* ``pairwise_matrix`` — budgeted all-vs-all member scoring;
* ``save`` / ``load`` — round-tripping to a single compact file
  (:mod:`repro.index.storage`).

Scoring semantics (the "comparability rules") are exactly those of the
bulk seed path:

1. a digest ``block_size:chunk:double_chunk`` is expanded into its
   ``(block_size, chunk)`` and ``(2 * block_size, double_chunk)``
   signatures, with runs longer than three characters collapsed first;
   two signatures are only comparable at *equal* block sizes, which is
   how SSDeep's "equal or adjacent block size" rule becomes exact
   bucket matching;
2. a signature pair can only score above zero when it shares a
   substring of :data:`~repro.hashing.rolling.ROLLING_WINDOW` (7)
   characters, so candidates come from the 7-gram inverted postings and
   everything else is rejected without an edit distance — note this
   *precondition* means signatures shorter than 7 characters never
   match, even when identical;
3. surviving pairs are scored with the batched weighted edit distance
   (insert/delete 1, substitute 3, transpose 5) mapped onto the 0–100
   SSDeep scale, with identical signatures pinned to 100;
4. a member's score is the maximum over its comparable signature pairs
   (and over feature types, when more than one is queried).
"""

from __future__ import annotations

import os
from collections import defaultdict
from dataclasses import dataclass
from itertools import combinations
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..distance.batch import BatchEditDistance
from ..distance.scoring import ssdeep_score_from_distance
from ..exceptions import IndexFormatError, ValidationError
from ..hashing.compare import normalize_repeats
from ..hashing.rolling import ROLLING_WINDOW
from ..hashing.ssdeep import SsdeepDigest
from ..logging_utils import get_logger
from .storage import read_container, write_container

__all__ = ["CandidateBatch", "IndexMatch", "PairScore", "SimilarityIndex",
           "expand_digest", "score_signature_pairs", "signature_grams"]

_LOG = get_logger("index.core")

#: SSDeep's edit-operation costs, shared by every scoring path.
_SSDEEP_COSTS = dict(insert_cost=1, delete_cost=1, substitute_cost=3,
                     transpose_cost=5)


def signature_grams(signature: str, ngram_length: int) -> set[str]:
    """All ``ngram_length``-grams of a signature (empty when too short)."""

    n = ngram_length
    if len(signature) < n:
        return set()
    return {signature[i:i + n] for i in range(len(signature) - n + 1)}


def score_signature_pairs(left: Sequence[str], right: Sequence[str],
                          block_sizes: Sequence[int], *,
                          engine: BatchEditDistance | None = None
                          ) -> np.ndarray:
    """SSDeep scores for same-block-size signature pairs.

    The 7-gram common-substring gate is the caller's responsibility; this
    is the pure scoring half, shared by :class:`SimilarityIndex` and by
    the worker processes a
    :class:`~repro.index.sharded.ShardedSimilarityIndex` fans shard
    queries out to (module-level, hence picklable).
    """

    if engine is None:
        engine = BatchEditDistance(**_SSDEEP_COSTS)
    # Identical signatures always score 100 (the reference's fast
    # path), even where the small-block-size cap would otherwise
    # bite — so they never enter the edit-distance DP at all.
    scores = np.full(len(left), 100.0, dtype=np.float64)
    rest = np.flatnonzero(np.array(
        [l != r for l, r in zip(left, right)], dtype=bool))
    if rest.size:
        sub_left = [left[i] for i in rest]
        sub_right = [right[i] for i in rest]
        distances = engine.distances_two_lists(sub_left, sub_right)
        scores[rest] = ssdeep_score_from_distance(
            distances,
            np.array([len(s) for s in sub_left], dtype=np.float64),
            np.array([len(s) for s in sub_right], dtype=np.float64),
            np.array([block_sizes[i] for i in rest], dtype=np.float64))
    return scores


def expand_digest(digest: str) -> list[tuple[int, str]]:
    """Expand a digest into its comparable ``(block_size, signature)`` pairs.

    Signatures are run-length normalised; empty signatures are dropped.
    """

    if not digest:
        return []
    parsed = SsdeepDigest.parse(digest)
    pairs = []
    chunk = normalize_repeats(parsed.chunk)
    double_chunk = normalize_repeats(parsed.double_chunk)
    if chunk:
        pairs.append((parsed.block_size, chunk))
    if double_chunk:
        pairs.append((parsed.block_size * 2, double_chunk))
    return pairs


@dataclass(frozen=True)
class IndexMatch:
    """One ``top_k`` result."""

    member_index: int
    sample_id: str
    class_name: str
    score: int


@dataclass(frozen=True)
class PairScore:
    """One scored member pair from :meth:`SimilarityIndex.pairwise_matrix`."""

    i: int
    j: int
    score: int


@dataclass(frozen=True)
class _Entry:
    """One comparable signature of a member's digest."""

    member: int
    block_size: int
    signature: str


@dataclass
class CandidateBatch:
    """Candidate-generation output: unique signature pairs to score.

    ``left[slot]``/``right[slot]``/``block_sizes[slot]`` describe one
    unique (query signature, member signature, block size) pair;
    ``scatter`` holds, per feature type, the parallel
    ``(query_index, member_index, slot)`` triples that map the scored
    slots back onto score-matrix cells; ``n_queries`` records how many
    query digests each feature type had.

    Produced by :meth:`SimilarityIndex.collect_candidates`, consumed by
    :func:`score_signature_pairs` — splitting candidate generation from
    DP scoring is what lets a sharded index generate candidates per
    shard and fan only the (CPU-bound, cheaply-pickled) scoring out to
    an execution backend.
    """

    left: list[str]
    right: list[str]
    block_sizes: list[int]
    scatter: dict[str, tuple[list[int], list[int], list[int]]]
    n_queries: dict[str, int]


class SimilarityIndex:
    """Incrementally updatable, persistent top-k SSDeep similarity index.

    Parameters
    ----------
    feature_types:
        Fuzzy-hash types indexed per member (defaults to the paper's
        three types).
    ngram_length:
        Length of the common-substring precondition (7, like SSDeep).
        Two indexes are only compatible when this matches.
    """

    def __init__(self, feature_types: Sequence[str] = None, *,
                 ngram_length: int = ROLLING_WINDOW) -> None:
        if feature_types is None:
            from ..features.extractors import FEATURE_TYPES
            feature_types = FEATURE_TYPES
        feature_types = tuple(feature_types)
        if not feature_types:
            raise ValidationError("feature_types must not be empty")
        if len(set(feature_types)) != len(feature_types):
            raise ValidationError("feature_types must not repeat")
        if ngram_length < 1:
            raise ValidationError("ngram_length must be >= 1")
        self._feature_types = feature_types
        self._ngram_length = int(ngram_length)
        self._sample_ids: list[str] = []
        self._class_names: list[str] = []
        self._members_by_id: dict[str, set[int]] = {}
        self._entries: dict[str, list[_Entry]] = {ft: [] for ft in feature_types}
        self._postings: dict[str, dict[tuple[int, str], list[int]]] = {
            ft: defaultdict(list) for ft in feature_types}
        self._member_grams: dict[str, tuple[str, ...]] = {}
        self._engine = BatchEditDistance(**_SSDEEP_COSTS)

    # ------------------------------------------------------------ properties
    @property
    def feature_types(self) -> tuple[str, ...]:
        return self._feature_types

    @property
    def ngram_length(self) -> int:
        return self._ngram_length

    @property
    def n_members(self) -> int:
        return len(self._sample_ids)

    def __len__(self) -> int:
        return len(self._sample_ids)

    @property
    def sample_ids(self) -> tuple[str, ...]:
        return tuple(self._sample_ids)

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(self._class_names)

    def members_for_id(self, sample_id: str) -> frozenset[int]:
        """Member indices registered under ``sample_id`` (may be several)."""

        return frozenset(self._members_by_id.get(sample_id, ()))

    # -------------------------------------------------------------- updates
    def add(self, sample_id: str, digests: Mapping[str, str], *,
            class_name: str = "") -> int:
        """Add one member; returns its member index.

        ``digests`` maps feature types to digest strings; types the index
        does not know are ignored, missing or empty digests contribute no
        postings (the member simply never matches on that type).
        """

        if not isinstance(sample_id, str) or not sample_id:
            raise ValidationError("sample_id must be a non-empty string")
        if not isinstance(digests, Mapping):
            raise ValidationError(
                f"digests must be a mapping, got {type(digests).__name__}")
        member = len(self._sample_ids)
        # Parse every digest before mutating, so a malformed digest cannot
        # leave a half-added member behind.
        expanded = {ft: expand_digest(digests.get(ft, ""))
                    for ft in self._feature_types}
        self._sample_ids.append(sample_id)
        self._class_names.append(str(class_name))
        self._members_by_id.setdefault(sample_id, set()).add(member)
        for feature_type, pairs in expanded.items():
            for block_size, signature in pairs:
                self._add_entry(feature_type, member, block_size, signature)
        return member

    def add_many(self, samples: Iterable) -> list[int]:
        """Add many members; returns their member indices.

        Accepts :class:`~repro.features.records.SampleFeatures`-like
        objects (``sample_id`` / ``digests`` / ``class_name`` attributes)
        or ``(sample_id, digests[, class_name])`` tuples.
        """

        members = []
        for sample in samples:
            if isinstance(sample, tuple):
                sample_id, digests = sample[0], sample[1]
                class_name = sample[2] if len(sample) > 2 else ""
            else:
                sample_id = sample.sample_id
                digests = sample.digests
                class_name = getattr(sample, "class_name", "")
            members.append(self.add(sample_id, digests, class_name=class_name))
        return members

    # -------------------------------------------------------------- queries
    def top_k(self, digest: str, k: int = 10, *,
              feature_type: str | None = None, min_score: int = 1,
              exclude_ids: Iterable[str] = ()) -> list[IndexMatch]:
        """The ``k`` best-scoring members for a query digest.

        ``feature_type`` restricts scoring to one type; by default the
        digest is compared against every indexed type and each member
        keeps its best score.  Results are sorted by descending score,
        ties broken by ascending member index; members scoring below
        ``min_score`` (and members whose ``sample_id`` is in
        ``exclude_ids``) are omitted.
        """

        if feature_type is not None:
            self._check_feature_type(feature_type)
            types = (feature_type,)
        else:
            types = self._feature_types
        return self.top_k_digests({ft: digest for ft in types}, k,
                                  min_score=min_score, exclude_ids=exclude_ids)

    def top_k_digests(self, digests: Mapping[str, str], k: int = 10, *,
                      min_score: int = 1,
                      exclude_ids: Iterable[str] = ()) -> list[IndexMatch]:
        """Like :meth:`top_k`, but with one query digest per feature type."""

        if k < 1:
            raise ValidationError("k must be >= 1")
        if not 0 <= min_score <= 100:
            raise ValidationError("min_score must be in [0, 100]")
        if not self._sample_ids:
            return []
        excluded: set[int] = set()
        for sample_id in exclude_ids:
            excluded.update(self._members_by_id.get(sample_id, ()))
        exclude = [excluded] if excluded else None

        best = np.zeros(self.n_members, dtype=np.float64)
        for feature_type, digest in digests.items():
            self._check_feature_type(feature_type)
            if not digest:
                continue
            row = self.score_matrix(feature_type, [digest], exclude=exclude)[0]
            np.maximum(best, row, out=best)

        order = np.argsort(-best, kind="stable")
        results: list[IndexMatch] = []
        for member in order:
            score = int(best[member])
            if score < min_score or member in excluded:
                # argsort is stable, so every later member scores <= this
                # one; excluded members sit at score 0 and are skipped by
                # min_score >= 1, but must also be hidden at min_score 0.
                if score < min_score:
                    break
                continue
            results.append(IndexMatch(member_index=int(member),
                                      sample_id=self._sample_ids[member],
                                      class_name=self._class_names[member],
                                      score=score))
            if len(results) == k:
                break
        return results

    def score_matrix(self, feature_type: str, digests: Sequence[str], *,
                     exclude: Sequence[Iterable[int]] | None = None
                     ) -> np.ndarray:
        """Dense ``(len(digests), n_members)`` SSDeep score matrix.

        ``exclude`` optionally holds, per query, member indices whose
        scores are forced to zero (self-match suppression); a single-item
        ``exclude`` is broadcast over all queries.
        """

        return self.score_matrices({feature_type: digests},
                                   exclude=exclude)[feature_type]

    def score_matrices(self, digests_by_type: Mapping[str, Sequence[str]], *,
                       exclude: Sequence[Iterable[int]] | None = None
                       ) -> dict[str, np.ndarray]:
        """Score matrices for several feature types in one batched pass.

        Candidate pairs from every type are de-duplicated together (a
        score depends only on the signature pair and block size, not the
        type) and scored with a single batched edit-distance sweep, so a
        multi-type transform pays the vectorised DP's fixed costs once.
        Returns ``{feature_type: (n_queries, n_members) matrix}``.
        """

        digests_by_type = {ft: list(digests)
                           for ft, digests in digests_by_type.items()}
        batch = self.collect_candidates(digests_by_type, exclude=exclude)
        matrices = {ft: np.zeros((batch.n_queries[ft], self.n_members),
                                 dtype=np.float64)
                    for ft in digests_by_type}
        if not batch.left:
            return matrices
        pair_scores = self._score_signature_pairs(batch.left, batch.right,
                                                  batch.block_sizes)
        _LOG.debug("scored %d unique signature pairs for %d feature types",
                   len(batch.left), len(digests_by_type))

        for feature_type, (pair_queries, pair_members,
                           pair_slots) in batch.scatter.items():
            if not pair_queries:
                continue
            scores = matrices[feature_type]
            # A (query, member) cell keeps its best comparable pair.
            np.maximum.at(scores,
                          (np.asarray(pair_queries, dtype=np.int64),
                           np.asarray(pair_members, dtype=np.int64)),
                          pair_scores[np.asarray(pair_slots, dtype=np.int64)])
        return matrices

    def collect_candidates(self, digests_by_type: Mapping[str, Sequence[str]],
                           *, exclude: Sequence[Iterable[int]] | None = None
                           ) -> CandidateBatch:
        """The candidate-generation half of :meth:`score_matrices`.

        Walks the inverted postings and returns the unique
        (query signature, member signature, block size) pairs that pass
        the n-gram gate, plus the scatter metadata mapping scored slots
        back to ``(query, member)`` cells — see :class:`CandidateBatch`.
        Candidate pairs from every type are de-duplicated together (a
        score depends only on the signature pair and block size, not the
        type).  ``exclude`` follows :meth:`score_matrix` semantics.
        """

        left: list[str] = []
        right: list[str] = []
        block_sizes: list[int] = []
        pair_key_to_slot: dict[tuple[str, str, int], int] = {}
        # Per type: the (query, member, slot) triples to scatter after
        # the shared DP pass.
        scatter: dict[str, tuple[list[int], list[int], list[int]]] = {}
        n_queries_by_type: dict[str, int] = {}

        for feature_type, digests in digests_by_type.items():
            self._check_feature_type(feature_type)
            digests = list(digests)
            n_queries = len(digests)
            n_queries_by_type[feature_type] = n_queries
            if exclude is not None and len(exclude) not in (1, n_queries):
                raise ValidationError(
                    f"exclude must have 1 or {n_queries} items, "
                    f"got {len(exclude)}")
            entries = self._entries[feature_type]
            postings = self._postings[feature_type]

            # Candidate generation: (query, entry) pairs sharing an
            # n-gram at the same block size.
            query_signatures = [dict(expand_digest(d)) for d in digests]
            pair_queries: list[int] = []
            pair_members: list[int] = []
            pair_slots: list[int] = []
            for query_index, sig_by_block in enumerate(query_signatures):
                if exclude is None:
                    excluded: frozenset[int] | set[int] = frozenset()
                else:
                    excluded = set(
                        exclude[query_index if len(exclude) > 1 else 0])
                seen: set[int] = set()
                for block_size, signature in sig_by_block.items():
                    for gram in self._grams(signature):
                        for entry_id in postings.get((block_size, gram), ()):
                            if entry_id in seen:
                                continue
                            seen.add(entry_id)
                            entry = entries[entry_id]
                            if entry.member in excluded:
                                continue
                            key = (signature, entry.signature, block_size)
                            slot = pair_key_to_slot.get(key)
                            if slot is None:
                                slot = len(left)
                                pair_key_to_slot[key] = slot
                                left.append(signature)
                                right.append(entry.signature)
                                block_sizes.append(block_size)
                            pair_queries.append(query_index)
                            pair_members.append(entry.member)
                            pair_slots.append(slot)
            scatter[feature_type] = (pair_queries, pair_members, pair_slots)

        return CandidateBatch(left=left, right=right, block_sizes=block_sizes,
                              scatter=scatter, n_queries=n_queries_by_type)

    def pairwise_matrix(self, feature_type: str | None = None, *,
                        max_pairs: int | None = None,
                        min_score: int = 1) -> list[PairScore]:
        """Score every candidate member pair, under a pair budget.

        Candidates are member pairs sharing at least one posting bucket;
        each is scored like :meth:`top_k` (max over comparable signature
        pairs and, with ``feature_type=None``, over feature types).  When
        the candidate set exceeds ``max_pairs`` only the first
        ``max_pairs`` pairs in ``(i, j)`` order are scored and a warning
        logs exactly how many were dropped — truncation is never silent.
        Pairs scoring below ``min_score`` are omitted from the result.
        """

        if max_pairs is not None and max_pairs < 1:
            raise ValidationError("max_pairs must be >= 1 (or None)")
        if not 0 <= min_score <= 100:
            raise ValidationError("min_score must be in [0, 100]")
        if feature_type is not None:
            self._check_feature_type(feature_type)
            types = (feature_type,)
        else:
            types = self._feature_types

        candidates: set[tuple[int, int]] = set()
        for ft in types:
            entries = self._entries[ft]
            for entry_ids in self._postings[ft].values():
                if len(entry_ids) < 2:
                    continue
                members = sorted({entries[e].member for e in entry_ids})
                candidates.update(combinations(members, 2))
        pairs = sorted(candidates)
        if max_pairs is not None and len(pairs) > max_pairs:
            dropped = len(pairs) - max_pairs
            _LOG.warning(
                "pairwise_matrix: scoring %d of %d candidate pairs, dropping "
                "%d over the max_pairs=%d budget", max_pairs, len(pairs),
                dropped, max_pairs)
            pairs = pairs[:max_pairs]
        if not pairs:
            return []

        best = np.zeros(len(pairs), dtype=np.float64)
        for ft in types:
            # member -> {block_size: signature} for this feature type.
            sig_by_member: dict[int, dict[int, str]] = defaultdict(dict)
            for entry in self._entries[ft]:
                sig_by_member[entry.member][entry.block_size] = entry.signature
            gram_cache: dict[str, frozenset[str]] = {}

            def grams_of(signature: str) -> frozenset[str]:
                cached = gram_cache.get(signature)
                if cached is None:
                    cached = frozenset(self._grams(signature))
                    gram_cache[signature] = cached
                return cached

            left: list[str] = []
            right: list[str] = []
            block_sizes: list[int] = []
            slot_for_key: dict[tuple[str, str, int], int] = {}
            scatter: list[tuple[int, int]] = []        # (pair_idx, slot)
            for pair_idx, (i, j) in enumerate(pairs):
                sigs_i = sig_by_member.get(i)
                sigs_j = sig_by_member.get(j)
                if not sigs_i or not sigs_j:
                    continue
                for block_size in sigs_i.keys() & sigs_j.keys():
                    sig_a, sig_b = sigs_i[block_size], sigs_j[block_size]
                    if not grams_of(sig_a) & grams_of(sig_b):
                        continue
                    key = (sig_a, sig_b, block_size)
                    slot = slot_for_key.get(key)
                    if slot is None:
                        slot = len(left)
                        slot_for_key[key] = slot
                        left.append(sig_a)
                        right.append(sig_b)
                        block_sizes.append(block_size)
                    scatter.append((pair_idx, slot))
            if not scatter:
                continue
            slot_scores = self._score_signature_pairs(left, right, block_sizes)
            for pair_idx, slot in scatter:
                if slot_scores[slot] > best[pair_idx]:
                    best[pair_idx] = slot_scores[slot]

        return [PairScore(i=i, j=j, score=int(score))
                for (i, j), score in zip(pairs, best) if score >= min_score]

    # ----------------------------------------------------- shard interface
    # The methods below expose just enough of the internal structure for
    # a ShardedSimilarityIndex to merge posting buckets, redistribute
    # members between shards and compact tombstones away — without
    # reaching into privates or round-tripping through lossy digests
    # (the original digest string is not recoverable from normalised
    # signatures).

    def posting_members(self, feature_type: str
                        ) -> dict[tuple[int, str], tuple[int, ...]]:
        """``(block_size, gram)`` bucket -> sorted unique member indices."""

        self._check_feature_type(feature_type)
        entries = self._entries[feature_type]
        buckets: dict[tuple[int, str], tuple[int, ...]] = {}
        for key, entry_ids in self._postings[feature_type].items():
            buckets[key] = tuple(sorted({entries[e].member
                                         for e in entry_ids}))
        return buckets

    def member_signatures(self, feature_type: str
                          ) -> dict[int, dict[int, str]]:
        """Member index -> ``{block_size: signature}`` for one type."""

        self._check_feature_type(feature_type)
        sig_by_member: dict[int, dict[int, str]] = defaultdict(dict)
        for entry in self._entries[feature_type]:
            sig_by_member[entry.member][entry.block_size] = entry.signature
        return dict(sig_by_member)

    def append_entries(self, sample_id: str, class_name: str,
                       entries_by_type: Mapping[str, Iterable[tuple[int, str]]]
                       ) -> int:
        """Add one member from already-expanded ``(block_size, signature)``
        entries; returns its member index.

        The entry-level counterpart of :meth:`add` for callers that hold
        index contents rather than digests — shard redistribution and
        compaction.  Signatures are trusted to be already run-length
        normalised (they came out of an index).
        """

        if not isinstance(sample_id, str) or not sample_id:
            raise ValidationError("sample_id must be a non-empty string")
        member = len(self._sample_ids)
        self._sample_ids.append(sample_id)
        self._class_names.append(str(class_name))
        self._members_by_id.setdefault(sample_id, set()).add(member)
        for feature_type in self._feature_types:
            for block_size, signature in entries_by_type.get(feature_type, ()):
                self._add_entry(feature_type, member, int(block_size),
                                str(signature))
        return member

    def subset(self, keep: Sequence[int]) -> "SimilarityIndex":
        """A new index holding only ``keep`` members, renumbered 0..n-1.

        ``keep`` must be strictly increasing member indices; relative
        order (and therefore every tie-break) is preserved.  This is the
        compaction primitive: dropping tombstoned members from a shard
        is ``shard.subset(survivors)``.
        """

        keep = [int(m) for m in keep]
        if any(b <= a for a, b in zip(keep, keep[1:])):
            raise ValidationError("subset members must be strictly increasing")
        if keep and not (0 <= keep[0] and keep[-1] < self.n_members):
            raise ValidationError(
                f"subset members must be in [0, {self.n_members}), "
                f"got {keep[0]}..{keep[-1]}")
        remap = {old: new for new, old in enumerate(keep)}
        result = SimilarityIndex(self._feature_types,
                                 ngram_length=self._ngram_length)
        for old in keep:
            member = result.n_members
            result._sample_ids.append(self._sample_ids[old])
            result._class_names.append(self._class_names[old])
            result._members_by_id.setdefault(
                self._sample_ids[old], set()).add(member)
        for feature_type in self._feature_types:
            for entry in self._entries[feature_type]:
                new_member = remap.get(entry.member)
                if new_member is not None:
                    result._add_entry(feature_type, new_member,
                                      entry.block_size, entry.signature)
        return result

    # ---------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Summary counters (members, entries, postings, block sizes)."""

        per_type = {}
        n_entries = 0
        sig_bytes = 0
        for feature_type in self._feature_types:
            entries = self._entries[feature_type]
            block_sizes = sorted({entry.block_size for entry in entries})
            per_type[feature_type] = {
                "entries": len(entries),
                "postings": len(self._postings[feature_type]),
                "block_sizes": block_sizes,
            }
            n_entries += len(entries)
            sig_bytes += sum(len(entry.signature) for entry in entries)
        labelled = [name for name in self._class_names if name]
        # Serialised size estimate, mirroring the container layout (per
        # entry: int16 type + int32 member + int64 block + int64 offset)
        # without materialising the arrays the way get_state would.
        estimated = (n_entries * 22 + sig_bytes
                     + sum(len(s) for s in self._sample_ids)
                     + sum(len(c) for c in self._class_names))
        return {
            "members": self.n_members,
            "classes": len(set(labelled)),
            "labelled_members": len(labelled),
            "ngram_length": self._ngram_length,
            "estimated_bytes": estimated,
            "feature_types": per_type,
        }

    # ---------------------------------------------------------- persistence
    def get_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Serialisable ``(header, arrays)`` snapshot of the index.

        The same representation backs :meth:`save` (written as a
        standalone container file) and the embedded index payload of
        model artifacts (:mod:`repro.api.artifact`);
        :meth:`from_state` restores it.
        """

        flat_types: list[int] = []
        flat_members: list[int] = []
        flat_blocks: list[int] = []
        signatures: list[str] = []
        for type_idx, feature_type in enumerate(self._feature_types):
            for entry in self._entries[feature_type]:
                flat_types.append(type_idx)
                flat_members.append(entry.member)
                flat_blocks.append(entry.block_size)
                signatures.append(entry.signature)
        sig_bytes = "".join(signatures).encode("ascii")
        offsets = np.zeros(len(signatures) + 1, dtype=np.int64)
        np.cumsum([len(s) for s in signatures], out=offsets[1:])

        header = {
            "ngram_length": self._ngram_length,
            "feature_types": list(self._feature_types),
            "sample_ids": list(self._sample_ids),
            "class_names": list(self._class_names),
        }
        arrays = {
            "entry_type": np.asarray(flat_types, dtype=np.int16),
            "entry_member": np.asarray(flat_members, dtype=np.int32),
            "entry_block": np.asarray(flat_blocks, dtype=np.int64),
            "sig_offsets": offsets,
            "sig_bytes": np.frombuffer(sig_bytes, dtype=np.uint8).copy()
            if sig_bytes else np.zeros(0, dtype=np.uint8),
        }
        return header, arrays

    def save(self, path: str | os.PathLike) -> Path:
        """Write the index to one compact versioned file."""

        header, arrays = self.get_state()
        path = write_container(path, header, arrays)
        _LOG.info("saved index (%d members, %d entries) to %s",
                  self.n_members, len(arrays["entry_type"]), path)
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "SimilarityIndex":
        """Load an index saved by :meth:`save`.

        Raises :class:`~repro.exceptions.IndexFormatError` on missing,
        corrupt, truncated or unsupported files.
        """

        header, arrays = read_container(path)
        index = cls.from_state(header, arrays, source=f"index file {path}")
        _LOG.info("loaded index (%d members, %d entries) from %s",
                  index.n_members, len(arrays["entry_type"]), path)
        return index

    @classmethod
    def from_state(cls, header: Mapping, arrays: Mapping[str, np.ndarray], *,
                   source: str = "index state") -> "SimilarityIndex":
        """Rebuild an index from a :meth:`get_state` snapshot.

        ``source`` names the origin (a file path, or the embedding model
        artifact) in error messages.  Raises
        :class:`~repro.exceptions.IndexFormatError` on inconsistent or
        corrupt state.
        """

        try:
            ngram_length = int(header["ngram_length"])
            feature_types = [str(ft) for ft in header["feature_types"]]
            sample_ids = [str(s) for s in header["sample_ids"]]
            class_names = [str(c) for c in header["class_names"]]
            entry_type = arrays["entry_type"]
            entry_member = arrays["entry_member"]
            entry_block = arrays["entry_block"]
            sig_offsets = arrays["sig_offsets"]
            sig_bytes = arrays["sig_bytes"]
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexFormatError(
                f"{source} is missing required fields: {exc}") from exc

        n_entries = len(entry_type)
        if len(class_names) != len(sample_ids):
            raise IndexFormatError(
                f"{source} has {len(sample_ids)} sample ids but "
                f"{len(class_names)} class names")
        if len(entry_member) != n_entries or len(entry_block) != n_entries \
                or len(sig_offsets) != n_entries + 1:
            raise IndexFormatError(f"{source} has inconsistent "
                                   "entry array lengths")
        if n_entries and (np.any(np.diff(sig_offsets) < 0)
                          or sig_offsets[0] != 0
                          or sig_offsets[-1] != len(sig_bytes)):
            raise IndexFormatError(f"{source} has corrupt "
                                   "signature offsets")
        try:
            index = cls(feature_types, ngram_length=ngram_length)
        except ValidationError as exc:
            raise IndexFormatError(f"{source} has an invalid "
                                   f"configuration: {exc}") from exc
        index._sample_ids = sample_ids
        index._class_names = class_names
        for member, sample_id in enumerate(sample_ids):
            index._members_by_id.setdefault(sample_id, set()).add(member)

        try:
            all_signatures = sig_bytes.tobytes().decode("ascii")
        except UnicodeDecodeError as exc:
            raise IndexFormatError(f"{source} has non-ASCII "
                                   "signature bytes") from exc
        n_members = len(sample_ids)
        for i in range(n_entries):
            type_idx = int(entry_type[i])
            member = int(entry_member[i])
            if not 0 <= type_idx < len(feature_types):
                raise IndexFormatError(
                    f"{source} references feature type #{type_idx} "
                    f"but only {len(feature_types)} are declared")
            if not 0 <= member < n_members:
                raise IndexFormatError(
                    f"{source} references member #{member} "
                    f"but only {n_members} are declared")
            signature = all_signatures[int(sig_offsets[i]):int(sig_offsets[i + 1])]
            index._add_entry(feature_types[type_idx], member,
                             int(entry_block[i]), signature)
        return index

    # ------------------------------------------------------------ internals
    def _add_entry(self, feature_type: str, member: int, block_size: int,
                   signature: str) -> None:
        entries = self._entries[feature_type]
        entry_id = len(entries)
        entries.append(_Entry(member, block_size, signature))
        postings = self._postings[feature_type]
        # Member signatures repeat across entries (families, reloads), so
        # their gram sets are memoised; the cache is bounded by the
        # number of distinct member signatures the index holds.
        grams = self._member_grams.get(signature)
        if grams is None:
            grams = tuple(self._grams(signature))
            self._member_grams[signature] = grams
        for gram in grams:
            postings[(block_size, gram)].append(entry_id)

    def _grams(self, signature: str) -> set[str]:
        return signature_grams(signature, self._ngram_length)

    def _score_signature_pairs(self, left: Sequence[str], right: Sequence[str],
                               block_sizes: Sequence[int]) -> np.ndarray:
        """SSDeep scores for same-block-size signature pairs (gate applied
        by the caller); see :func:`score_signature_pairs`."""

        return score_signature_pairs(left, right, block_sizes,
                                     engine=self._engine)

    def _check_feature_type(self, feature_type: str) -> None:
        if feature_type not in self._feature_types:
            raise ValidationError(
                f"unknown feature type {feature_type!r}; this index holds "
                f"{list(self._feature_types)}")
