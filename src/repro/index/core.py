"""The persistent top-k similarity index.

:class:`SimilarityIndex` is the candidate-generation and scoring engine
shared by every bulk digest workload in the library.  It holds *members*
(samples identified by ``sample_id``, optionally carrying a class label)
whose SSDeep digests are bucketed by ``(feature_type, block_size)`` and
indexed by their 7-gram postings, and answers:

* ``top_k`` — the best-scoring members for a query digest;
* ``score_matrix`` — a dense query × member score matrix (what the
  similarity feature builder consumes);
* ``pairwise_matrix`` — budgeted all-vs-all member scoring;
* ``save`` / ``load`` — round-tripping to a single compact file
  (:mod:`repro.index.storage`).

Since format version 2 the postings and entry tables live in compact
columnar NumPy arrays (:mod:`repro.index.postings`): signatures are
interned in an index-wide string pool, entries are ``int32``/``int64``
columns, and each feature type's inverted postings are a sorted
CSR-style triple over FNV-64 ``(block_size, gram)`` keys.  Candidate
generation is one vectorised sweep — ``np.searchsorted`` over the key
array, slab gathers, ``np.unique`` de-duplication over packed pairs —
instead of the first-generation per-gram dict walk; results are
bit-identical (the Hypothesis equivalence suite pins this down).

Scoring semantics (the "comparability rules") are exactly those of the
bulk seed path:

1. a digest ``block_size:chunk:double_chunk`` is expanded into its
   ``(block_size, chunk)`` and ``(2 * block_size, double_chunk)``
   signatures, with runs longer than three characters collapsed first;
   two signatures are only comparable at *equal* block sizes, which is
   how SSDeep's "equal or adjacent block size" rule becomes exact
   bucket matching;
2. a signature pair can only score above zero when it shares a
   substring of :data:`~repro.hashing.rolling.ROLLING_WINDOW` (7)
   characters, so candidates come from the 7-gram inverted postings and
   everything else is rejected without an edit distance — note this
   *precondition* means signatures shorter than 7 characters never
   match, even when identical;
3. surviving pairs are scored with the batched weighted edit distance
   (insert/delete 1, substitute 3, transpose 5) mapped onto the 0–100
   SSDeep scale, with identical signatures pinned to 100;
4. a member's score is the maximum over its comparable signature pairs
   (and over feature types, when more than one is queried).
"""

from __future__ import annotations

import os
from collections import defaultdict
from dataclasses import dataclass, field
from functools import lru_cache
from itertools import combinations
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..distance.batch import BatchEditDistance
from ..distance.scoring import ssdeep_score_from_distance
from ..exceptions import IndexFormatError, ValidationError
from ..hashing.compare import normalize_repeats
from ..hashing.rolling import ROLLING_WINDOW
from ..hashing.ssdeep import SsdeepDigest
from ..hashing.vector import (VECTOR_WORDS, VectorDigest,
                              is_vector_digest, is_vector_feature_type,
                              popcount_u8, score_from_distance)
from ..logging_utils import get_logger
from ..observability.trace import span
from .knn import PackedDigestStore
from .postings import ArrayPostings, SignaturePool, block_prefix64, \
    hash_windows, signature_windows
from .storage import read_container, write_container

__all__ = ["CandidateBatch", "IndexMatch", "PairScore", "SimilarityIndex",
           "expand_digest", "score_signature_pairs", "signature_grams"]

_LOG = get_logger("index.core")

#: SSDeep's edit-operation costs, shared by every scoring path.
_SSDEEP_COSTS = dict(insert_cost=1, delete_cost=1, substitute_cost=3,
                     transpose_cost=5)

#: Shared singleton for "no members excluded" — hoisted so the serving
#: hot path (``top_k`` with no exclusions) allocates nothing per call.
_NO_EXCLUDED: frozenset[int] = frozenset()

#: Candidate de-duplication switches from a dense boolean
#: (query rows × entries) scatter to sorting packed codes above this
#: many cells (the dense path is O(hits) but allocates one byte per
#: cell).  16M cells = 16 MB transient, roughly a 64-query batch
#: against a 100k-entry shard.
_DENSE_DEDUP_CELLS = 1 << 24


# Bounded at 4096: each value is a frozenset of up to ~58 short strings
# (a few KB), so the cache tops out around 20 MB per process.  Serving
# streams touch far fewer distinct signatures than that; a pairwise
# sweep over a larger corpus simply recomputes on the cold tail.
@lru_cache(maxsize=4096)
def _signature_grams_cached(signature: str, ngram_length: int
                            ) -> frozenset[str]:
    n = ngram_length
    if len(signature) < n:
        return _NO_GRAMS
    return frozenset(signature[i:i + n]
                     for i in range(len(signature) - n + 1))


_NO_GRAMS: frozenset[str] = frozenset()


def signature_grams(signature: str, ngram_length: int) -> set[str]:
    """All ``ngram_length``-grams of a signature (empty when too short).

    Backed by a bounded LRU over ``(signature, n)`` — ``classify
    --jsonl`` streams and pairwise sweeps hit the same signatures over
    and over; a fresh mutable set is returned so callers stay free to
    modify it.
    """

    return set(_signature_grams_cached(signature, ngram_length))


def score_signature_pairs(left: Sequence[str], right: Sequence[str],
                          block_sizes: Sequence[int], *,
                          engine: BatchEditDistance | None = None
                          ) -> np.ndarray:
    """SSDeep scores for same-block-size signature pairs.

    The 7-gram common-substring gate is the caller's responsibility; this
    is the pure scoring half, shared by :class:`SimilarityIndex` and by
    the worker processes a
    :class:`~repro.index.sharded.ShardedSimilarityIndex` fans shard
    queries out to (module-level, hence picklable).
    """

    n = len(left)
    if not n:
        return np.zeros(0, dtype=np.float64)
    if engine is None:
        engine = BatchEditDistance(**_SSDEEP_COSTS)
    # Identical signatures always score 100 (the reference's fast
    # path), even where the small-block-size cap would otherwise
    # bite — so they never enter the edit-distance DP at all.
    scores = np.full(n, 100.0, dtype=np.float64)
    rest = np.flatnonzero(np.fromiter(
        (l != r for l, r in zip(left, right)), dtype=bool, count=n))
    if rest.size:
        sub_left = [left[i] for i in rest]
        sub_right = [right[i] for i in rest]
        m = rest.size
        left_lens = np.fromiter(map(len, sub_left), dtype=np.float64, count=m)
        right_lens = np.fromiter(map(len, sub_right), dtype=np.float64,
                                 count=m)
        blocks = np.asarray(block_sizes, dtype=np.float64)[rest]
        distances = engine.distances_two_lists(sub_left, sub_right)
        scores[rest] = ssdeep_score_from_distance(distances, left_lens,
                                                  right_lens, blocks)
    return scores


@lru_cache(maxsize=16384)
def _expand_digest_cached(digest: str) -> tuple[tuple[int, str], ...]:
    parsed = SsdeepDigest.parse(digest)
    pairs = []
    chunk = normalize_repeats(parsed.chunk)
    double_chunk = normalize_repeats(parsed.double_chunk)
    if chunk:
        pairs.append((parsed.block_size, chunk))
    if double_chunk:
        pairs.append((parsed.block_size * 2, double_chunk))
    return tuple(pairs)


def expand_digest(digest: str) -> list[tuple[int, str]]:
    """Expand a digest into its comparable ``(block_size, signature)`` pairs.

    Signatures are run-length normalised; empty signatures are dropped.
    Parsing is memoised in a bounded LRU: streaming workloads
    (``classify --jsonl``, polling collectors) resubmit identical
    digests constantly and should never re-parse them.
    """

    if not digest:
        return []
    return list(_expand_digest_cached(digest))


@dataclass(frozen=True)
class IndexMatch:
    """One ``top_k`` result."""

    member_index: int
    sample_id: str
    class_name: str
    score: int


@dataclass(frozen=True)
class PairScore:
    """One scored member pair from :meth:`SimilarityIndex.pairwise_matrix`."""

    i: int
    j: int
    score: int


@dataclass
class CandidateBatch:
    """Candidate-generation output: unique signature pairs to score.

    ``left[slot]``/``right[slot]``/``block_sizes[slot]`` describe one
    unique (query signature, member signature, block size) pair;
    ``scatter`` holds, per feature type, the parallel ``(query_index,
    member_index, slot)`` **arrays** (``int32`` queries/members,
    ``int64`` slots) that map the scored slots back onto score-matrix
    cells; ``n_queries`` records how many query digests each feature
    type had.

    Produced by :meth:`SimilarityIndex.collect_candidates`, consumed by
    :func:`score_signature_pairs` — splitting candidate generation from
    DP scoring is what lets a sharded index generate candidates per
    shard and fan only the (CPU-bound, cheaply-pickled) scoring out to
    an execution backend.

    ``vector`` carries the second hash family: per ``vector-*`` feature
    type, ``(query_index, member_index, score)`` arrays of *already
    computed* packed-Hamming scores.  Vector scoring is one vectorised
    sweep per query — far cheaper than the DP — so it happens eagerly at
    candidate-collection time and the consumer only scatters.
    """

    left: list[str]
    right: list[str]
    block_sizes: np.ndarray
    scatter: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]]
    n_queries: dict[str, int]
    vector: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = \
        field(default_factory=dict)


class SimilarityIndex:
    """Incrementally updatable, persistent top-k SSDeep similarity index.

    Parameters
    ----------
    feature_types:
        Fuzzy-hash types indexed per member (defaults to the paper's
        three types).
    ngram_length:
        Length of the common-substring precondition (7, like SSDeep).
        Two indexes are only compatible when this matches.
    """

    def __init__(self, feature_types: Sequence[str] = None, *,
                 ngram_length: int = ROLLING_WINDOW) -> None:
        if feature_types is None:
            from ..features.extractors import FEATURE_TYPES
            feature_types = FEATURE_TYPES
        feature_types = tuple(feature_types)
        if not feature_types:
            raise ValidationError("feature_types must not be empty")
        if len(set(feature_types)) != len(feature_types):
            raise ValidationError("feature_types must not repeat")
        if ngram_length < 1:
            raise ValidationError("ngram_length must be >= 1")
        self._feature_types = feature_types
        # The index carries two digest families: CTPH types (variable
        # length, edit-distance scored, 7-gram postings) and vector-*
        # types (fixed length, packed-Hamming scored, no postings).
        self._ctph_types = tuple(ft for ft in feature_types
                                 if not is_vector_feature_type(ft))
        self._vector_types = tuple(ft for ft in feature_types
                                   if is_vector_feature_type(ft))
        self._ngram_length = int(ngram_length)
        self._sample_ids: list[str] = []
        self._class_names: list[str] = []
        self._members_by_id: dict[str, set[int]] = {}
        self._pool = SignaturePool(self._ngram_length)
        self._stores: dict[str, ArrayPostings] = {
            ft: ArrayPostings(self._pool, self._ngram_length)
            for ft in self._ctph_types}
        self._vstores: dict[str, PackedDigestStore] = {
            ft: PackedDigestStore() for ft in self._vector_types}
        self._engine = BatchEditDistance(**_SSDEEP_COSTS)

    # ------------------------------------------------------------ properties
    @property
    def feature_types(self) -> tuple[str, ...]:
        return self._feature_types

    @property
    def ctph_feature_types(self) -> tuple[str, ...]:
        return self._ctph_types

    @property
    def vector_feature_types(self) -> tuple[str, ...]:
        return self._vector_types

    @property
    def ngram_length(self) -> int:
        return self._ngram_length

    @property
    def n_members(self) -> int:
        return len(self._sample_ids)

    def __len__(self) -> int:
        return len(self._sample_ids)

    @property
    def sample_ids(self) -> tuple[str, ...]:
        return tuple(self._sample_ids)

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(self._class_names)

    def members_for_id(self, sample_id: str) -> frozenset[int]:
        """Member indices registered under ``sample_id`` (may be several)."""

        return frozenset(self._members_by_id.get(sample_id, ()))

    # -------------------------------------------------------------- updates
    def add(self, sample_id: str, digests: Mapping[str, str], *,
            class_name: str = "") -> int:
        """Add one member; returns its member index.

        ``digests`` maps feature types to digest strings; types the index
        does not know are ignored, missing or empty digests contribute no
        postings (the member simply never matches on that type).
        """

        if not isinstance(sample_id, str) or not sample_id:
            raise ValidationError("sample_id must be a non-empty string")
        if not isinstance(digests, Mapping):
            raise ValidationError(
                f"digests must be a mapping, got {type(digests).__name__}")
        member = len(self._sample_ids)
        # Parse every digest before mutating, so a malformed digest cannot
        # leave a half-added member behind.
        expanded = {ft: expand_digest(digests.get(ft, ""))
                    for ft in self._ctph_types}
        vparsed = {ft: (VectorDigest.parse(digests[ft])
                        if digests.get(ft) else None)
                   for ft in self._vector_types}
        self._sample_ids.append(sample_id)
        self._class_names.append(str(class_name))
        self._members_by_id.setdefault(sample_id, set()).add(member)
        for feature_type, pairs in expanded.items():
            for block_size, signature in pairs:
                self._add_entry(feature_type, member, block_size, signature)
        # Every member appends exactly one row per vector store (absent
        # digests append a masked zero row) so row index == member index.
        for feature_type, parsed in vparsed.items():
            self._vstores[feature_type].append(parsed)
        return member

    def add_many(self, samples: Iterable) -> list[int]:
        """Add many members; returns their member indices.

        Accepts :class:`~repro.features.records.SampleFeatures`-like
        objects (``sample_id`` / ``digests`` / ``class_name`` attributes)
        or ``(sample_id, digests[, class_name])`` tuples.
        """

        members = []
        for sample in samples:
            if isinstance(sample, tuple):
                sample_id, digests = sample[0], sample[1]
                class_name = sample[2] if len(sample) > 2 else ""
            else:
                sample_id = sample.sample_id
                digests = sample.digests
                class_name = getattr(sample, "class_name", "")
            members.append(self.add(sample_id, digests, class_name=class_name))
        return members

    def seal(self) -> None:
        """Merge pending posting tails into the sorted arrays.

        Queries do this on demand; sealing explicitly (e.g. right after
        a bulk load, or at service start-up) makes first-request latency
        deterministic.  Idempotent and cheap when nothing is pending.
        """

        for store in self._stores.values():
            store.merge()

    # -------------------------------------------------------------- queries
    def top_k(self, digest: str, k: int = 10, *,
              feature_type: str | None = None, min_score: int = 1,
              exclude_ids: Iterable[str] = ()) -> list[IndexMatch]:
        """The ``k`` best-scoring members for a query digest.

        ``feature_type`` restricts scoring to one type; by default the
        digest is compared against every indexed type and each member
        keeps its best score.  Results are sorted by descending score,
        ties broken by ascending member index; members scoring below
        ``min_score`` (and members whose ``sample_id`` is in
        ``exclude_ids``) are omitted.
        """

        if feature_type is not None:
            self._check_feature_type(feature_type)
            types = (feature_type,)
        elif is_vector_digest(digest):
            # A single digest string can only belong to one family; the
            # distinctive "vr1:" prefix routes it to the right stores.
            types = self._vector_types
        else:
            types = self._ctph_types
        return self.top_k_digests({ft: digest for ft in types}, k,
                                  min_score=min_score, exclude_ids=exclude_ids)

    def top_k_digests(self, digests: Mapping[str, str], k: int = 10, *,
                      min_score: int = 1,
                      exclude_ids: Iterable[str] = ()) -> list[IndexMatch]:
        """Like :meth:`top_k`, but with one query digest per feature type."""

        if k < 1:
            raise ValidationError("k must be >= 1")
        if not 0 <= min_score <= 100:
            raise ValidationError("min_score must be in [0, 100]")
        if not self._sample_ids:
            return []
        # The common serving call has nothing to exclude: reuse one
        # shared frozen set instead of building a fresh set per query.
        excluded: frozenset[int] | set[int] = _NO_EXCLUDED
        for sample_id in exclude_ids:
            members = self._members_by_id.get(sample_id)
            if members:
                if excluded is _NO_EXCLUDED:
                    excluded = set()
                excluded.update(members)
        exclude = [excluded] if excluded else None

        active: dict[str, list[str]] = {}
        for feature_type, digest in digests.items():
            self._check_feature_type(feature_type)
            if digest:
                active[feature_type] = [digest]
        best = np.zeros(self.n_members, dtype=np.float64)
        if active:
            # One batched pass: candidate pairs shared between feature
            # types de-duplicate into a single DP sweep.
            matrices = self.score_matrices(active, exclude=exclude)
            for row in matrices.values():
                np.maximum(best, row[0], out=best)

        order = np.argsort(-best, kind="stable")
        results: list[IndexMatch] = []
        for member in order:
            score = int(best[member])
            if score < min_score or member in excluded:
                # argsort is stable, so every later member scores <= this
                # one; excluded members sit at score 0 and are skipped by
                # min_score >= 1, but must also be hidden at min_score 0.
                if score < min_score:
                    break
                continue
            results.append(IndexMatch(member_index=int(member),
                                      sample_id=self._sample_ids[member],
                                      class_name=self._class_names[member],
                                      score=score))
            if len(results) == k:
                break
        return results

    def score_matrix(self, feature_type: str, digests: Sequence[str], *,
                     exclude: Sequence[Iterable[int]] | None = None
                     ) -> np.ndarray:
        """Dense ``(len(digests), n_members)`` SSDeep score matrix.

        ``exclude`` optionally holds, per query, member indices whose
        scores are forced to zero (self-match suppression); a single-item
        ``exclude`` is broadcast over all queries.
        """

        return self.score_matrices({feature_type: digests},
                                   exclude=exclude)[feature_type]

    def score_matrices(self, digests_by_type: Mapping[str, Sequence[str]], *,
                       exclude: Sequence[Iterable[int]] | None = None
                       ) -> dict[str, np.ndarray]:
        """Score matrices for several feature types in one batched pass.

        Candidate pairs from every type are de-duplicated together (a
        score depends only on the signature pair and block size, not the
        type) and scored with a single batched edit-distance sweep, so a
        multi-type transform pays the vectorised DP's fixed costs once.
        Returns ``{feature_type: (n_queries, n_members) matrix}``.
        """

        digests_by_type = {ft: list(digests)
                           for ft, digests in digests_by_type.items()}
        with span("candidate_gen"):
            batch = self.collect_candidates(digests_by_type, exclude=exclude)
        matrices = {ft: np.zeros((batch.n_queries[ft], self.n_members),
                                 dtype=np.float64)
                    for ft in digests_by_type}
        with span("dp_scoring"):
            if batch.left:
                pair_scores = self._score_signature_pairs(
                    batch.left, batch.right, batch.block_sizes)
                _LOG.debug("scored %d unique signature pairs for %d feature "
                           "types", len(batch.left), len(digests_by_type))

                for feature_type, (pair_queries, pair_members,
                                   pair_slots) in batch.scatter.items():
                    if not len(pair_queries):
                        continue
                    # A (query, member) cell keeps its best comparable
                    # pair.
                    np.maximum.at(matrices[feature_type],
                                  (pair_queries, pair_members),
                                  pair_scores[pair_slots])
            # Vector-family scores arrive pre-computed from the packed
            # sweep.
            for feature_type, (vec_queries, vec_members,
                               vec_scores) in batch.vector.items():
                if len(vec_queries):
                    np.maximum.at(matrices[feature_type],
                                  (vec_queries, vec_members), vec_scores)
        return matrices

    def collect_candidates(self, digests_by_type: Mapping[str, Sequence[str]],
                           *, exclude: Sequence[Iterable[int]] | None = None
                           ) -> CandidateBatch:
        """The candidate-generation half of :meth:`score_matrices`.

        One vectorised sweep over the array postings: every query
        signature's grams are hashed and located with a single
        ``np.searchsorted`` per feature type, posting slabs are gathered
        with ``np.repeat`` arithmetic, ``(query, entry)`` pairs
        de-duplicate through ``np.unique`` over packed int64 codes, and
        the surviving pairs slot-assign via a lexsort over interned
        signature ids — no per-gram Python loop, no per-query ``set``.
        Candidate pairs from every type are de-duplicated together (a
        score depends only on the signature pair and block size, not the
        type).  ``exclude`` follows :meth:`score_matrix` semantics.
        """

        # Query signatures interned per call (ids shared across types so
        # cross-type pair de-duplication stays exact); a "row class" is
        # one distinct (query signature, block size) — the left half of
        # a DP slot.
        local_ids: dict[str, int] = {}
        local_strings: list[str] = []
        class_ids: dict[tuple[int, int], int] = {}
        class_local: list[int] = []
        class_block: list[int] = []
        per_type: list[tuple] = []
        n_queries_by_type: dict[str, int] = {}
        vector: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

        for feature_type, digests in digests_by_type.items():
            self._check_feature_type(feature_type)
            digests = list(digests)
            n_queries = len(digests)
            n_queries_by_type[feature_type] = n_queries
            if exclude is not None and len(exclude) not in (1, n_queries):
                raise ValidationError(
                    f"exclude must have 1 or {n_queries} items, "
                    f"got {len(exclude)}")
            if feature_type in self._vstores:
                triple = self._vector_candidates(feature_type, digests,
                                                 exclude)
                if triple is not None:
                    vector[feature_type] = triple
                continue
            store = self._stores[feature_type]
            n_entries = store.n_entries
            if not n_entries:
                continue

            # Flatten queries into (query, block, signature) rows.
            row_query: list[int] = []
            row_block: list[int] = []
            row_class: list[int] = []
            row_prefix: list[int] = []
            row_windows: list[np.ndarray] = []
            for query_index, digest in enumerate(digests):
                for block_size, signature in expand_digest(digest):
                    local = local_ids.get(signature)
                    if local is None:
                        local = len(local_strings)
                        local_ids[signature] = local
                        local_strings.append(signature)
                    windows = _query_windows(signature, self._ngram_length)
                    if not windows.shape[0]:
                        continue
                    row_cls = class_ids.get((local, block_size))
                    if row_cls is None:
                        row_cls = len(class_local)
                        class_ids[(local, block_size)] = row_cls
                        class_local.append(local)
                        class_block.append(block_size)
                    row_query.append(query_index)
                    row_block.append(block_size)
                    row_class.append(row_cls)
                    row_prefix.append(block_prefix64(block_size))
                    row_windows.append(windows)
            if not row_query:
                continue
            counts = np.fromiter(map(len, row_windows), dtype=np.int64,
                                 count=len(row_windows))
            row_query_arr = np.asarray(row_query, dtype=np.int64)
            row_block_arr = np.asarray(row_block, dtype=np.int64)
            row_class_arr = np.asarray(row_class, dtype=np.int64)
            flat_windows = np.vstack(row_windows)
            # One vectorised FNV sweep over every window of every query
            # (per-row prefixes carry the block sizes into the keys).
            flat_keys = hash_windows(
                np.repeat(np.asarray(row_prefix, dtype=np.uint64), counts),
                flat_windows)
            flat_blocks = np.repeat(row_block_arr, counts)

            rows, entries = store.lookup(
                flat_keys, flat_blocks, flat_windows,
                np.repeat(np.arange(len(row_query), dtype=np.int32), counts))
            if not entries.size:
                continue
            # Old per-query `seen` set == unique (query, entry) pairs.
            # A query's two signatures live at distinct block sizes, so
            # (query, entry) and (row, entry) de-duplicate identically
            # and the row keeps the originating signature exact.
            if len(row_query) * n_entries <= _DENSE_DEDUP_CELLS:
                # Serving-sized batches: an O(hits) boolean scatter is
                # far cheaper than sorting the hit list.
                seen = np.zeros((len(row_query), n_entries), dtype=bool)
                seen[rows, entries] = True
                urows, uentries = seen.nonzero()
            else:
                codes = rows.astype(np.int64) * np.int64(n_entries) + entries
                codes.sort(kind="stable")
                if codes.size > 1:
                    codes = codes[np.concatenate(
                        ([True], codes[1:] != codes[:-1]))]
                urows = codes // n_entries
                uentries = codes % n_entries

            queries = row_query_arr[urows]
            members = store.entry_member[uentries]
            if exclude is not None:
                keep = self._exclusion_mask(exclude, queries, members)
                if keep is not None:
                    urows = urows[keep]
                    uentries = uentries[keep]
                    queries = queries[keep]
                    members = members[keep]
            if not queries.size:
                continue
            per_type.append((feature_type, queries, members,
                             row_class_arr[urows],
                             store.entry_sig[uentries]))

        scatter: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {
            ft: (np.zeros(0, dtype=np.int32), np.zeros(0, dtype=np.int32),
                 np.zeros(0, dtype=np.int64))
            for ft in digests_by_type}
        if not per_type:
            return CandidateBatch(left=[], right=[],
                                  block_sizes=np.zeros(0, dtype=np.int64),
                                  scatter=scatter,
                                  n_queries=n_queries_by_type,
                                  vector=vector)

        # Global slot assignment: a DP slot is one unique (query
        # signature + block, member signature) pair, shared across every
        # feature type.  Both halves are already interned ids, so the
        # dedup is one packed-code pass — through a dense slot map when
        # the (row classes × pool) domain is small, a sort otherwise.
        all_class = np.concatenate([t[3] for t in per_type])
        all_msig = np.concatenate([t[4] for t in per_type]).astype(np.int64)
        n_pool = max(len(self._pool), 1)
        codes = all_class * np.int64(n_pool) + all_msig
        domain = len(class_local) * n_pool
        # The slot map is int32 (4 bytes/cell), so divide the byte
        # budget accordingly — the boolean dedup matrix gets the full
        # cell count, this map a quarter of it.
        if domain <= _DENSE_DEDUP_CELLS // 4:
            slot_map = np.full(domain, -1, dtype=np.int32)
            slot_map[codes] = 0
            slot_codes = np.flatnonzero(slot_map == 0)
            slot_map[slot_codes] = np.arange(len(slot_codes), dtype=np.int32)
            inverse = slot_map[codes]
            slot_class_arr = slot_codes // n_pool
            slot_msig = slot_codes % n_pool
        else:
            order = np.argsort(codes, kind="stable")
            sorted_codes = codes[order]
            new = np.ones(len(order), dtype=bool)
            new[1:] = sorted_codes[1:] != sorted_codes[:-1]
            group = np.cumsum(new) - 1
            inverse = np.empty(len(order), dtype=np.int64)
            inverse[order] = group
            slot_idx = order[new]
            slot_class_arr = all_class[slot_idx]
            slot_msig = all_msig[slot_idx]

        pool_strings = self._pool.strings
        slot_class = slot_class_arr.tolist()
        left = [local_strings[class_local[c]] for c in slot_class]
        right = [pool_strings[i] for i in slot_msig.tolist()]
        block_sizes = np.asarray(class_block, dtype=np.int64)[slot_class_arr]

        offset = 0
        for feature_type, queries, members, *_rest in per_type:
            n_pairs = len(queries)
            scatter[feature_type] = (
                queries.astype(np.int32),
                members.astype(np.int32, copy=False),
                inverse[offset:offset + n_pairs])
            offset += n_pairs

        return CandidateBatch(left=left, right=right, block_sizes=block_sizes,
                              scatter=scatter, n_queries=n_queries_by_type,
                              vector=vector)

    def _vector_candidates(self, feature_type: str, digests: Sequence[str],
                           exclude: Sequence[Iterable[int]] | None
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Eager packed-Hamming scoring for one vector feature type.

        Returns ``(query_index, member_index, score)`` arrays of every
        pair scoring >= 1 (mirroring the CTPH path, which only emits
        candidate pairs), or ``None`` when nothing scores.
        """

        store = self._vstores[feature_type]
        if not len(store):
            return None
        q_parts: list[np.ndarray] = []
        m_parts: list[np.ndarray] = []
        s_parts: list[np.ndarray] = []
        for query_index, digest in enumerate(digests):
            if not digest:
                continue
            scores = store.scores(digest)
            members = np.flatnonzero(scores >= 1)
            if not members.size:
                continue
            q_parts.append(np.full(members.size, query_index, dtype=np.int64))
            m_parts.append(members.astype(np.int64))
            s_parts.append(scores[members].astype(np.float64))
        if not q_parts:
            return None
        queries = np.concatenate(q_parts)
        members = np.concatenate(m_parts)
        scores = np.concatenate(s_parts)
        if exclude is not None:
            keep = self._exclusion_mask(exclude, queries, members)
            if keep is not None:
                queries, members, scores = (queries[keep], members[keep],
                                            scores[keep])
        if not queries.size:
            return None
        return queries.astype(np.int32), members.astype(np.int32), scores

    def _exclusion_mask(self, exclude: Sequence[Iterable[int]],
                        queries: np.ndarray, members: np.ndarray
                        ) -> np.ndarray | None:
        """Boolean keep-mask for candidate pairs, or ``None`` for all."""

        n_members = self.n_members
        if len(exclude) == 1:
            dropped = np.fromiter(
                (m for m in map(int, exclude[0]) if 0 <= m < n_members),
                dtype=np.int64)
            if not dropped.size:
                return None
            return ~np.isin(members, dropped)
        codes = []
        for query_index, per_query in enumerate(exclude):
            for m in map(int, per_query):
                if 0 <= m < n_members:
                    codes.append(query_index * n_members + m)
        if not codes:
            return None
        pair_codes = queries * np.int64(n_members) + members
        return ~np.isin(pair_codes, np.asarray(codes, dtype=np.int64))

    def pairwise_matrix(self, feature_type: str | None = None, *,
                        max_pairs: int | None = None,
                        min_score: int = 1) -> list[PairScore]:
        """Score every candidate member pair, under a pair budget.

        Candidates are member pairs sharing at least one posting bucket;
        each is scored like :meth:`top_k` (max over comparable signature
        pairs and, with ``feature_type=None``, over feature types).  When
        the candidate set exceeds ``max_pairs`` only the first
        ``max_pairs`` pairs in ``(i, j)`` order are scored and a warning
        logs exactly how many were dropped — truncation is never silent.
        Pairs scoring below ``min_score`` are omitted from the result.
        """

        if max_pairs is not None and max_pairs < 1:
            raise ValidationError("max_pairs must be >= 1 (or None)")
        if not 0 <= min_score <= 100:
            raise ValidationError("min_score must be in [0, 100]")
        if feature_type is not None:
            self._check_feature_type(feature_type)
            types = (feature_type,)
        else:
            types = self._feature_types

        candidates: set[tuple[int, int]] = set()
        for ft in types:
            if ft in self._vstores:
                # The vector family has no candidate gate: any two
                # members carrying a digest are comparable (the
                # max_pairs budget below is what bounds the sweep).
                present = np.flatnonzero(self._vstores[ft].present)
                if present.size >= 2:
                    candidates.update(combinations(present.tolist(), 2))
                continue
            store = self._stores[ft]
            entry_member = store.entry_member
            for _block, _gram, entry_ids in store.iter_buckets():
                if len(entry_ids) < 2:
                    continue
                members = np.unique(entry_member[entry_ids])
                if members.size >= 2:
                    candidates.update(combinations(members.tolist(), 2))
        pairs = sorted(candidates)
        if max_pairs is not None and len(pairs) > max_pairs:
            dropped = len(pairs) - max_pairs
            _LOG.warning(
                "pairwise_matrix: scoring %d of %d candidate pairs, dropping "
                "%d over the max_pairs=%d budget", max_pairs, len(pairs),
                dropped, max_pairs)
            pairs = pairs[:max_pairs]
        if not pairs:
            return []

        best = np.zeros(len(pairs), dtype=np.float64)
        pair_array = np.asarray(pairs, dtype=np.int64)
        for ft in types:
            if ft in self._vstores:
                vstore = self._vstores[ft]
                matrix = vstore.matrix
                present = vstore.present
                rows_i = pair_array[:, 0]
                rows_j = pair_array[:, 1]
                xor = np.bitwise_xor(matrix[rows_i], matrix[rows_j])
                dist = popcount_u8(xor.view(np.uint8)).sum(axis=1,
                                                           dtype=np.int64)
                scores = np.asarray(score_from_distance(dist),
                                    dtype=np.float64)
                scores[~(present[rows_i] & present[rows_j])] = 0.0
                np.maximum(best, scores, out=best)
                continue
            sig_by_member = self.member_signatures(ft)
            left: list[str] = []
            right: list[str] = []
            block_sizes: list[int] = []
            slot_for_key: dict[tuple[str, str, int], int] = {}
            scatter: list[tuple[int, int]] = []        # (pair_idx, slot)
            grams = _signature_grams_cached
            n = self._ngram_length
            for pair_idx, (i, j) in enumerate(pairs):
                sigs_i = sig_by_member.get(i)
                sigs_j = sig_by_member.get(j)
                if not sigs_i or not sigs_j:
                    continue
                for block_size in sigs_i.keys() & sigs_j.keys():
                    sig_a, sig_b = sigs_i[block_size], sigs_j[block_size]
                    if not grams(sig_a, n) & grams(sig_b, n):
                        continue
                    key = (sig_a, sig_b, block_size)
                    slot = slot_for_key.get(key)
                    if slot is None:
                        slot = len(left)
                        slot_for_key[key] = slot
                        left.append(sig_a)
                        right.append(sig_b)
                        block_sizes.append(block_size)
                    scatter.append((pair_idx, slot))
            if not scatter:
                continue
            slot_scores = self._score_signature_pairs(left, right, block_sizes)
            for pair_idx, slot in scatter:
                if slot_scores[slot] > best[pair_idx]:
                    best[pair_idx] = slot_scores[slot]

        return [PairScore(i=i, j=j, score=int(score))
                for (i, j), score in zip(pairs, best) if score >= min_score]

    # ----------------------------------------------------- shard interface
    # The methods below expose just enough of the internal structure for
    # a ShardedSimilarityIndex to merge posting buckets, redistribute
    # members between shards and compact tombstones away — without
    # reaching into privates or round-tripping through lossy digests
    # (the original digest string is not recoverable from normalised
    # signatures).

    def posting_members(self, feature_type: str
                        ) -> dict[tuple[int, str], tuple[int, ...]]:
        """``(block_size, gram)`` bucket -> sorted unique member indices."""

        self._check_feature_type(feature_type)
        if feature_type in self._vstores:
            return {}          # the vector family has no posting buckets
        store = self._stores[feature_type]
        entry_member = store.entry_member
        buckets: dict[tuple[int, str], tuple[int, ...]] = {}
        for block_size, gram, entry_ids in store.iter_buckets():
            buckets[(block_size, gram)] = tuple(
                np.unique(entry_member[entry_ids]).tolist())
        return buckets

    def member_signatures(self, feature_type: str
                          ) -> dict[int, dict[int, str]]:
        """Member index -> ``{block_size: signature}`` for one type.

        Vector types use a synthetic block size of 0 and the canonical
        digest string as the "signature", which round-trips exactly
        through :meth:`append_entries` (shard redistribution and
        compaction move vector digests the same way as CTPH entries).
        """

        self._check_feature_type(feature_type)
        if feature_type in self._vstores:
            vstore = self._vstores[feature_type]
            return {member: {0: vstore.digest_string(member)}
                    for member in np.flatnonzero(vstore.present).tolist()}
        store = self._stores[feature_type]
        pool = self._pool
        sig_by_member: dict[int, dict[int, str]] = defaultdict(dict)
        for member, block, sig_id in zip(store.entry_member.tolist(),
                                         store.entry_block.tolist(),
                                         store.entry_sig.tolist()):
            sig_by_member[member][block] = pool[sig_id]
        return dict(sig_by_member)

    def append_entries(self, sample_id: str, class_name: str,
                       entries_by_type: Mapping[str, Iterable[tuple[int, str]]]
                       ) -> int:
        """Add one member from already-expanded ``(block_size, signature)``
        entries; returns its member index.

        The entry-level counterpart of :meth:`add` for callers that hold
        index contents rather than digests — shard redistribution and
        compaction.  Signatures are trusted to be already run-length
        normalised (they came out of an index).
        """

        if not isinstance(sample_id, str) or not sample_id:
            raise ValidationError("sample_id must be a non-empty string")
        member = len(self._sample_ids)
        self._sample_ids.append(sample_id)
        self._class_names.append(str(class_name))
        self._members_by_id.setdefault(sample_id, set()).add(member)
        for feature_type in self._ctph_types:
            for block_size, signature in entries_by_type.get(feature_type, ()):
                self._add_entry(feature_type, member, int(block_size),
                                str(signature))
        for feature_type in self._vector_types:
            digest = None
            for _block_size, signature in entries_by_type.get(feature_type, ()):
                digest = VectorDigest.parse(str(signature))
            self._vstores[feature_type].append(digest)
        return member

    def subset(self, keep: Sequence[int]) -> "SimilarityIndex":
        """A new index holding only ``keep`` members, renumbered 0..n-1.

        ``keep`` must be strictly increasing member indices; relative
        order (and therefore every tie-break) is preserved.  This is the
        compaction primitive: dropping tombstoned members from a shard
        is ``shard.subset(survivors)``.
        """

        keep = [int(m) for m in keep]
        if any(b <= a for a, b in zip(keep, keep[1:])):
            raise ValidationError("subset members must be strictly increasing")
        if keep and not (0 <= keep[0] and keep[-1] < self.n_members):
            raise ValidationError(
                f"subset members must be in [0, {self.n_members}), "
                f"got {keep[0]}..{keep[-1]}")
        remap = {old: new for new, old in enumerate(keep)}
        result = SimilarityIndex(self._feature_types,
                                 ngram_length=self._ngram_length)
        for old in keep:
            member = result.n_members
            result._sample_ids.append(self._sample_ids[old])
            result._class_names.append(self._class_names[old])
            result._members_by_id.setdefault(
                self._sample_ids[old], set()).add(member)
        pool = self._pool
        for feature_type in self._ctph_types:
            store = self._stores[feature_type]
            for member, block, sig_id in zip(store.entry_member.tolist(),
                                             store.entry_block.tolist(),
                                             store.entry_sig.tolist()):
                new_member = remap.get(member)
                if new_member is not None:
                    result._add_entry(feature_type, new_member, block,
                                      pool[sig_id])
        for feature_type in self._vector_types:
            result._vstores[feature_type] = \
                self._vstores[feature_type].subset(keep)
        return result

    # ---------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Summary counters (members, entries, postings, block sizes)."""

        per_type = {}
        n_entries = 0
        arrays_bytes = 0
        for feature_type in self._ctph_types:
            store = self._stores[feature_type]
            blocks = store.entry_block
            per_type[feature_type] = {
                "family": "ctph",
                "entries": store.n_entries,
                "postings": store.n_keys,
                "block_sizes": np.unique(blocks).tolist(),
            }
            n_entries += store.n_entries
            arrays_bytes += store.nbytes()
        vector_bytes = 0
        for feature_type in self._vector_types:
            vstore = self._vstores[feature_type]
            per_type[feature_type] = {
                "family": "vector",
                "members_with_digest": int(vstore.present.sum())
                if len(vstore) else 0,
                "digest_bits": 8 * VECTOR_WORDS * 8,
                "packed_matrix_bytes": int(vstore.nbytes),
            }
            vector_bytes += vstore.nbytes
        arrays_bytes += vector_bytes
        labelled = [name for name in self._class_names if name]
        # Serialised size estimate, mirroring the columnar container
        # layout (entry columns + CSR postings + interned signature
        # pool) without materialising the arrays the way get_state would.
        estimated = (arrays_bytes
                     + sum(len(s) for s in self._pool.strings)
                     + sum(len(s) for s in self._sample_ids)
                     + sum(len(c) for c in self._class_names))
        return {
            "members": self.n_members,
            "classes": len(set(labelled)),
            "labelled_members": len(labelled),
            "ngram_length": self._ngram_length,
            "estimated_bytes": estimated,
            "feature_types": per_type,
            "families": {
                "ctph": {
                    "feature_types": list(self._ctph_types),
                    "entries": n_entries,
                },
                "vector": {
                    "feature_types": list(self._vector_types),
                    "digest_bits": 8 * VECTOR_WORDS * 8,
                    "packed_matrix_bytes": int(vector_bytes),
                },
            },
        }

    # ---------------------------------------------------------- persistence
    def get_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Serialisable ``(header, arrays)`` snapshot of the index.

        The same representation backs :meth:`save` (written as a
        standalone container file) and the embedded index payload of
        model artifacts (:mod:`repro.api.artifact`);
        :meth:`from_state` restores it.  Since index format version 2
        the snapshot carries the columnar postings verbatim, so loading
        adopts the arrays directly instead of re-hashing every gram.
        """

        pool_bytes, pool_offsets = self._pool.packed()
        header = {
            "ngram_length": self._ngram_length,
            "feature_types": list(self._feature_types),
            "sample_ids": list(self._sample_ids),
            "class_names": list(self._class_names),
            "layout": "columnar",
        }
        arrays: dict[str, np.ndarray] = {
            "pool_bytes": pool_bytes,
            "pool_offsets": pool_offsets,
        }
        # CTPH stores keep their historical t{i} keys (i indexes the
        # ctph types, which for pre-vector indexes is every type, so
        # old and new files agree); vector stores serialise under v{i}.
        for type_idx, feature_type in enumerate(self._ctph_types):
            for name, array in self._stores[feature_type].get_arrays().items():
                arrays[f"t{type_idx}.{name}"] = array
        for type_idx, feature_type in enumerate(self._vector_types):
            for name, array in self._vstores[feature_type].get_arrays().items():
                arrays[f"v{type_idx}.{name}"] = array
        return header, arrays

    def save(self, path: str | os.PathLike) -> Path:
        """Write the index to one compact versioned file."""

        header, arrays = self.get_state()
        path = write_container(path, header, arrays)
        _LOG.info("saved index (%d members, %d entries) to %s",
                  self.n_members,
                  sum(store.n_entries for store in self._stores.values()),
                  path)
        return path

    @classmethod
    def load(cls, path: str | os.PathLike, *,
             mmap_mode: str | None = None) -> "SimilarityIndex":
        """Load an index saved by :meth:`save`.

        Reads both the current columnar layout and legacy (version 1)
        flat-entry files, which are rebuilt through the normal add path.
        With ``mmap_mode="r"`` (and a v4 aligned file) the bulk arrays
        are adopted as read-only zero-copy views into a shared memory
        map: the load is O(header) and deep content validation is
        deferred — a v4 container was validated when written, and
        faulting every payload page in just to re-check it would defeat
        the point of mapping.  Raises
        :class:`~repro.exceptions.IndexFormatError` on missing, corrupt,
        truncated or unsupported files.
        """

        header, arrays = read_container(path, mmap_mode=mmap_mode)
        # A freshly-read container is exclusively owned (eager) or an
        # immutable mapped view (mmap): adopt without re-copying.
        index = cls.from_state(header, arrays, source=f"index file {path}",
                               copy=False,
                               deep_validate=mmap_mode is None)
        _LOG.info("loaded index (%d members) from %s", index.n_members, path)
        return index

    @classmethod
    def from_state(cls, header: Mapping, arrays: Mapping[str, np.ndarray], *,
                   source: str = "index state", copy: bool = True,
                   deep_validate: bool = True) -> "SimilarityIndex":
        """Rebuild an index from a :meth:`get_state` snapshot.

        ``source`` names the origin (a file path, or the embedding model
        artifact) in error messages.  Raises
        :class:`~repro.exceptions.IndexFormatError` on inconsistent or
        corrupt state.  Columnar (version 2) snapshots adopt their
        arrays after validation; legacy flat-entry snapshots are rebuilt
        entry by entry.  ``copy=False`` adopts the arrays as views
        (zero-copy; the caller guarantees nothing else mutates them) and
        ``deep_validate=False`` skips the O(payload) content scans — the
        mapped-load fast path.
        """

        try:
            ngram_length = int(header["ngram_length"])
            feature_types = [str(ft) for ft in header["feature_types"]]
            sample_ids = [str(s) for s in header["sample_ids"]]
            class_names = [str(c) for c in header["class_names"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexFormatError(
                f"{source} is missing required fields: {exc}") from exc
        if len(class_names) != len(sample_ids):
            raise IndexFormatError(
                f"{source} has {len(sample_ids)} sample ids but "
                f"{len(class_names)} class names")
        try:
            index = cls(feature_types, ngram_length=ngram_length)
        except ValidationError as exc:
            raise IndexFormatError(f"{source} has an invalid "
                                   f"configuration: {exc}") from exc
        index._sample_ids = sample_ids
        index._class_names = class_names
        for member, sample_id in enumerate(sample_ids):
            index._members_by_id.setdefault(sample_id, set()).add(member)

        if "pool_offsets" in arrays:
            index._adopt_columnar_state(arrays, source=source, copy=copy,
                                        deep_validate=deep_validate)
        else:
            index._rebuild_legacy_state(arrays, source=source)
        return index

    def _adopt_columnar_state(self, arrays: Mapping[str, np.ndarray], *,
                              source: str, copy: bool = True,
                              deep_validate: bool = True) -> None:
        """Validate and adopt a columnar (format v2) snapshot.

        ``deep_validate=False`` keeps the cheap shape/length checks but
        skips every scan that touches array *contents* (offset
        monotonicity, sorted keys, member/signature ranges) and defers
        signature decoding — on a memory-mapped load those scans would
        fault in the whole payload.
        """

        n_members = len(self._sample_ids)
        try:
            pool_bytes = arrays["pool_bytes"]
            pool_offsets = arrays["pool_offsets"]
        except KeyError as exc:
            raise IndexFormatError(
                f"{source} is missing required fields: {exc}") from exc
        if len(pool_offsets) < 1:
            raise IndexFormatError(f"{source} has corrupt signature "
                                   "pool offsets")
        if deep_validate and (
                pool_offsets[0] != 0
                or pool_offsets[-1] != len(pool_bytes)
                or (len(pool_offsets) > 1
                    and np.any(np.diff(pool_offsets) < 0))):
            raise IndexFormatError(f"{source} has corrupt signature "
                                   "pool offsets")
        try:
            pool = SignaturePool.from_packed(self._ngram_length, pool_bytes,
                                             pool_offsets,
                                             lazy=not deep_validate)
        except UnicodeDecodeError as exc:
            raise IndexFormatError(f"{source} has non-ASCII "
                                   "signature bytes") from exc
        self._pool = pool
        n_sigs = len(pool)
        for type_idx, feature_type in enumerate(self._ctph_types):
            prefix = f"t{type_idx}."
            try:
                cols = {name: arrays[prefix + name] for name in
                        ("entry_member", "entry_block", "entry_sig",
                         "post_keys", "post_blocks", "post_grams",
                         "post_offsets", "post_entries")}
            except KeyError as exc:
                raise IndexFormatError(
                    f"{source} is missing required fields: {exc}") from exc
            n_entries = len(cols["entry_member"])
            n_keys = len(cols["post_keys"])
            if len(cols["entry_block"]) != n_entries \
                    or len(cols["entry_sig"]) != n_entries:
                raise IndexFormatError(f"{source} has inconsistent "
                                       "entry array lengths")
            if len(cols["post_blocks"]) != n_keys \
                    or len(cols["post_offsets"]) != n_keys + 1 \
                    or cols["post_grams"].shape != (n_keys,
                                                    self._ngram_length):
                raise IndexFormatError(f"{source} has inconsistent "
                                       "posting array lengths")
            if deep_validate:
                offsets = cols["post_offsets"]
                if n_keys and (offsets[0] != 0
                               or offsets[-1] != len(cols["post_entries"])
                               or np.any(np.diff(offsets) < 0)):
                    raise IndexFormatError(f"{source} has corrupt "
                                           "posting offsets")
                if n_keys > 1 and np.any(np.diff(cols["post_keys"]) < 0):
                    raise IndexFormatError(
                        f"{source} has unsorted posting keys")
                if n_entries:
                    members = cols["entry_member"]
                    if members.min() < 0 or members.max() >= n_members:
                        raise IndexFormatError(
                            f"{source} references member "
                            f"#{int(members.max())} but only {n_members} "
                            "are declared")
                    sigs = cols["entry_sig"]
                    if sigs.min() < 0 or sigs.max() >= n_sigs:
                        raise IndexFormatError(
                            f"{source} references signature "
                            f"#{int(sigs.max())} but the pool holds {n_sigs}")
                posted = cols["post_entries"]
                if len(posted) and (n_entries == 0 or posted.min() < 0
                                    or posted.max() >= n_entries):
                    raise IndexFormatError(
                        f"{source} postings reference entry "
                        f"#{int(posted.max())} but only {n_entries} exist")
            store = ArrayPostings(pool, self._ngram_length)
            store.adopt_arrays(cols, copy=copy)
            self._stores[feature_type] = store
        for type_idx, feature_type in enumerate(self._vector_types):
            prefix = f"v{type_idx}."
            cols = {name[len(prefix):]: array
                    for name, array in arrays.items()
                    if name.startswith(prefix)}
            if not cols:
                raise IndexFormatError(
                    f"{source} declares vector feature type "
                    f"{feature_type!r} but carries no {prefix}* arrays")
            try:
                vstore = PackedDigestStore.adopt_arrays(cols, copy=copy)
            except ValidationError as exc:
                raise IndexFormatError(
                    f"{source} has a corrupt vector section: {exc}") from exc
            if len(vstore) != n_members:
                raise IndexFormatError(
                    f"{source} vector section {feature_type!r} has "
                    f"{len(vstore)} rows but {n_members} members are "
                    "declared")
            self._vstores[feature_type] = vstore

    def _rebuild_legacy_state(self, arrays: Mapping[str, np.ndarray], *,
                              source: str) -> None:
        """Rebuild from a legacy (format v1) flat-entry snapshot."""

        if self._vector_types:
            raise IndexFormatError(
                f"{source} uses the legacy flat-entry layout, which "
                "predates vector feature types")
        try:
            entry_type = arrays["entry_type"]
            entry_member = arrays["entry_member"]
            entry_block = arrays["entry_block"]
            sig_offsets = arrays["sig_offsets"]
            sig_bytes = arrays["sig_bytes"]
        except KeyError as exc:
            raise IndexFormatError(
                f"{source} is missing required fields: {exc}") from exc
        feature_types = self._feature_types
        n_entries = len(entry_type)
        if len(entry_member) != n_entries or len(entry_block) != n_entries \
                or len(sig_offsets) != n_entries + 1:
            raise IndexFormatError(f"{source} has inconsistent "
                                   "entry array lengths")
        if n_entries and (np.any(np.diff(sig_offsets) < 0)
                          or sig_offsets[0] != 0
                          or sig_offsets[-1] != len(sig_bytes)):
            raise IndexFormatError(f"{source} has corrupt "
                                   "signature offsets")
        try:
            all_signatures = sig_bytes.tobytes().decode("ascii")
        except UnicodeDecodeError as exc:
            raise IndexFormatError(f"{source} has non-ASCII "
                                   "signature bytes") from exc
        n_members = len(self._sample_ids)
        for i in range(n_entries):
            type_idx = int(entry_type[i])
            member = int(entry_member[i])
            if not 0 <= type_idx < len(feature_types):
                raise IndexFormatError(
                    f"{source} references feature type #{type_idx} "
                    f"but only {len(feature_types)} are declared")
            if not 0 <= member < n_members:
                raise IndexFormatError(
                    f"{source} references member #{member} "
                    f"but only {n_members} are declared")
            signature = all_signatures[int(sig_offsets[i]):
                                       int(sig_offsets[i + 1])]
            self._add_entry(feature_types[type_idx], member,
                            int(entry_block[i]), signature)

    # ------------------------------------------------------------ internals
    def _add_entry(self, feature_type: str, member: int, block_size: int,
                   signature: str) -> None:
        sig_id = self._pool.intern(signature)
        self._stores[feature_type].add_entry(member, block_size, sig_id)

    def _grams(self, signature: str) -> set[str]:
        return signature_grams(signature, self._ngram_length)

    def _score_signature_pairs(self, left: Sequence[str], right: Sequence[str],
                               block_sizes: Sequence[int]) -> np.ndarray:
        """SSDeep scores for same-block-size signature pairs (gate applied
        by the caller); see :func:`score_signature_pairs`."""

        return score_signature_pairs(left, right, block_sizes,
                                     engine=self._engine)

    def _check_feature_type(self, feature_type: str) -> None:
        if feature_type not in self._feature_types:
            raise ValidationError(
                f"unknown feature type {feature_type!r}; this index holds "
                f"{list(self._feature_types)}")


@lru_cache(maxsize=16384)
def _query_windows(signature: str, ngram_length: int) -> np.ndarray:
    """Query-side n-gram window matrix, memoised like the digest parse."""

    return signature_windows(signature, ngram_length)
