"""Sharded similarity index: N shards, one routing rule, one answer.

:class:`ShardedSimilarityIndex` partitions a corpus across ``n_shards``
:class:`~repro.index.core.SimilarityIndex` shards by a deterministic
hash of the ``sample_id`` (32-bit FNV, the same primitive SSDeep's
piecewise hash builds on), so the same member always lands in the same
shard — across processes, machines and save/load cycles.  On top of the
single index it adds what a production corpus store needs:

* **incremental shrink** — :meth:`remove` tombstones members without
  touching posting lists; queries exclude them transparently and
  :meth:`compact` rebuilds shards to reclaim the space;
* **concurrent queries** — :meth:`top_k` / :meth:`top_k_digests` /
  :meth:`score_matrices` generate candidates per shard (cheap posting
  walks) and fan the batched edit-distance scoring out over a pluggable
  :class:`~repro.parallel.backend.ExecutionBackend` (``executor=`` spec:
  ``"serial"``, ``"thread:4"``, ``"process:4"``, ...);
  :meth:`pairwise_matrix` merges posting buckets across shards and
  chunks the pair scoring over the same backend;
* **directory persistence** — :meth:`save` writes one
  ``shard-NNNN.rpsi`` container per shard (each atomic, reusing
  :mod:`repro.index.storage`) plus a ``manifest.json`` that is swapped
  into place atomically last, so a crash mid-save can never leave a
  readable-but-inconsistent index behind.

**Bit-identical results.**  Every query answers exactly as a single
:class:`SimilarityIndex` built from the surviving members in insertion
order would: candidate sets merge losslessly (a pair shares a posting
bucket globally iff it shares one in some shard or across shards),
scores come from the same :func:`~repro.index.core.score_signature_pairs`
DP, and merged rankings use the same stable sort with the same
insertion-order tie-break.  The Hypothesis property suite and
``benchmarks/bench_sharded_index.py`` both enforce this.
"""

from __future__ import annotations

import json
import os
from itertools import combinations
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..distance.batch import BatchEditDistance
from ..exceptions import (
    IndexFormatError,
    SimilarityIndexError,
    ValidationError,
)
from ..hashing.fnv import fnv_hash
from ..hashing.rolling import ROLLING_WINDOW
from ..hashing.vector import (VectorDigest, is_vector_digest, popcount_u8,
                              score_from_distance)
from ..logging_utils import get_logger
from ..observability.trace import span
from ..parallel.backend import ExecutionBackend, resolve_backend
from ..parallel.partition import chunk_indices
from .core import (
    _NO_EXCLUDED,
    _SSDEEP_COSTS,
    _signature_grams_cached,
    CandidateBatch,
    IndexMatch,
    PairScore,
    SimilarityIndex,
    score_signature_pairs,
)

__all__ = ["MANIFEST_NAME", "ROUTING_NAME", "SHARDED_FORMAT_VERSION",
           "ShardedSimilarityIndex", "load_index"]

_LOG = get_logger("index.sharded")

#: Manifest file name inside a sharded-index directory.
MANIFEST_NAME = "manifest.json"

#: Current (and oldest readable) sharded-index manifest version.
SHARDED_FORMAT_VERSION = 1

#: The ``format`` string a readable manifest must declare.
MANIFEST_FORMAT = "repro-sharded-index"

#: Name of the (only) routing rule: ``fnv32(sample_id) % n_shards``.
ROUTING_NAME = "fnv32"

#: Shard container file name: index + save-generation token.  The token
#: makes every save write fresh files, so an in-place re-save cannot
#: corrupt the shard files the existing manifest still points at.
_SHARD_FILE = "shard-{:04d}-{}.rpsi"

#: Below this many candidate pairs the fan-out overhead cannot pay for
#: itself, so scoring stays serial regardless of the backend.
_MIN_PAIRS_TO_FAN_OUT = 64


def _score_pairs_task(payload: tuple[list[str], list[str], list[int]]
                      ) -> np.ndarray:
    """Worker task: score one chunk of signature pairs (picklable)."""

    left, right, block_sizes = payload
    return score_signature_pairs(left, right, block_sizes)


def _score_pair_chunk(pairs: Sequence[tuple[int, int]],
                      sig_by_member: Mapping[int, Mapping[int, str]],
                      ngram_length: int, *,
                      engine: BatchEditDistance | None = None) -> np.ndarray:
    """Best score per member pair for one feature type (picklable).

    This is the whole per-pair half of the single index's
    ``pairwise_matrix`` inner loop — comparable-block matching, the
    n-gram gate, slot de-duplication and the DP — so a worker chunk
    carries everything compute-heavy, not just the DP.  Per-pair results
    are independent of how pairs are chunked (the DP scores each
    signature pair on its own), which is what keeps chunked execution
    bit-identical to the serial path.
    """

    def grams_of(signature: str) -> frozenset[str]:
        # Bounded LRU shared with every other gram consumer (and with
        # other chunks scored by the same worker process).
        return _signature_grams_cached(signature, ngram_length)

    left: list[str] = []
    right: list[str] = []
    block_sizes: list[int] = []
    slot_for_key: dict[tuple[str, str, int], int] = {}
    scatter: list[tuple[int, int]] = []        # (pair_idx, slot)
    for pair_idx, (i, j) in enumerate(pairs):
        sigs_i = sig_by_member.get(int(i))
        sigs_j = sig_by_member.get(int(j))
        if not sigs_i or not sigs_j:
            continue
        for block_size in sigs_i.keys() & sigs_j.keys():
            sig_a, sig_b = sigs_i[block_size], sigs_j[block_size]
            if not grams_of(sig_a) & grams_of(sig_b):
                continue
            key = (sig_a, sig_b, block_size)
            slot = slot_for_key.get(key)
            if slot is None:
                slot = len(left)
                slot_for_key[key] = slot
                left.append(sig_a)
                right.append(sig_b)
                block_sizes.append(block_size)
            scatter.append((pair_idx, slot))
    scores = np.zeros(len(pairs), dtype=np.float64)
    if left:
        slot_scores = score_signature_pairs(left, right, block_sizes,
                                            engine=engine)
        for pair_idx, slot in scatter:
            if slot_scores[slot] > scores[pair_idx]:
                scores[pair_idx] = slot_scores[slot]
    return scores


def _pairwise_chunk_task(payload) -> np.ndarray:
    """Worker task wrapper for :func:`_score_pair_chunk`."""

    pairs, sig_by_member, ngram_length = payload
    return _score_pair_chunk(pairs, sig_by_member, ngram_length)


def load_index(path: str | os.PathLike, *,
               executor: "str | ExecutionBackend | None" = None,
               mmap_mode: str | None = None
               ) -> "SimilarityIndex | ShardedSimilarityIndex":
    """Load whichever index lives at ``path``.

    A directory (or anything holding a ``manifest.json``) loads as a
    :class:`ShardedSimilarityIndex`; a file loads as a plain
    :class:`SimilarityIndex` (``executor`` is ignored for those).
    ``mmap_mode="r"`` maps the container payloads zero-copy (see
    :meth:`SimilarityIndex.load`).
    """

    path = Path(path)
    if path.is_dir():
        return ShardedSimilarityIndex.load(path, executor=executor,
                                           mmap_mode=mmap_mode)
    return SimilarityIndex.load(path, mmap_mode=mmap_mode)


class ShardedSimilarityIndex:
    """N-shard similarity index with tombstones and backend fan-out.

    Parameters
    ----------
    feature_types:
        Fuzzy-hash types indexed per member (defaults to the paper's
        three types, like :class:`SimilarityIndex`).
    n_shards:
        Number of shards; members route to
        ``fnv32(sample_id) % n_shards``.
    ngram_length:
        Length of the common-substring precondition (7, like SSDeep).
    executor:
        Execution backend spec (``"serial"``, ``"thread[:N]"``,
        ``"process[:N]"``) or an
        :class:`~repro.parallel.backend.ExecutionBackend` instance used
        to fan query scoring out across shards.  ``None`` means serial.
    """

    def __init__(self, feature_types: Sequence[str] = None, *,
                 n_shards: int = 4, ngram_length: int = ROLLING_WINDOW,
                 executor: "str | ExecutionBackend | None" = None) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        self._shards = [SimilarityIndex(feature_types,
                                        ngram_length=ngram_length)
                        for _ in range(int(n_shards))]
        self._feature_types = self._shards[0].feature_types
        self._ngram_length = self._shards[0].ngram_length
        #: Global insertion order: sequence -> (shard, local member).
        self._order: list[tuple[int, int]] = []
        #: Tombstoned local member indices, per shard.
        self._dead: list[set[int]] = [set() for _ in self._shards]
        self._backend = resolve_backend(executor)
        self._engine = BatchEditDistance(**_SSDEEP_COSTS)
        self._invalidate()

    # ------------------------------------------------------------ properties
    @property
    def feature_types(self) -> tuple[str, ...]:
        return self._feature_types

    @property
    def ngram_length(self) -> int:
        return self._ngram_length

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def n_members(self) -> int:
        """Surviving (non-tombstoned) members."""

        return len(self._order) - self.n_tombstones

    def __len__(self) -> int:
        return self.n_members

    @property
    def total_members(self) -> int:
        """All members ever added and not yet compacted away."""

        return len(self._order)

    @property
    def n_tombstones(self) -> int:
        return sum(len(dead) for dead in self._dead)

    @property
    def tombstone_ratio(self) -> float:
        """Tombstoned fraction of all resident members (0.0 when empty).

        Lifecycle policies compact past a ratio threshold instead of an
        absolute count, so the trigger scales with corpus size.
        """

        total = len(self._order)
        return (self.n_tombstones / total) if total else 0.0

    @property
    def executor(self) -> ExecutionBackend:
        """The execution backend queries fan out on."""

        return self._backend

    @property
    def sample_ids(self) -> tuple[str, ...]:
        """Sample ids of surviving members, in global insertion order."""

        self._refresh()
        return tuple(self._surv_ids)

    @property
    def class_names(self) -> tuple[str, ...]:
        self._refresh()
        return tuple(self._surv_classes)

    def shard_of(self, sample_id: str) -> int:
        """The shard a sample id routes to (deterministic, persistent)."""

        if not isinstance(sample_id, str) or not sample_id:
            raise ValidationError("sample_id must be a non-empty string")
        return fnv_hash(sample_id.encode("utf-8")) % len(self._shards)

    def members_for_id(self, sample_id: str) -> frozenset[int]:
        """Surviving member indices registered under ``sample_id``."""

        shard = self.shard_of(sample_id)
        self._refresh()
        gmap = self._global_map[shard]
        return frozenset(
            int(gmap[local])
            for local in self._shards[shard].members_for_id(sample_id)
            if gmap[local] >= 0)

    def set_executor(self, executor: "str | ExecutionBackend | None") -> None:
        """Swap the execution backend (closing the previous one)."""

        self._backend.close()
        self._backend = resolve_backend(executor)

    def close(self) -> None:
        """Release the backend's pooled workers (idempotent)."""

        self._backend.close()

    def __enter__(self) -> "ShardedSimilarityIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- updates
    def add(self, sample_id: str, digests: Mapping[str, str], *,
            class_name: str = "") -> int:
        """Add one member; returns its global sequence number.

        While no members have been removed, the sequence number equals
        the member index queries report; after removals the surviving
        members renumber densely (exactly as a fresh single index over
        the survivors would).
        """

        shard = self.shard_of(sample_id)
        local = self._shards[shard].add(sample_id, digests,
                                        class_name=class_name)
        self._order.append((shard, local))
        self._invalidate()
        return len(self._order) - 1

    def add_many(self, samples: Iterable) -> list[int]:
        """Add many members; returns their global sequence numbers.

        Accepts the same shapes as :meth:`SimilarityIndex.add_many`.
        """

        sequences = []
        for sample in samples:
            if isinstance(sample, tuple):
                sample_id, digests = sample[0], sample[1]
                class_name = sample[2] if len(sample) > 2 else ""
            else:
                sample_id = sample.sample_id
                digests = sample.digests
                class_name = getattr(sample, "class_name", "")
            sequences.append(self.add(sample_id, digests,
                                      class_name=class_name))
        return sequences

    def seal(self) -> None:
        """Merge every shard's pending posting tail (idempotent).

        See :meth:`SimilarityIndex.seal` — sealing after a bulk load
        makes the first query's latency deterministic.
        """

        for shard in self._shards:
            shard.seal()

    def remove(self, sample_id: str) -> int:
        """Tombstone every member registered under ``sample_id``.

        Returns how many members were newly tombstoned (0 when the id is
        unknown or already removed).  The space is reclaimed by
        :meth:`compact`; until then queries simply never see them.
        """

        shard = self.shard_of(sample_id)
        fresh = [local
                 for local in self._shards[shard].members_for_id(sample_id)
                 if local not in self._dead[shard]]
        if fresh:
            self._dead[shard].update(fresh)
            self._invalidate()
        return len(fresh)

    def compact(self) -> int:
        """Rebuild shards without their tombstoned members.

        Returns the number of members physically dropped.  Queries are
        unaffected (tombstoned members were already invisible); what
        changes is that their postings and signatures stop occupying
        memory and disk.
        """

        dropped = self.n_tombstones
        if not dropped:
            return 0
        remaps: list[dict[int, int]] = []
        new_shards: list[SimilarityIndex] = []
        for shard_idx, shard in enumerate(self._shards):
            keep = [local for local in range(shard.n_members)
                    if local not in self._dead[shard_idx]]
            new_shards.append(shard.subset(keep))
            remaps.append({old: new for new, old in enumerate(keep)})
        self._order = [(s, remaps[s][local]) for s, local in self._order
                       if local not in self._dead[s]]
        self._shards = new_shards
        self._dead = [set() for _ in self._shards]
        self._invalidate()
        _LOG.info("compacted sharded index: dropped %d tombstoned members, "
                  "%d survive", dropped, self.n_members)
        return dropped

    # -------------------------------------------------------------- queries
    def top_k(self, digest: str, k: int = 10, *,
              feature_type: str | None = None, min_score: int = 1,
              exclude_ids: Iterable[str] = ()) -> list[IndexMatch]:
        """The ``k`` best-scoring surviving members for a query digest.

        Semantics (ordering, tie-breaks, ``min_score``, ``exclude_ids``)
        are exactly those of :meth:`SimilarityIndex.top_k` over the
        surviving corpus.
        """

        if feature_type is not None:
            self._check_feature_type(feature_type)
            types = (feature_type,)
        elif is_vector_digest(digest):
            types = self._shards[0].vector_feature_types
        else:
            types = self._shards[0].ctph_feature_types
        return self.top_k_digests({ft: digest for ft in types}, k,
                                  min_score=min_score, exclude_ids=exclude_ids)

    def top_k_digests(self, digests: Mapping[str, str], k: int = 10, *,
                      min_score: int = 1,
                      exclude_ids: Iterable[str] = ()) -> list[IndexMatch]:
        """Like :meth:`top_k`, but with one query digest per feature type."""

        if k < 1:
            raise ValidationError("k must be >= 1")
        if not 0 <= min_score <= 100:
            raise ValidationError("min_score must be in [0, 100]")
        self._refresh()
        if not self._survivors:
            return []
        # Like the single index: the common serving call excludes
        # nothing, so reuse one shared frozen set instead of building a
        # fresh set (and resolving ids) per query.
        excluded: frozenset[int] | set[int] = _NO_EXCLUDED
        for sample_id in exclude_ids:
            members = self.members_for_id(sample_id)
            if members:
                if excluded is _NO_EXCLUDED:
                    excluded = set()
                excluded.update(members)

        digests = {ft: digest for ft, digest in digests.items()}
        batches = self._collect_shard_batches(
            digests, exclude_global=[excluded] if excluded else None)
        shard_scores = self._score_batches(batches)

        best = np.zeros(len(self._survivors), dtype=np.float64)
        self._scatter_max_rows(best, batches, shard_scores)

        order = np.argsort(-best, kind="stable")
        results: list[IndexMatch] = []
        for member in order:
            score = int(best[member])
            if score < min_score or member in excluded:
                # argsort is stable, so every later member scores <= this
                # one; excluded members sit at score 0 and are skipped by
                # min_score >= 1, but must also be hidden at min_score 0.
                if score < min_score:
                    break
                continue
            results.append(IndexMatch(
                member_index=int(member),
                sample_id=self._surv_ids[member],
                class_name=self._surv_classes[member],
                score=score))
            if len(results) == k:
                break
        return results

    def score_matrix(self, feature_type: str, digests: Sequence[str], *,
                     exclude: Sequence[Iterable[int]] | None = None
                     ) -> np.ndarray:
        """Dense ``(len(digests), n_members)`` score matrix over survivors."""

        return self.score_matrices({feature_type: digests},
                                   exclude=exclude)[feature_type]

    def score_matrices(self, digests_by_type: Mapping[str, Sequence[str]], *,
                       exclude: Sequence[Iterable[int]] | None = None
                       ) -> dict[str, np.ndarray]:
        """Score matrices for several feature types in one fanned-out pass.

        Drop-in equivalent of :meth:`SimilarityIndex.score_matrices`
        over the surviving corpus: candidate generation runs per shard,
        the de-duplicated DP scoring fans out on the execution backend,
        and the per-shard columns scatter back into global matrices.
        ``exclude`` holds (global) surviving member indices.
        """

        digests_by_type = {ft: list(digests)
                           for ft, digests in digests_by_type.items()}
        self._refresh()
        with span("candidate_gen"):
            batches = self._collect_shard_batches(digests_by_type,
                                                  exclude_global=exclude)
        with span("dp_scoring"):
            shard_scores = self._score_batches(batches)
        n_members = len(self._survivors)
        matrices = {ft: np.zeros((batches[0].n_queries[ft], n_members),
                                 dtype=np.float64)
                    for ft in digests_by_type}
        for shard_idx, (batch, scores) in enumerate(zip(batches,
                                                        shard_scores)):
            gmap = self._global_map[shard_idx]
            for feature_type, (pair_queries, pair_members,
                               pair_slots) in batch.scatter.items():
                if not len(pair_queries):
                    continue
                members = gmap[pair_members]
                np.maximum.at(matrices[feature_type],
                              (pair_queries, members),
                              scores[pair_slots])
            # Vector-family scores arrive pre-computed from each shard's
            # packed sweep; only the member translation is global.
            for feature_type, (vec_queries, vec_members,
                               vec_scores) in batch.vector.items():
                if len(vec_queries):
                    np.maximum.at(matrices[feature_type],
                                  (vec_queries, gmap[vec_members]),
                                  vec_scores)
        return matrices

    def pairwise_matrix(self, feature_type: str | None = None, *,
                        max_pairs: int | None = None,
                        min_score: int = 1) -> list[PairScore]:
        """Budgeted all-vs-all scoring over surviving members.

        Candidate pairs come from posting buckets merged across shards
        (two members are candidates iff they share a bucket — wherever
        each lives), so the result is exactly
        :meth:`SimilarityIndex.pairwise_matrix` over the surviving
        corpus, including the ``max_pairs`` truncation warning.  The
        edit-distance scoring is chunked over the execution backend.
        """

        if max_pairs is not None and max_pairs < 1:
            raise ValidationError("max_pairs must be >= 1 (or None)")
        if not 0 <= min_score <= 100:
            raise ValidationError("min_score must be in [0, 100]")
        if feature_type is not None:
            self._check_feature_type(feature_type)
            types = (feature_type,)
        else:
            types = self._feature_types
        self._refresh()

        vector_types = set(self._shards[0].vector_feature_types)
        candidates: set[tuple[int, int]] = set()
        for ft in types:
            if ft in vector_types:
                # No candidate gate for the vector family: any two
                # surviving members carrying a digest are comparable.
                with_digest: list[int] = []
                for shard_idx, shard in enumerate(self._shards):
                    gmap = self._global_map[shard_idx]
                    for local in shard.member_signatures(ft):
                        member = int(gmap[local])
                        if member >= 0:
                            with_digest.append(member)
                if len(with_digest) >= 2:
                    candidates.update(combinations(sorted(with_digest), 2))
                continue
            merged: dict[tuple[int, str], set[int]] = {}
            for shard_idx, shard in enumerate(self._shards):
                gmap = self._global_map[shard_idx]
                for key, members in shard.posting_members(ft).items():
                    alive = [int(gmap[m]) for m in members if gmap[m] >= 0]
                    if alive:
                        merged.setdefault(key, set()).update(alive)
            for members in merged.values():
                if len(members) >= 2:
                    candidates.update(combinations(sorted(members), 2))
        pairs = sorted(candidates)
        if max_pairs is not None and len(pairs) > max_pairs:
            dropped = len(pairs) - max_pairs
            _LOG.warning(
                "pairwise_matrix: scoring %d of %d candidate pairs, dropping "
                "%d over the max_pairs=%d budget", max_pairs, len(pairs),
                dropped, max_pairs)
            pairs = pairs[:max_pairs]
        if not pairs:
            return []

        best = np.zeros(len(pairs), dtype=np.float64)
        workers = self._backend.n_workers
        for ft in types:
            sig_by_member: dict[int, dict[int, str]] = {}
            for shard_idx, shard in enumerate(self._shards):
                gmap = self._global_map[shard_idx]
                for local, sigs in shard.member_signatures(ft).items():
                    member = int(gmap[local])
                    if member >= 0:
                        sig_by_member[member] = sigs
            if ft in vector_types:
                # Packed all-pairs Hamming in one gather; the DP fan-out
                # below would mis-score the fixed-length digests.
                words = {member: VectorDigest.parse(sigs[0]).words
                         for member, sigs in sig_by_member.items()
                         if sigs.get(0)}
                hit = [idx for idx, (i, j) in enumerate(pairs)
                       if i in words and j in words]
                if hit:
                    left_w = np.vstack([words[pairs[idx][0]] for idx in hit])
                    right_w = np.vstack([words[pairs[idx][1]] for idx in hit])
                    dist = popcount_u8(
                        np.bitwise_xor(left_w, right_w).view(np.uint8)
                    ).sum(axis=1, dtype=np.int64)
                    scores = np.zeros(len(pairs), dtype=np.float64)
                    scores[hit] = np.asarray(score_from_distance(dist),
                                             dtype=np.float64)
                    np.maximum(best, scores, out=best)
                continue
            if workers <= 1 or len(pairs) < max(_MIN_PAIRS_TO_FAN_OUT,
                                                2 * workers):
                scores = _score_pair_chunk(pairs, sig_by_member,
                                           self._ngram_length,
                                           engine=self._engine)
            else:
                chunks = chunk_indices(len(pairs), -(-len(pairs) // workers))
                payloads = []
                for lo, hi in chunks:
                    chunk = pairs[lo:hi]
                    # Ship only the signatures this chunk's pairs touch;
                    # the full map would pickle the whole corpus into
                    # every worker payload.
                    needed = {member for pair in chunk for member in pair}
                    chunk_sigs = {member: sig_by_member[member]
                                  for member in needed
                                  if member in sig_by_member}
                    payloads.append((chunk, chunk_sigs, self._ngram_length))
                _LOG.debug("fanning %d pairwise candidates onto %d %s "
                           "workers", len(pairs), workers,
                           self._backend.name)
                scores = np.concatenate(self._backend.map(
                    _pairwise_chunk_task, payloads, chunksize=1))
            np.maximum(best, scores, out=best)

        return [PairScore(i=i, j=j, score=int(score))
                for (i, j), score in zip(pairs, best) if score >= min_score]

    # ---------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Summary counters with a per-shard breakdown."""

        self._refresh()
        labelled = [name for name in self._surv_classes if name]
        shard_stats = [shard.stats() for shard in self._shards]
        per_shard = []
        for shard_idx, (shard, stats) in enumerate(zip(self._shards,
                                                       shard_stats)):
            entries = sum(info.get("entries", 0)
                          for info in stats["feature_types"].values())
            postings = sum(info.get("postings", 0)
                           for info in stats["feature_types"].values())
            per_shard.append({
                "shard": shard_idx,
                "members": shard.n_members - len(self._dead[shard_idx]),
                "total_members": shard.n_members,
                "tombstones": len(self._dead[shard_idx]),
                "entries": entries,
                "postings": postings,
                "estimated_bytes": stats["estimated_bytes"],
            })
        per_type: dict[str, dict] = {}
        vector_types = set(self._shards[0].vector_feature_types)
        vector_bytes = 0
        for feature_type in self._feature_types:
            infos = [stats["feature_types"][feature_type]
                     for stats in shard_stats]
            if feature_type in vector_types:
                packed = sum(info["packed_matrix_bytes"] for info in infos)
                per_type[feature_type] = {
                    "family": "vector",
                    "members_with_digest": sum(info["members_with_digest"]
                                               for info in infos),
                    "digest_bits": infos[0]["digest_bits"],
                    "packed_matrix_bytes": packed,
                }
                vector_bytes += packed
                continue
            entries = postings = 0
            block_sizes: set[int] = set()
            for info in infos:
                entries += info["entries"]
                postings += info["postings"]
                block_sizes.update(info["block_sizes"])
            per_type[feature_type] = {
                "family": "ctph",
                "entries": entries,
                "postings": postings,
                "block_sizes": sorted(block_sizes),
            }
        families = {
            "ctph": {
                "feature_types": list(self._shards[0].ctph_feature_types),
                "entries": sum(info.get("entries", 0)
                               for info in per_type.values()),
            },
            "vector": {
                "feature_types": sorted(vector_types),
                "digest_bits": 256,
                "packed_matrix_bytes": int(vector_bytes),
            },
        }
        return {
            "members": self.n_members,
            "total_members": self.total_members,
            "tombstones": self.n_tombstones,
            "n_shards": self.n_shards,
            "routing": ROUTING_NAME,
            "classes": len(set(labelled)),
            "labelled_members": len(labelled),
            "ngram_length": self._ngram_length,
            "feature_types": per_type,
            "families": families,
            "shards": per_shard,
        }

    # ---------------------------------------------------------- conversion
    def merge_to_single(self) -> SimilarityIndex:
        """A single :class:`SimilarityIndex` over the surviving members.

        Members keep their global insertion order, so the result answers
        every query identically — this is the migration path back to the
        single-file ``.rpsi`` format.
        """

        result = SimilarityIndex(self._feature_types,
                                 ngram_length=self._ngram_length)
        for sample_id, class_name, entries_by_type in \
                self._iter_surviving_entries():
            result.append_entries(sample_id, class_name, entries_by_type)
        return result

    @classmethod
    def from_index(cls, index: "SimilarityIndex | ShardedSimilarityIndex", *,
                   n_shards: int = 4,
                   executor: "str | ExecutionBackend | None" = None
                   ) -> "ShardedSimilarityIndex":
        """Shard an existing index (single or sharded, any shard count).

        Surviving members are routed to their new shards in global
        insertion order; results stay bit-identical.
        """

        result = cls(index.feature_types, n_shards=n_shards,
                     ngram_length=index.ngram_length, executor=executor)
        if isinstance(index, ShardedSimilarityIndex):
            entries_iter = index._iter_surviving_entries()
        else:
            entries_iter = _iter_single_index_entries(index)
        for sample_id, class_name, entries_by_type in entries_iter:
            shard = result.shard_of(sample_id)
            local = result._shards[shard].append_entries(
                sample_id, class_name, entries_by_type)
            result._order.append((shard, local))
        result._invalidate()
        return result

    # ---------------------------------------------------------- persistence
    def save(self, path: str | os.PathLike) -> Path:
        """Write the index as a directory: shard containers + manifest.

        Shard files are written first (each atomically) under
        generation-unique names, so an in-place re-save never touches
        the files the current manifest references; the new manifest is
        swapped into place last with :func:`os.replace`.  A crash at any
        point therefore leaves a loadable index — the old one before the
        swap, the new one after.  Shard files no newer manifest
        references are removed after the swap.
        """

        path = Path(path)
        if path.exists() and not path.is_dir():
            raise SimilarityIndexError(
                f"cannot save sharded index to {path}: a file is in the way")
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise SimilarityIndexError(
                f"cannot create sharded index directory {path}: {exc}"
            ) from exc
        generation = os.urandom(4).hex()
        shard_files = [_SHARD_FILE.format(i, generation)
                       for i in range(self.n_shards)]
        for shard, name in zip(self._shards, shard_files):
            shard.save(path / name)
        manifest = {
            "format": MANIFEST_FORMAT,
            "format_version": SHARDED_FORMAT_VERSION,
            "n_shards": self.n_shards,
            "feature_types": list(self._feature_types),
            "ngram_length": self._ngram_length,
            "routing": ROUTING_NAME,
            "members": self.n_members,
            "order": [shard for shard, _local in self._order],
            "tombstones": [sorted(dead) for dead in self._dead],
            "shards": shard_files,
        }
        tmp_path = path / (MANIFEST_NAME + ".tmp")
        try:
            tmp_path.write_text(json.dumps(manifest, sort_keys=True),
                                encoding="utf-8")
            os.replace(tmp_path, path / MANIFEST_NAME)
        except OSError as exc:
            try:
                tmp_path.unlink()
            except OSError:
                pass
            raise SimilarityIndexError(
                f"cannot write sharded index manifest under {path}: {exc}"
            ) from exc
        keep = set(shard_files)
        for stale in path.glob("shard-*.rpsi"):
            if stale.name not in keep:
                try:
                    stale.unlink()
                except OSError:  # pragma: no cover - cleanup is best-effort
                    pass
        _LOG.info("saved sharded index (%d members, %d shards, "
                  "%d tombstones) to %s", self.n_members, self.n_shards,
                  self.n_tombstones, path)
        return path

    @classmethod
    def load(cls, path: str | os.PathLike, *,
             executor: "str | ExecutionBackend | None" = None,
             mmap_mode: str | None = None
             ) -> "ShardedSimilarityIndex":
        """Load a directory written by :meth:`save`.

        ``mmap_mode="r"`` loads every shard container through the
        zero-copy mapped path (see :meth:`SimilarityIndex.load`).
        Raises :class:`~repro.exceptions.IndexFormatError` on missing,
        corrupt, inconsistent or unsupported layouts.
        """

        path = Path(path)
        source = f"sharded index directory {path}"
        if not path.is_dir():
            raise IndexFormatError(f"{source} does not exist")
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise IndexFormatError(f"{source} has no {MANIFEST_NAME}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IndexFormatError(
                f"{source} has a corrupt manifest: {exc}") from exc
        if not isinstance(manifest, dict) \
                or manifest.get("format") != MANIFEST_FORMAT:
            raise IndexFormatError(
                f"{source} is not a {MANIFEST_FORMAT} manifest")
        version = manifest.get("format_version")
        if not isinstance(version, int) or version > SHARDED_FORMAT_VERSION:
            raise IndexFormatError(
                f"{source} uses manifest version {version!r}; this build "
                f"reads up to version {SHARDED_FORMAT_VERSION}")
        routing = manifest.get("routing")
        if routing != ROUTING_NAME:
            raise IndexFormatError(
                f"{source} declares unknown routing {routing!r}; this build "
                f"supports {ROUTING_NAME!r}")
        try:
            shard_files = [str(name) for name in manifest["shards"]]
            n_shards = int(manifest["n_shards"])
            order = [int(shard) for shard in manifest["order"]]
            tombstones = [[int(m) for m in dead]
                          for dead in manifest["tombstones"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexFormatError(
                f"{source} manifest is missing required fields: {exc}"
            ) from exc
        if len(shard_files) != n_shards or len(tombstones) != n_shards \
                or n_shards < 1:
            raise IndexFormatError(
                f"{source} manifest declares {n_shards} shards but lists "
                f"{len(shard_files)} shard files and {len(tombstones)} "
                "tombstone sets")
        shards = [SimilarityIndex.load(path / name, mmap_mode=mmap_mode)
                  for name in shard_files]
        index = cls._assemble(shards, order, tombstones, source=source,
                              executor=executor)
        _LOG.info("loaded sharded index (%d members, %d shards, "
                  "%d tombstones) from %s", index.n_members, index.n_shards,
                  index.n_tombstones, path)
        return index

    def get_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Serialisable ``(header, arrays)`` snapshot (model artifacts).

        Same contract as :meth:`SimilarityIndex.get_state`; the header
        carries ``"sharded": true`` so
        :meth:`~repro.features.similarity.SimilarityFeatureBuilder.set_state`
        (and the ``.rpm`` v2 reader) can dispatch on the index kind.
        """

        shard_states = [shard.get_state() for shard in self._shards]
        header = {
            "sharded": True,
            "sharded_format_version": SHARDED_FORMAT_VERSION,
            "n_shards": self.n_shards,
            "feature_types": list(self._feature_types),
            "ngram_length": self._ngram_length,
            "routing": ROUTING_NAME,
            "order": [shard for shard, _local in self._order],
            "tombstones": [sorted(dead) for dead in self._dead],
            "shard_headers": [shard_header
                              for shard_header, _arrays in shard_states],
        }
        arrays: dict[str, np.ndarray] = {}
        for shard_idx, (_header, shard_arrays) in enumerate(shard_states):
            for name, array in shard_arrays.items():
                arrays[f"shard{shard_idx}.{name}"] = array
        return header, arrays

    @classmethod
    def from_state(cls, header: Mapping, arrays: Mapping[str, np.ndarray], *,
                   source: str = "sharded index state",
                   executor: "str | ExecutionBackend | None" = None,
                   copy: bool = True, deep_validate: bool = True
                   ) -> "ShardedSimilarityIndex":
        """Rebuild an index from a :meth:`get_state` snapshot.

        ``copy`` and ``deep_validate`` forward to each shard's
        :meth:`SimilarityIndex.from_state` (the zero-copy mapped path).
        """

        try:
            n_shards = int(header["n_shards"])
            order = [int(shard) for shard in header["order"]]
            tombstones = [[int(m) for m in dead]
                          for dead in header["tombstones"]]
            shard_headers = list(header["shard_headers"])
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexFormatError(
                f"{source} is missing required fields: {exc}") from exc
        version = header.get("sharded_format_version")
        if not isinstance(version, int) or version > SHARDED_FORMAT_VERSION:
            raise IndexFormatError(
                f"{source} uses sharded format version {version!r}; this "
                f"build reads up to version {SHARDED_FORMAT_VERSION}")
        if len(shard_headers) != n_shards or len(tombstones) != n_shards \
                or n_shards < 1:
            raise IndexFormatError(
                f"{source} declares {n_shards} shards but carries "
                f"{len(shard_headers)} shard headers and {len(tombstones)} "
                "tombstone sets")
        shards = []
        for shard_idx, shard_header in enumerate(shard_headers):
            prefix = f"shard{shard_idx}."
            shard_arrays = {name[len(prefix):]: array
                            for name, array in arrays.items()
                            if name.startswith(prefix)}
            shards.append(SimilarityIndex.from_state(
                shard_header, shard_arrays,
                source=f"{source} (shard {shard_idx})",
                copy=copy, deep_validate=deep_validate))
        return cls._assemble(shards, order, tombstones, source=source,
                             executor=executor)

    # ----------------------------------------------------------- internals
    @classmethod
    def _assemble(cls, shards: list[SimilarityIndex], order: list[int],
                  tombstones: list[list[int]], *, source: str,
                  executor: "str | ExecutionBackend | None"
                  ) -> "ShardedSimilarityIndex":
        """Wire validated shards + layout into an instance."""

        first = shards[0]
        for shard_idx, shard in enumerate(shards):
            if shard.feature_types != first.feature_types \
                    or shard.ngram_length != first.ngram_length:
                raise IndexFormatError(
                    f"{source}: shard {shard_idx} disagrees with shard 0 on "
                    "feature types or n-gram length")
        counts = [0] * len(shards)
        pairs: list[tuple[int, int]] = []
        for shard_idx in order:
            if not 0 <= shard_idx < len(shards):
                raise IndexFormatError(
                    f"{source} order references shard #{shard_idx} but only "
                    f"{len(shards)} exist")
            pairs.append((shard_idx, counts[shard_idx]))
            counts[shard_idx] += 1
        for shard_idx, shard in enumerate(shards):
            if counts[shard_idx] != shard.n_members:
                raise IndexFormatError(
                    f"{source} order assigns {counts[shard_idx]} members to "
                    f"shard {shard_idx}, which holds {shard.n_members}")
        dead_sets: list[set[int]] = []
        for shard_idx, dead in enumerate(tombstones):
            dead_set = set(dead)
            if dead_set and not all(
                    0 <= m < shards[shard_idx].n_members for m in dead_set):
                raise IndexFormatError(
                    f"{source} tombstones reference members outside shard "
                    f"{shard_idx}")
            dead_sets.append(dead_set)

        index = cls.__new__(cls)
        index._shards = shards
        index._feature_types = first.feature_types
        index._ngram_length = first.ngram_length
        index._order = pairs
        index._dead = dead_sets
        index._backend = resolve_backend(executor)
        index._engine = BatchEditDistance(**_SSDEEP_COSTS)
        index._invalidate()
        return index

    def _invalidate(self) -> None:
        self._survivors: list[tuple[int, int]] | None = None
        self._global_map: list[np.ndarray] = []
        self._surv_ids: list[str] = []
        self._surv_classes: list[str] = []

    def _refresh(self) -> None:
        """(Re)build the surviving-member views after a mutation."""

        if self._survivors is not None:
            return
        gmaps = [np.full(shard.n_members, -1, dtype=np.int64)
                 for shard in self._shards]
        shard_ids = [shard.sample_ids for shard in self._shards]
        shard_classes = [shard.class_names for shard in self._shards]
        survivors: list[tuple[int, int]] = []
        surv_ids: list[str] = []
        surv_classes: list[str] = []
        for shard_idx, local in self._order:
            if local in self._dead[shard_idx]:
                continue
            gmaps[shard_idx][local] = len(survivors)
            survivors.append((shard_idx, local))
            surv_ids.append(shard_ids[shard_idx][local])
            surv_classes.append(shard_classes[shard_idx][local])
        self._survivors = survivors
        self._global_map = gmaps
        self._surv_ids = surv_ids
        self._surv_classes = surv_classes

    def _collect_shard_batches(
            self, digests_by_type: Mapping[str, Sequence[str] | str],
            *, exclude_global: Sequence[Iterable[int]] | None
    ) -> list[CandidateBatch]:
        """Per-shard candidate generation with exclusion translation.

        ``digests_by_type`` maps feature types either to one digest (a
        ``top_k`` query) or to a sequence of digests; ``exclude_global``
        holds global surviving member indices per query (or one
        broadcast set).  Tombstoned members are always excluded.
        """

        single_query = any(isinstance(d, str)
                           for d in digests_by_type.values())
        if single_query:
            digests_by_type = {ft: [d] for ft, d in digests_by_type.items()}
        batches = []
        for shard_idx, shard in enumerate(self._shards):
            dead = self._dead[shard_idx]
            if exclude_global is None:
                exclude = [dead] if dead else None
            else:
                exclude = []
                for per_query in exclude_global:
                    locals_ = set(dead)
                    for member in per_query:
                        member = int(member)
                        if not 0 <= member < len(self._survivors):
                            raise ValidationError(
                                f"exclude references member #{member} but "
                                f"only {len(self._survivors)} survive")
                        owner, local = self._survivors[member]
                        if owner == shard_idx:
                            locals_.add(local)
                    exclude.append(locals_)
            # Detail span: attributes the enclosing candidate_gen stage
            # per shard (excluded from per-trace stage rollups).
            with span("candidate_gen", shard=shard_idx):
                batches.append(shard.collect_candidates(digests_by_type,
                                                        exclude=exclude))
        return batches

    def _score_batches(self, batches: Sequence[CandidateBatch]
                       ) -> list[np.ndarray]:
        """Score every batch's unique pairs, fanning out when worthwhile."""

        total = sum(len(batch.left) for batch in batches)
        busy = [i for i, batch in enumerate(batches) if batch.left]
        scores: list[np.ndarray] = [np.zeros(0, dtype=np.float64)
                                    for _ in batches]
        if self._backend.n_workers <= 1 or len(busy) <= 1 \
                or total < _MIN_PAIRS_TO_FAN_OUT:
            for i in busy:
                batch = batches[i]
                # Per-shard detail span (serial path only: the fanned
                # path scores remotely, where spans cannot attach).
                with span("dp_scoring", shard=i):
                    scores[i] = score_signature_pairs(
                        batch.left, batch.right, batch.block_sizes,
                        engine=self._engine)
            return scores
        payloads = [(batches[i].left, batches[i].right,
                     batches[i].block_sizes) for i in busy]
        _LOG.debug("fanning %d signature pairs over %d shards onto %d %s "
                   "workers", total, len(busy), self._backend.n_workers,
                   self._backend.name)
        for i, result in zip(busy, self._backend.map(_score_pairs_task,
                                                     payloads, chunksize=1)):
            scores[i] = result
        return scores

    def _scatter_max_rows(self, best: np.ndarray,
                          batches: Sequence[CandidateBatch],
                          shard_scores: Sequence[np.ndarray]) -> None:
        """Fold single-query shard scores into the global best array."""

        for shard_idx, (batch, scores) in enumerate(zip(batches,
                                                        shard_scores)):
            gmap = self._global_map[shard_idx]
            for _ft, (pair_queries, pair_members,
                      pair_slots) in batch.scatter.items():
                if not len(pair_queries):
                    continue
                np.maximum.at(best, gmap[pair_members], scores[pair_slots])
            for _ft, (_vec_queries, vec_members,
                      vec_scores) in batch.vector.items():
                if len(vec_members):
                    np.maximum.at(best, gmap[vec_members], vec_scores)

    def _iter_surviving_entries(
            self) -> Iterator[tuple[str, str, dict[int, list]]]:
        """``(sample_id, class_name, entries_by_type)`` per survivor."""

        self._refresh()
        shard_sigs = [{ft: shard.member_signatures(ft)
                       for ft in self._feature_types}
                      for shard in self._shards]
        for member, (shard_idx, local) in enumerate(self._survivors):
            entries_by_type = {
                ft: sorted(shard_sigs[shard_idx][ft].get(local, {}).items())
                for ft in self._feature_types}
            yield (self._surv_ids[member], self._surv_classes[member],
                   entries_by_type)

    def _check_feature_type(self, feature_type: str) -> None:
        if feature_type not in self._feature_types:
            raise ValidationError(
                f"unknown feature type {feature_type!r}; this index holds "
                f"{list(self._feature_types)}")


def _iter_single_index_entries(index: SimilarityIndex
                               ) -> Iterator[tuple[str, str, dict]]:
    """Member entries of a plain index, in insertion order."""

    sigs = {ft: index.member_signatures(ft) for ft in index.feature_types}
    sample_ids = index.sample_ids
    class_names = index.class_names
    for member in range(index.n_members):
        entries_by_type = {ft: sorted(sigs[ft].get(member, {}).items())
                           for ft in index.feature_types}
        yield sample_ids[member], class_names[member], entries_by_type
