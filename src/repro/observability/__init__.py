"""End-to-end request observability for the serving tier.

Three layers, each independently testable:

* :mod:`repro.observability.trace` — request ids, contextvar-carried
  monotonic-clock spans, bounded trace rings and the per-stage
  histogram feed (``GET /debug/trace``);
* :mod:`repro.observability.promtext` — Prometheus text exposition
  (format 0.0.4) for the metrics registry plus the minimal parser the
  test suite and CI validate the endpoint with
  (``GET /metrics?format=prometheus``);
* :mod:`repro.observability.profiler` — on-demand cProfile windows
  over the coalescer workers (``GET /debug/profile?seconds=N``).
"""

from .profiler import ProfilerBusyError, WorkerProfiler
from .promtext import parse_prometheus, render_prometheus
from .trace import (
    REQUEST_ID_HEADER,
    RequestTrace,
    Span,
    SpanCollector,
    Tracer,
    activate,
    current_sink,
    deactivate,
    new_request_id,
    record_shipped_spans,
    span,
)

__all__ = [
    "ProfilerBusyError",
    "WorkerProfiler",
    "parse_prometheus",
    "render_prometheus",
    "REQUEST_ID_HEADER",
    "RequestTrace",
    "Span",
    "SpanCollector",
    "Tracer",
    "activate",
    "current_sink",
    "deactivate",
    "new_request_id",
    "record_shipped_spans",
    "span",
]
