"""Prometheus text exposition (format 0.0.4) for the metrics registry.

``GET /metrics`` keeps its JSON snapshot (scripts and the test suite
depend on that shape), but a real scrape pipeline wants the Prometheus
text format: ``# TYPE`` headers, one sample per line, histograms as
cumulative ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``.
:func:`render_prometheus` produces it from
:meth:`MetricsRegistry.collect`, whose per-instrument states are read
under a single lock hold each — a scrape never sees a histogram whose
bucket total disagrees with its ``_count``.

:func:`parse_prometheus` is the minimal inverse used by the test suite
and CI to validate the endpoint's output: it checks line shape, label
quoting, ``# TYPE`` consistency, bucket monotonicity and the
``_bucket``/``_sum``/``_count`` triplet, returning the samples it
parsed.  It is a format checker, not a full client.
"""

from __future__ import annotations

import math
import re

from ..exceptions import ValidationError

__all__ = ["render_prometheus", "parse_prometheus", "CONTENT_TYPE"]

#: The scrape Content-Type advertised for exposition format 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$")


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(labels: dict) -> str:
    """``{a="x",b="y"}`` with empty-valued labels dropped; "" if none."""

    pairs = [f'{name}="{_escape_label(value)}"'
             for name, value in labels.items() if str(value) != ""]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _merge_labels(labels: dict, **extra) -> str:
    merged = dict(labels)
    merged.update(extra)
    return _render_labels(merged)


def render_prometheus(registry) -> str:
    """The whole registry in exposition format 0.0.4 (trailing \\n)."""

    lines: list[str] = []
    for name, kind, series in registry.collect():
        if not _NAME_RE.match(name):        # pragma: no cover — registry
            continue                        # names are code-controlled
        lines.append(f"# TYPE {name} {kind}")
        for labels, state in series:
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_render_labels(labels)} "
                             f"{_format_value(state)}")
                continue
            # Histogram: cumulative buckets, then _sum and _count.
            cumulative = 0
            for bound, bucket_count in zip(
                    list(state["bounds"]) + [math.inf], state["counts"]):
                cumulative += bucket_count
                le = "+Inf" if math.isinf(bound) else _format_value(bound)
                lines.append(f"{name}_bucket{_merge_labels(labels, le=le)} "
                             f"{cumulative}")
            lines.append(f"{name}_sum{_render_labels(labels)} "
                         f"{_format_value(state['sum'])}")
            lines.append(f"{name}_count{_render_labels(labels)} "
                         f"{state['count']}")
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------ parse
def _parse_labels(raw: str) -> dict:
    labels: dict[str, str] = {}
    remainder = raw.strip()
    while remainder:
        match = _LABEL_RE.match(remainder)
        if match is None:
            raise ValidationError(f"malformed label pair near {remainder!r}")
        name, value = match.group(1), match.group(2)
        if name in labels:
            raise ValidationError(f"duplicate label {name!r}")
        labels[name] = (value.replace("\\n", "\n").replace('\\"', '"')
                        .replace("\\\\", "\\"))
        remainder = remainder[match.end():]
        if remainder.startswith(","):
            remainder = remainder[1:]
        elif remainder:
            raise ValidationError(f"expected ',' between labels, got "
                                  f"{remainder!r}")
    return labels


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError as exc:
        raise ValidationError(f"unparseable sample value {raw!r}") from exc


def parse_prometheus(text: str) -> dict:
    """Validate exposition text; ``{family: {"type", "samples"}}``.

    ``samples`` is a list of ``(sample_name, labels, value)``.  Raises
    :class:`ValidationError` on malformed lines, samples without a
    preceding ``# TYPE``, non-monotonic histogram buckets, or
    histograms missing their ``_sum``/``_count``/``+Inf`` samples.
    """

    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValidationError(
                        f"line {lineno}: malformed TYPE line {line!r}")
                _, _, name, kind = parts
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    raise ValidationError(
                        f"line {lineno}: unknown metric type {kind!r}")
                if name in types:
                    raise ValidationError(
                        f"line {lineno}: duplicate TYPE for {name!r}")
                types[name] = kind
                families[name] = {"type": kind, "samples": []}
            continue                       # HELP and comments pass through
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValidationError(f"line {lineno}: malformed sample "
                                  f"{line!r}")
        sample_name = match.group(1)
        labels = _parse_labels(match.group(3) or "")
        value = _parse_value(match.group(4))
        family = sample_name
        if family not in types:
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix) and family[:-len(suffix)] in types:
                    family = family[:-len(suffix)]
                    break
        if family not in types:
            raise ValidationError(
                f"line {lineno}: sample {sample_name!r} has no # TYPE")
        kind = types[family]
        if (kind == "histogram" and sample_name == family + "_bucket"
                and "le" not in labels):
            raise ValidationError(
                f"line {lineno}: histogram bucket without an le label")
        families[family]["samples"].append((sample_name, labels, value))
    _check_histograms(families)
    return families


def _check_histograms(families: dict) -> None:
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        series: dict[tuple, list] = {}
        have_sum: set[tuple] = set()
        have_count: dict[tuple, float] = {}
        for sample_name, labels, value in family["samples"]:
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            if sample_name == name + "_bucket":
                series.setdefault(key, []).append(
                    (_parse_value(labels["le"]), value))
            elif sample_name == name + "_sum":
                have_sum.add(key)
            elif sample_name == name + "_count":
                have_count[key] = value
        if not series:
            raise ValidationError(f"histogram {name!r} has no buckets")
        for key, buckets in series.items():
            if key not in have_sum or key not in have_count:
                raise ValidationError(
                    f"histogram {name!r} series {key!r} is missing its "
                    f"_sum or _count sample")
            buckets.sort(key=lambda pair: pair[0])
            if not math.isinf(buckets[-1][0]):
                raise ValidationError(
                    f"histogram {name!r} series {key!r} has no +Inf bucket")
            values = [count for _, count in buckets]
            if any(b > a for a, b in zip(values[1:], values)):
                raise ValidationError(
                    f"histogram {name!r} series {key!r} buckets are not "
                    f"cumulative")
            if values[-1] != have_count[key]:
                raise ValidationError(
                    f"histogram {name!r} series {key!r}: +Inf bucket "
                    f"({values[-1]}) disagrees with _count "
                    f"({have_count[key]})")
