"""Request tracing: ids, monotonic spans and bounded trace rings.

The serving tier (PRs 5-9) can tell *that* a request was slow — the
latency histogram's p99 moves — but not *where* the time went: queue
wait, candidate generation, DP scoring, forest predict, worker
dispatch or WAL fsync.  This module is the missing attribution layer:

* every request gets a server-edge **request id** (returned as the
  ``X-Request-Id`` response header, stamped into decision-log lines
  and ingest acks) so one slow client call can be correlated with its
  server-side trace and audit line;
* sampled requests carry a :class:`RequestTrace` through the serving
  path via a :mod:`contextvars` variable — instrumented stages wrap
  themselves in ``with span("dp_scoring"):`` and never need the trace
  threaded through their signatures;
* finished traces land in bounded ring buffers (recent + slow) served
  by ``GET /debug/trace`` and feed a labeled per-stage histogram in
  the :class:`~repro.serving.metrics.MetricsRegistry`.

Cost when off: sampling a request out (or running outside a server)
leaves the context variable unset, and :func:`span` then returns a
shared no-op context manager — one contextvar read and one function
call per instrumented stage, no allocation, no clock read.

**Span taxonomy.**  Top-level stages partition a request's wall time
(``queue_wait``, ``batch_assembly``, ``extract_features``,
``candidate_gen``, ``dp_scoring``, ``forest_predict``,
``worker_dispatch``, ``ingest_apply``, ``wal_fsync``, ``serialize``,
``decision_log``, ``parse``); *detail* spans carrying a ``shard=`` or
``worker=`` label attribute the same time at finer grain (per index
shard, per scoring-worker pid) and are therefore excluded from the
per-trace ``stages`` rollup so the rollup still sums to ≈ wall time.

**Process boundaries.**  ``perf_counter`` readings are not comparable
across processes, so a scoring worker records spans against its own
clock and ships ``(name, offset, duration, meta)`` tuples back inside
the batch result payload; the parent re-bases them onto its dispatch
timestamp with :func:`record_shipped_spans` (see
:mod:`repro.serving.workers`).

**Batches.**  A coalesced batch does one shared model pass for many
requests, so the coalescer records batch-stage spans into one
:class:`SpanCollector` and copies them into every member request's
trace — each member *did* wait for the whole batch, so the shared
durations are the honest per-request attribution.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Iterable, Sequence

from ..logging_utils import get_logger

__all__ = [
    "REQUEST_ID_HEADER",
    "Span",
    "RequestTrace",
    "SpanCollector",
    "Tracer",
    "activate",
    "current_sink",
    "deactivate",
    "new_request_id",
    "record_shipped_spans",
    "span",
]

_LOG = get_logger("observability.trace")

#: Response header carrying the server-edge request id.
REQUEST_ID_HEADER = "X-Request-Id"

#: Meta keys that mark a span as attribution *detail* (a finer-grained
#: view of time already covered by a top-level stage span).
DETAIL_META_KEYS = frozenset({"shard", "worker"})

#: Default ring sizes for ``GET /debug/trace``.
DEFAULT_RING_SIZE = 128
DEFAULT_SLOW_RING_SIZE = 32


def new_request_id() -> str:
    """A 16-hex-char request id, unique enough to grep a log by."""

    return os.urandom(8).hex()


class Span:
    """One timed stage: name, absolute start, duration, optional meta."""

    __slots__ = ("name", "start", "duration", "meta")

    def __init__(self, name: str, start: float, duration: float,
                 meta: dict | None = None) -> None:
        self.name = name
        self.start = start
        self.duration = duration
        self.meta = meta

    @property
    def is_detail(self) -> bool:
        return bool(self.meta) and not DETAIL_META_KEYS.isdisjoint(self.meta)

    def as_dict(self, base: float) -> dict:
        payload = {"name": self.name,
                   "offset_ms": round((self.start - base) * 1000.0, 3),
                   "ms": round(self.duration * 1000.0, 3)}
        if self.meta:
            payload.update(self.meta)
        return payload


# ------------------------------------------------------------------ sink
# The active span sink for the current thread/context.  ``None`` (the
# default) means tracing is off for this request — span() no-ops.
_SINK: ContextVar["SpanCollector | RequestTrace | None"] = ContextVar(
    "repro_trace_sink", default=None)


def current_sink():
    """The span sink active in this context, or None."""

    return _SINK.get()


def activate(sink):
    """Install ``sink`` as the active span sink; returns a reset token."""

    return _SINK.set(sink)


def deactivate(token) -> None:
    """Restore the sink that was active before :func:`activate`."""

    _SINK.reset(token)


class _NoopSpan:
    """Shared do-nothing context manager for unsampled requests."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    __slots__ = ("_sink", "_name", "_meta", "_start")

    def __init__(self, sink, name: str, meta: dict | None) -> None:
        self._sink = sink
        self._name = name
        self._meta = meta

    def __enter__(self):
        self._start = time.perf_counter()
        return None

    def __exit__(self, *exc):
        self._sink.add(self._name, self._start,
                       time.perf_counter() - self._start, self._meta)
        return False


def span(name: str, **meta):
    """Time a stage into the active sink (no-op when none is active).

    ``with span("dp_scoring"):`` at a call site costs one contextvar
    read when tracing is off.  Keyword arguments become span meta;
    ``shard=``/``worker=`` mark the span as attribution detail.
    """

    sink = _SINK.get()
    if sink is None:
        return NOOP_SPAN
    return _LiveSpan(sink, name, meta or None)


def record_shipped_spans(shipped: Iterable[Sequence], base: float,
                         **extra_meta) -> None:
    """Re-base spans shipped from another process into the active sink.

    ``shipped`` holds ``(name, offset_seconds, duration_seconds, meta)``
    tuples recorded against the *remote* process's clock, offsets
    relative to its batch start; ``base`` is this process's
    ``perf_counter`` reading at dispatch.  ``extra_meta`` (typically
    ``worker=pid``) is merged into every span, which also marks them
    as detail spans so they do not double-count against the parent's
    ``worker_dispatch`` stage.
    """

    sink = _SINK.get()
    if sink is None:
        return
    for name, offset, duration, meta in shipped:
        merged = dict(meta) if meta else {}
        merged.update(extra_meta)
        sink.add(str(name), base + float(offset), float(duration),
                 merged or None)


# ----------------------------------------------------------------- sinks
class SpanCollector:
    """A bare list of spans — the batch-level and worker-side sink.

    Appends are GIL-atomic; each collector is only ever written from
    the single thread that activated it.
    """

    __slots__ = ("spans", "start")

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.start = time.perf_counter()

    def add(self, name: str, start: float, duration: float,
            meta: dict | None = None) -> None:
        self.spans.append(Span(name, start, duration, meta))

    def shipped(self) -> list[tuple]:
        """Spans as process-portable tuples, offsets from ``self.start``."""

        return [(s.name, s.start - self.start, s.duration, s.meta)
                for s in self.spans]


class RequestTrace:
    """Everything recorded about one sampled request.

    Span appends come from the handler thread (parse/serialize) and
    the coalescer worker that ran the request's batch; the two never
    overlap — the handler blocks on its future while the batch runs,
    and the coalescer copies batch spans in *before* resolving the
    future — so a plain list suffices.
    """

    __slots__ = ("request_id", "kind", "start", "unix_time", "spans",
                 "wall", "items", "status")

    def __init__(self, request_id: str, kind: str) -> None:
        self.request_id = request_id
        self.kind = kind
        self.start = time.perf_counter()
        self.unix_time = time.time()
        self.spans: list[Span] = []
        self.wall: float | None = None           # set by Tracer.finish
        self.items = 0
        self.status: int | None = None

    def add(self, name: str, start: float, duration: float,
            meta: dict | None = None) -> None:
        self.spans.append(Span(name, start, duration, meta))

    def extend(self, spans: Iterable[Span]) -> None:
        self.spans.extend(spans)

    def stage_totals(self) -> dict[str, float]:
        """Seconds per top-level stage (detail spans excluded)."""

        totals: dict[str, float] = {}
        for item in self.spans:
            if item.is_detail:
                continue
            totals[item.name] = totals.get(item.name, 0.0) + item.duration
        return totals

    def as_dict(self) -> dict:
        wall = (self.wall if self.wall is not None
                else time.perf_counter() - self.start)
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "status": self.status,
            "items": self.items,
            "unix_time": round(self.unix_time, 3),
            "wall_ms": round(wall * 1000.0, 3),
            "stages": {name: round(seconds * 1000.0, 3)
                       for name, seconds in
                       sorted(self.stage_totals().items())},
            "spans": [item.as_dict(self.start) for item in self.spans],
        }


# ---------------------------------------------------------------- tracer
class Tracer:
    """Sampling, ring buffers and per-stage histograms for one server.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry`; when
        given, finished traces feed a ``stage_latency_seconds``
        histogram family labeled ``(stage, shard, worker)`` plus
        ``traces_sampled_total`` / ``slow_requests_total`` counters.
    sample_rate:
        Fraction of requests traced, in ``[0, 1]``.  ``0`` disables
        tracing entirely (request ids are still issued); ``1`` (the
        default) traces everything.
    slow_request_ms:
        Traces at least this slow are additionally kept in the slow
        ring and logged as a structured slow-request line with the
        full stage breakdown.  ``0`` disables slow capture.
    """

    def __init__(self, metrics=None, *, sample_rate: float = 1.0,
                 slow_request_ms: float = 1000.0,
                 ring_size: int = DEFAULT_RING_SIZE,
                 slow_ring_size: int = DEFAULT_SLOW_RING_SIZE) -> None:
        if not 0.0 <= float(sample_rate) <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        if slow_request_ms < 0:
            raise ValueError("slow_request_ms must be >= 0")
        if ring_size < 1 or slow_ring_size < 1:
            raise ValueError("ring sizes must be >= 1")
        self.sample_rate = float(sample_rate)
        self.slow_request_ms = float(slow_request_ms)
        self.ring_size = int(ring_size)
        self._recent: deque[dict] = deque(maxlen=int(ring_size))
        self._slow: deque[dict] = deque(maxlen=int(slow_ring_size))
        self._lock = threading.Lock()
        self._random = random.Random()
        self._stage_hist = None
        self._sampled = None
        self._slow_counter = None
        if metrics is not None:
            self._stage_hist = metrics.histogram(
                "stage_latency_seconds",
                labels=("stage", "shard", "worker"))
            self._sampled = metrics.counter("traces_sampled_total")
            self._slow_counter = metrics.counter("slow_requests_total")

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    # -------------------------------------------------------------- begin
    def begin(self, request_id: str, kind: str) -> RequestTrace | None:
        """A new trace for this request, or None when sampled out."""

        if self.sample_rate <= 0.0:
            return None
        if (self.sample_rate < 1.0 and
                self._random.random() >= self.sample_rate):
            return None
        return RequestTrace(request_id, kind)

    # ------------------------------------------------------------- finish
    def finish(self, trace: RequestTrace | None, *, items: int = 0,
               status: int | None = None) -> None:
        """Seal a trace: stamp wall time, feed histograms and rings."""

        if trace is None:
            return
        trace.wall = time.perf_counter() - trace.start
        trace.items = int(items)
        trace.status = status
        if self._stage_hist is not None:
            for item in trace.spans:
                meta = item.meta or {}
                self._stage_hist.labels(
                    stage=item.name,
                    shard=str(meta.get("shard", "")),
                    worker=str(meta.get("worker", "")),
                ).observe(item.duration)
        if self._sampled is not None:
            self._sampled.inc()
        payload = trace.as_dict()
        slow = (self.slow_request_ms > 0 and
                payload["wall_ms"] >= self.slow_request_ms)
        with self._lock:
            self._recent.append(payload)
            if slow:
                self._slow.append(payload)
        if slow:
            if self._slow_counter is not None:
                self._slow_counter.inc()
            _LOG.warning("slow request %s", json.dumps(
                payload, sort_keys=True, default=str))

    # ------------------------------------------------------------ payloads
    def config_payload(self) -> dict:
        """The ``tracing`` block of ``GET /healthz``."""

        return {
            "enabled": self.enabled,
            "sample_rate": self.sample_rate,
            "slow_request_ms": self.slow_request_ms,
            "ring_size": self.ring_size,
        }

    def trace_payload(self, limit: int | None = None) -> dict:
        """The body of ``GET /debug/trace``."""

        with self._lock:
            recent = list(self._recent)
            slow = list(self._slow)
        if limit is not None and limit >= 0:
            recent = recent[-limit:]
            slow = slow[-limit:]
        return {"config": self.config_payload(),
                "recent": recent, "slow": slow}
