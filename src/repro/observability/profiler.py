"""On-demand cProfile over the coalescer worker threads.

``GET /debug/profile?seconds=N`` answers the question ``/debug/trace``
cannot: *why* is a stage slow — which Python frames is the scoring
pass actually burning its time in?  The handler opens a profiling
window; for its duration every coalescer worker wraps each batch it
runs in a per-thread :class:`cProfile.Profile` (cProfile instruments
one thread only, so each worker thread needs its own instance), and
when the window closes the per-thread profiles are merged with
:mod:`pstats` and rendered as the plain-text response.

The hook the batcher calls is a single attribute read when no window
is open — profiling costs nothing until an operator asks for it — and
the whole endpoint is refused unless the server was started with
``--enable-profiling`` (profiles leak code structure and hurt
throughput while open; see the README's security caveats).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import threading
import time

from ..exceptions import ServingError

__all__ = ["ProfilerBusyError", "WorkerProfiler"]

#: Upper bound on one profiling window (seconds).
MAX_PROFILE_SECONDS = 60.0

#: How long closing a window waits for in-flight profiled batches.
DRAIN_TIMEOUT_SECONDS = 10.0


class ProfilerBusyError(ServingError):
    """A profiling window is already open (one at a time)."""


class _NoopProfile:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NOOP = _NoopProfile()


class _Session:
    """One profiling window: per-thread profiles plus a drain latch."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._profiles: list[cProfile.Profile] = []
        self._active = 0
        self._idle = threading.Condition(self._lock)
        self.batches = 0

    def _thread_profile(self) -> cProfile.Profile:
        profile = getattr(self._local, "profile", None)
        if profile is None:
            profile = self._local.profile = cProfile.Profile()
            with self._lock:
                self._profiles.append(profile)
        return profile

    def record(self):
        return _SessionRecord(self)

    def render(self, sort: str, limit: int) -> str:
        # Wait (bounded) for batches that started inside the window to
        # disable their profiles — pstats cannot snapshot an enabled
        # profile.
        deadline = time.monotonic() + DRAIN_TIMEOUT_SECONDS
        with self._idle:
            while self._active and time.monotonic() < deadline:
                self._idle.wait(timeout=0.1)
            profiles = list(self._profiles)
            batches = self.batches
        if not profiles:
            return ("no batches ran during the profiling window; "
                    "send traffic while profiling\n")
        buffer = io.StringIO()
        stats = pstats.Stats(profiles[0], stream=buffer)
        for profile in profiles[1:]:
            stats.add(profile)
        stats.sort_stats(sort)
        buffer.write(f"profiled {batches} batch(es) across "
                     f"{len(profiles)} worker thread(s)\n")
        stats.print_stats(limit)
        return buffer.getvalue()


class _SessionRecord:
    __slots__ = ("_session", "_profile")

    def __init__(self, session: _Session) -> None:
        self._session = session

    def __enter__(self):
        self._profile = self._session._thread_profile()
        with self._session._idle:
            self._session._active += 1
            self._session.batches += 1
        self._profile.enable()
        return None

    def __exit__(self, *exc):
        self._profile.disable()
        with self._session._idle:
            self._session._active -= 1
            self._session._idle.notify_all()
        return False


class WorkerProfiler:
    """The coalescer-facing hook and the ``/debug/profile`` driver."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._session: _Session | None = None

    def profile(self):
        """Context manager wrapping one batch; no-op between windows."""

        session = self._session
        if session is None:
            return _NOOP
        return session.record()

    def run(self, seconds: float, *, sort: str = "cumulative",
            limit: int = 40) -> str:
        """Open a window for ``seconds``, then render merged pstats."""

        seconds = float(seconds)
        if not 0 < seconds <= MAX_PROFILE_SECONDS:
            raise ValueError(
                f"seconds must be within (0, {MAX_PROFILE_SECONDS:g}]")
        with self._lock:
            if self._session is not None:
                raise ProfilerBusyError(
                    "a profiling window is already open")
            session = self._session = _Session()
        try:
            time.sleep(seconds)
        finally:
            self._session = None
        return session.render(sort, limit)
