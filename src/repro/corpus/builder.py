"""Materialise the synthetic software tree on disk.

:class:`CorpusBuilder` turns the catalogue into a directory tree with
the exact layout the paper scrapes::

    <root>/
      OpenMalaria/
        46.0-iomkl-2019.01/openmalaria
        43.1-foss-2021a/openmalaria
        ...
      Velvet/
        1.2.10-GCC-10.3.0-mt-kmer_191/velveth
        1.2.10-GCC-10.3.0-mt-kmer_191/velvetg
        ...

Every file is a structurally valid ELF64 executable produced by
:mod:`repro.binfmt.writer` from the class's application model and the
version mutation model.  Generation is deterministic in the corpus
seed.  Samples can also be produced purely in memory (for tests and for
pipelines that do not need an on-disk tree).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..binfmt.structs import SymbolSpec
from ..binfmt.writer import ElfWriter
from ..config import ExperimentConfig, default_config
from ..exceptions import CorpusError
from ..logging_utils import get_logger
from .appmodel import ApplicationModel, stable_seed
from .catalog import ApplicationCatalog, ApplicationClassSpec, default_catalog
from .dataset import CorpusDataset, SampleRecord
from .mutation import MaterializedSample, MutationConfig, VersionMutator

__all__ = ["GeneratedSample", "CorpusBuilder"]

_LOG = get_logger("corpus.builder")


@dataclass(frozen=True)
class GeneratedSample:
    """A sample produced by the builder (content plus labels)."""

    class_name: str
    version: str
    executable: str
    data: bytes
    relative_path: str

    def record(self, root: str | os.PathLike | None = None,
               sample_id: str | None = None) -> SampleRecord:
        path = str(Path(root) / self.relative_path) if root is not None \
            else self.relative_path
        return SampleRecord(
            sample_id=sample_id or self.relative_path,
            path=path,
            class_name=self.class_name,
            version=self.version,
            executable=self.executable,
            file_size=len(self.data),
        )


class CorpusBuilder:
    """Generate synthetic application samples from a catalogue.

    Parameters
    ----------
    catalog:
        Application catalogue (defaults to the full 92-class one).
    config:
        Experiment configuration; its scale preset controls how many
        classes/samples are generated and how large binaries are.
    mutation:
        Base mutation rates (scaled per class by ``version_drift``).
    """

    def __init__(self, catalog: ApplicationCatalog | None = None,
                 config: ExperimentConfig | None = None,
                 mutation: MutationConfig | None = None) -> None:
        self.config = config or default_config()
        full_catalog = catalog or default_catalog()
        self.catalog = full_catalog.subset(self.config.scale.max_classes)
        self.mutation = mutation or MutationConfig()
        self.seed = self.config.seed

    # ------------------------------------------------------------ planning
    def plan_class(self, spec: ApplicationClassSpec) -> tuple[list[str], int]:
        """Decide version names and executables-per-version for a class.

        Returns ``(version_names, n_executables)`` such that
        ``len(version_names) * n_executables`` approximates the class's
        target sample count (subject to the scale preset's per-class
        cap) while honouring the paper's "at least 3 versions" rule and
        any explicit versions/executables in the catalogue.
        """

        target = spec.total_samples()
        cap = self.config.scale.max_samples_per_class
        if cap is not None:
            target = min(target, max(3, cap))

        model = self.model_for(spec)
        mutator = VersionMutator(model, self.mutation)

        if spec.executables and spec.versions:
            versions = list(spec.versions)
            return versions, len(spec.executables)

        if spec.executables:
            n_exec = len(spec.executables)
            n_versions = max(3, math.ceil(target / n_exec))
            return mutator.version_names(n_versions), n_exec

        rng = np.random.default_rng(stable_seed(self.seed, "plan", spec.name))
        if target <= 4:
            n_versions = 3
        elif target <= 12:
            n_versions = int(rng.integers(3, 5))
        elif target <= 60:
            n_versions = int(rng.integers(3, 7))
        else:
            n_versions = int(rng.integers(4, 9))
        n_exec = max(1, int(round(target / n_versions)))
        return mutator.version_names(n_versions), n_exec

    def model_for(self, spec: ApplicationClassSpec) -> ApplicationModel:
        """The application model of a class at this corpus scale."""

        return ApplicationModel(spec, self.seed,
                                binary_size_range=self.config.scale.binary_size_range)

    # ---------------------------------------------------------- generation
    def iter_samples(self, class_names: Iterable[str] | None = None
                     ) -> Iterator[GeneratedSample]:
        """Yield generated samples class by class, version by version."""

        wanted = set(class_names) if class_names is not None else None
        for spec in self.catalog:
            if wanted is not None and spec.name not in wanted:
                continue
            yield from self._generate_class(spec)

    def build_samples(self, class_names: Iterable[str] | None = None
                      ) -> list[GeneratedSample]:
        """Generate all samples in memory."""

        return list(self.iter_samples(class_names))

    def materialize_tree(self, root: str | os.PathLike,
                         class_names: Iterable[str] | None = None
                         ) -> CorpusDataset:
        """Write the software tree below ``root`` and return its dataset."""

        root_path = Path(root)
        root_path.mkdir(parents=True, exist_ok=True)
        records: list[SampleRecord] = []
        count = 0
        for sample in self.iter_samples(class_names):
            target = root_path / sample.relative_path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(sample.data)
            os.chmod(target, 0o755)
            records.append(sample.record(root=root_path))
            count += 1
            if count % 500 == 0:
                _LOG.info("generated %d samples...", count)
        if not records:
            raise CorpusError("corpus generation produced no samples")
        _LOG.info("generated %d samples under %s", len(records), root_path)
        return CorpusDataset(records)

    # ----------------------------------------------------------- internals
    def _generate_class(self, spec: ApplicationClassSpec
                        ) -> Iterator[GeneratedSample]:
        model = self.model_for(spec)
        mutator = VersionMutator(model, self.mutation)
        versions, n_exec = self.plan_class(spec)
        exe_names = model.executable_names(n_exec)
        exe_models = [model.executable_model(name, idx)
                      for idx, name in enumerate(exe_names)]

        for version_index, version in enumerate(versions):
            effective_index = version_index + spec.version_index_offset
            for exe_model in exe_models:
                materialized = mutator.materialize(exe_model, version,
                                                   effective_index)
                data = self._build_elf(materialized)
                relative = str(Path(spec.name) / version / exe_model.name)
                yield GeneratedSample(
                    class_name=spec.name,
                    version=version,
                    executable=exe_model.name,
                    data=data,
                    relative_path=relative,
                )

    @staticmethod
    def _build_elf(sample: MaterializedSample) -> bytes:
        symbols = [SymbolSpec(name, kind="func") for name in sample.functions]
        symbols += [SymbolSpec(name, kind="object") for name in sample.objects]
        writer = ElfWriter()
        writer.set_text(sample.code)
        writer.set_rodata(sample.strings)
        writer.set_comment(sample.comment)
        writer.set_needed_libraries(sample.needed_libraries)
        writer.add_symbols(symbols)
        return writer.build()
