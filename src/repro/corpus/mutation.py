"""Version mutation model.

Real application versions differ from one another in ways that affect
the three fuzzy-hash features very unevenly (this is exactly the
paper's Table 5 observation):

* **raw content** changes with *every* recompilation — different
  compiler versions, flags and code changes reshuffle most of
  ``.text`` — so the ``ssdeep-file`` feature is the least stable;
* **embedded strings** change when messages, options or version
  banners change — moderately stable;
* **global symbol names** only change when code is refactored — the
  most stable feature.

:class:`VersionMutator` applies these three kinds of drift to an
:class:`~repro.corpus.appmodel.ExecutableModel`, producing the concrete
content (symbols, strings, code bytes, toolchain comment) from which
the ELF writer builds one sample.  All drift is deterministic in the
corpus seed, the class identity, the executable name and the version
index.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from .appmodel import ApplicationModel, ExecutableModel, stable_seed
from .lexicon import COMPILER_COMMENTS, TOOLCHAINS

__all__ = ["MutationConfig", "MaterializedSample", "VersionMutator"]


@dataclass(frozen=True)
class MutationConfig:
    """Per-version drift rates (before scaling by the class's
    ``version_drift`` factor).

    The defaults were calibrated so that the resulting corpus shows the
    qualitative behaviour reported in the paper: high symbol-hash
    similarity within a class, moderate strings similarity, low-to-
    moderate raw-content similarity, and near-zero similarity across
    classes.
    """

    code_change_rate: float = 0.35
    string_change_rate: float = 0.08
    symbol_rename_rate: float = 0.03
    symbol_add_rate: float = 0.03
    symbol_remove_rate: float = 0.02
    toolchain_change_prob: float = 0.8
    #: Probability that a version bumps the major version (bigger drift).
    major_bump_prob: float = 0.2

    def scaled(self, drift: float) -> "MutationConfig":
        """Scale the drift rates by a class-specific factor."""

        def cap(x: float, hi: float = 0.95) -> float:
            return float(min(max(x, 0.0), hi))

        return MutationConfig(
            code_change_rate=cap(self.code_change_rate * drift),
            string_change_rate=cap(self.string_change_rate * drift),
            symbol_rename_rate=cap(self.symbol_rename_rate * drift, 0.5),
            symbol_add_rate=cap(self.symbol_add_rate * drift, 0.5),
            symbol_remove_rate=cap(self.symbol_remove_rate * drift, 0.5),
            toolchain_change_prob=self.toolchain_change_prob,
            major_bump_prob=self.major_bump_prob,
        )


@dataclass
class MaterializedSample:
    """Concrete content of one sample, ready for the ELF writer."""

    class_name: str
    version: str
    executable: str
    functions: tuple[str, ...]
    objects: tuple[str, ...]
    strings: tuple[str, ...]
    code: bytes
    comment: str
    needed_libraries: tuple[str, ...] = ()


class VersionMutator:
    """Derives per-version content for the executables of one class."""

    def __init__(self, model: ApplicationModel,
                 config: MutationConfig | None = None) -> None:
        self.model = model
        base = config or MutationConfig()
        self.config = base.scaled(model.spec.version_drift)

    # ----------------------------------------------------------- versions
    def version_names(self, count: int) -> list[str]:
        """Version directory names (``<semver>-<toolchain>`` style).

        Explicit versions from the catalogue are used first (e.g. the
        Velvet and CellRanger version lists); further names follow the
        EasyBuild convention of the paper's examples.
        """

        names = list(self.model.spec.versions)
        if len(names) >= count:
            return names[:count]
        rng = np.random.default_rng(
            stable_seed(self.model.corpus_seed, "versions", self.model.spec.name))
        major = int(rng.integers(1, 8))
        minor = int(rng.integers(0, 10))
        patch = 0
        while len(names) < count:
            if rng.random() < self.config.major_bump_prob:
                major += 1
                minor = 0
                patch = 0
            elif rng.random() < 0.5:
                minor += 1
                patch = 0
            else:
                patch += 1
            toolchain = str(rng.choice(TOOLCHAINS))
            if rng.random() < 0.3:
                version = f"{major}.{minor}-{toolchain}"
            else:
                version = f"{major}.{minor}.{patch}-{toolchain}"
            if version in names:
                version = f"{version}-r{len(names)}"
            names.append(version)
        return names

    # ------------------------------------------------------------ samples
    def materialize(self, exe: ExecutableModel, version: str,
                    version_index: int) -> MaterializedSample:
        """Produce the concrete content of one (executable, version)."""

        cfg = self.config
        seed_parts = (self.model.corpus_seed, "sample", self.model.identity,
                      exe.name, version_index)
        rng = np.random.default_rng(stable_seed(*seed_parts))

        functions = self._mutate_symbols(rng, exe.functions, version_index)
        objects = self._mutate_symbols(rng, exe.objects, version_index,
                                       rename_scale=0.5)
        strings = self._mutate_strings(rng, exe.strings, version)
        code = self._materialize_code(exe, version_index)
        comment = self._toolchain_comment(version, version_index)
        return MaterializedSample(
            class_name=self.model.spec.name,
            version=version,
            executable=exe.name,
            functions=tuple(functions),
            objects=tuple(objects),
            strings=tuple(strings),
            code=code,
            comment=comment,
            needed_libraries=self._needed_libraries(version),
        )

    # ------------------------------------------------------------ symbols
    def _mutate_symbols(self, rng: np.random.Generator,
                        symbols: Sequence[str], version_index: int,
                        rename_scale: float = 1.0) -> list[str]:
        """Cumulative symbol drift up to ``version_index``.

        Drift is applied per version step so that version ``k`` differs
        from version ``k-1`` by roughly the configured rates, and from
        version 0 by correspondingly more.
        """

        cfg = self.config
        current = list(symbols)
        for step in range(version_index):
            step_rng = np.random.default_rng(
                stable_seed(self.model.corpus_seed, "symstep",
                            self.model.identity, step))
            survivors: list[str] = []
            for name in current:
                r = step_rng.random()
                if r < cfg.symbol_remove_rate:
                    continue
                if r < cfg.symbol_remove_rate + cfg.symbol_rename_rate * rename_scale:
                    survivors.append(f"{name}_v{step + 2}")
                else:
                    survivors.append(name)
            n_new = int(np.round(len(symbols) * cfg.symbol_add_rate))
            for i in range(n_new):
                survivors.append(f"{self.model.prefix}_new_feature_{step}_{i}")
            current = survivors
        return sorted(set(current))

    # ------------------------------------------------------------ strings
    def _mutate_strings(self, rng: np.random.Generator,
                        strings: Sequence[str], version: str) -> list[str]:
        cfg = self.config
        version_number = version.split("-")[0]
        rendered: list[str] = []
        for template in strings:
            text = template
            if "{" in text:
                text = text.format(
                    name=self.model.spec.name,
                    prog=self.model.prefix,
                    version=version_number,
                    year=2010 + (hash(version_number) % 14),
                )
            rendered.append(text)
        # Version-specific drift: some messages get rewritten.
        changed: list[str] = []
        for text in rendered:
            if rng.random() < cfg.string_change_rate:
                changed.append(text + " (updated)")
            else:
                changed.append(text)
        changed.append(f"{self.model.spec.name} release {version_number}")
        changed.append(f"build configuration: {version}")
        return changed

    # --------------------------------------------------------------- code
    def _materialize_code(self, exe: ExecutableModel,
                          version_index: int) -> bytes:
        """Concatenate the executable's code blocks at this version.

        Each block has an *epoch*: the number of times it has been
        rewritten up to this version.  Blocks with equal epoch produce
        identical bytes across versions (and across executables that
        share the block), so raw-content similarity decays smoothly
        with version distance at a rate set by ``code_change_rate``.
        """

        cfg = self.config
        parts: list[bytes] = []
        for block_id, block_size in zip(exe.code_block_ids, exe.code_block_sizes):
            epoch = 0
            block_rng = np.random.default_rng(
                stable_seed(self.model.corpus_seed, "blockchange", block_id))
            # Draw the change pattern once per block; count changes that
            # happened at or before this version.
            changes = block_rng.random(max(version_index, 1)) < cfg.code_change_rate
            epoch = int(np.count_nonzero(changes[:version_index]))
            content_rng = np.random.default_rng(
                stable_seed(self.model.corpus_seed, "blockbytes", block_id, epoch))
            parts.append(content_rng.bytes(block_size))
        return b"".join(parts)

    # ------------------------------------------------------------ libraries
    def _needed_libraries(self, version: str) -> tuple[str, ...]:
        """Shared-object dependencies of this version.

        The set is essentially stable across versions (that is what makes
        it a useful fingerprint), but Intel toolchains swap the BLAS
        provider, mirroring what EasyBuild toolchains do in practice.
        """

        libraries = list(self.model.shared_libraries)
        toolchain = version.split("-", 1)[1] if "-" in version else ""
        if toolchain.startswith(("iomkl", "intel")):
            libraries = ["libmkl_rt.so.2" if name.startswith("libopenblas") else name
                         for name in libraries]
        return tuple(libraries)

    # ----------------------------------------------------------- toolchain
    def _toolchain_comment(self, version: str, version_index: int) -> str:
        rng = np.random.default_rng(
            stable_seed(self.model.corpus_seed, "toolchain",
                        self.model.identity, version_index))
        family = version.split("-", 1)[1].split("-")[0] if "-" in version else "GCC"
        template = COMPILER_COMMENTS.get(family, COMPILER_COMMENTS["GCC"])
        gcc_version = f"{rng.integers(8, 13)}.{rng.integers(0, 5)}.0"
        icc_version = f"20{rng.integers(18, 23)}.{rng.integers(0, 4)}"
        return template.format(gcc_version=gcc_version, icc_version=icc_version)
