"""Sample table used by feature extraction and classification.

A :class:`CorpusDataset` is the bridge between the corpus (files on
disk, labels from directory structure) and the machine-learning
pipeline (ordered samples with string labels).  It deliberately knows
nothing about fuzzy hashes — features are attached later by
:mod:`repro.features`.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from ..exceptions import CorpusError

__all__ = ["SampleRecord", "CorpusDataset"]


@dataclass(frozen=True)
class SampleRecord:
    """One application sample (an executable file with its labels)."""

    sample_id: str
    path: str
    class_name: str
    version: str
    executable: str
    file_size: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SampleRecord":
        return cls(
            sample_id=str(payload["sample_id"]),
            path=str(payload["path"]),
            class_name=str(payload["class_name"]),
            version=str(payload["version"]),
            executable=str(payload["executable"]),
            file_size=int(payload.get("file_size", 0)),
        )


class CorpusDataset:
    """Ordered, labelled collection of :class:`SampleRecord` entries."""

    def __init__(self, records: Iterable[SampleRecord]) -> None:
        self.records: list[SampleRecord] = list(records)
        ids = [r.sample_id for r in self.records]
        if len(set(ids)) != len(ids):
            raise CorpusError("dataset contains duplicate sample ids")

    # ------------------------------------------------------------ protocol
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SampleRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> SampleRecord:
        return self.records[index]

    # ----------------------------------------------------------------- API
    @property
    def labels(self) -> list[str]:
        """Class label of each sample, in order."""

        return [r.class_name for r in self.records]

    @property
    def paths(self) -> list[str]:
        """File path of each sample, in order."""

        return [r.path for r in self.records]

    @property
    def class_names(self) -> list[str]:
        """Sorted list of distinct class names."""

        return sorted({r.class_name for r in self.records})

    def class_counts(self) -> dict[str, int]:
        """Number of samples per class, sorted by descending count."""

        counts = Counter(r.class_name for r in self.records)
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def version_counts(self) -> dict[str, int]:
        """Number of distinct versions per class."""

        versions: dict[str, set[str]] = {}
        for record in self.records:
            versions.setdefault(record.class_name, set()).add(record.version)
        return {name: len(v) for name, v in sorted(versions.items())}

    def filter(self, predicate: Callable[[SampleRecord], bool]) -> "CorpusDataset":
        """Return a new dataset containing the records matching ``predicate``."""

        return CorpusDataset(r for r in self.records if predicate(r))

    def filter_classes(self, class_names: Sequence[str]) -> "CorpusDataset":
        """Return a new dataset restricted to the given classes."""

        wanted = set(class_names)
        return self.filter(lambda r: r.class_name in wanted)

    def subset(self, indices: Sequence[int]) -> "CorpusDataset":
        """Return a new dataset with the records at ``indices`` (in order)."""

        return CorpusDataset(self.records[i] for i in indices)

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""

        counts = self.class_counts()
        total_bytes = sum(r.file_size for r in self.records)
        top = ", ".join(f"{name} ({count})" for name, count in list(counts.items())[:5])
        return (f"{len(self.records)} samples across {len(counts)} classes "
                f"({total_bytes / 1e6:.1f} MB of executables); "
                f"largest classes: {top}")

    # ----------------------------------------------------------------- I/O
    def to_json(self, path: str | os.PathLike) -> None:
        """Serialise the dataset (records only, not file contents)."""

        payload = {"records": [r.to_dict() for r in self.records]}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)

    @classmethod
    def from_json(cls, path: str | os.PathLike) -> "CorpusDataset":
        """Load a dataset previously written by :meth:`to_json`."""

        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        try:
            records = [SampleRecord.from_dict(item) for item in payload["records"]]
        except (KeyError, TypeError) as exc:
            raise CorpusError(f"invalid dataset file {path!r}") from exc
        return cls(records)
