"""Scan a software tree applying the paper's collection rules.

The paper gathers its data set from system directories "that contain
preinstalled software distributions", with the layout
``<Class>/<version>/<executable>``, and applies three rules:

1. the label of a sample is the name of its class (root) directory,
2. binaries stripped of their symbol table are skipped,
3. only classes with at least three versions are kept (so that a
   meaningful train/test split per class is possible), and optionally
   only executables present in *all* versions of a class are kept.

:class:`CorpusScanner` applies exactly these rules to any directory
tree — the synthetic one produced by
:class:`repro.corpus.builder.CorpusBuilder` or a real software stack.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from ..binfmt.reader import is_elf
from ..binfmt.symbols import is_stripped
from ..exceptions import CorpusLayoutError
from ..logging_utils import get_logger
from .dataset import CorpusDataset, SampleRecord

__all__ = ["ScanResult", "CorpusScanner"]

_LOG = get_logger("corpus.scanner")


@dataclass
class ScanResult:
    """Outcome of a corpus scan."""

    dataset: CorpusDataset
    skipped_stripped: list[str] = field(default_factory=list)
    skipped_non_elf: list[str] = field(default_factory=list)
    skipped_classes: list[str] = field(default_factory=list)
    skipped_not_in_all_versions: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (f"{len(self.dataset)} samples collected; "
                f"skipped {len(self.skipped_stripped)} stripped binaries, "
                f"{len(self.skipped_non_elf)} non-ELF files, "
                f"{len(self.skipped_classes)} classes with too few versions, "
                f"{len(self.skipped_not_in_all_versions)} executables missing "
                f"from some versions")


class CorpusScanner:
    """Walk a ``<Class>/<version>/<executable>`` tree and build a dataset.

    Parameters
    ----------
    root:
        Root directory of the software tree.
    min_versions:
        Minimum number of version sub-directories a class must have to
        be collected (the paper uses 3).
    require_in_all_versions:
        When True (the paper's rule), only executables whose file name
        appears in every version of the class are kept.
    skip_stripped:
        When True (the paper's rule), binaries without a symbol table
        are skipped.
    """

    def __init__(self, root: str | os.PathLike, *, min_versions: int = 3,
                 require_in_all_versions: bool = True,
                 skip_stripped: bool = True) -> None:
        self.root = Path(root)
        if min_versions < 1:
            raise CorpusLayoutError("min_versions must be >= 1")
        self.min_versions = int(min_versions)
        self.require_in_all_versions = bool(require_in_all_versions)
        self.skip_stripped = bool(skip_stripped)

    # ----------------------------------------------------------------- API
    def scan(self) -> ScanResult:
        """Scan the tree and return the collected dataset plus skip lists."""

        if not self.root.is_dir():
            raise CorpusLayoutError(f"corpus root {self.root} is not a directory")

        result = ScanResult(dataset=CorpusDataset([]))
        records: list[SampleRecord] = []

        for class_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            class_name = class_dir.name
            version_dirs = sorted(p for p in class_dir.iterdir() if p.is_dir())
            if len(version_dirs) < self.min_versions:
                result.skipped_classes.append(class_name)
                continue

            per_version_files: dict[str, dict[str, Path]] = {}
            for version_dir in version_dirs:
                files = {p.name: p for p in sorted(version_dir.iterdir())
                         if p.is_file()}
                per_version_files[version_dir.name] = files

            keep_names = None
            if self.require_in_all_versions:
                name_sets = [set(files) for files in per_version_files.values()]
                keep_names = set.intersection(*name_sets) if name_sets else set()

            for version, files in sorted(per_version_files.items()):
                for file_name, path in sorted(files.items()):
                    if keep_names is not None and file_name not in keep_names:
                        result.skipped_not_in_all_versions.append(str(path))
                        continue
                    record = self._collect_file(path, class_name, version, result)
                    if record is not None:
                        records.append(record)

        result.dataset = CorpusDataset(records)
        _LOG.info("%s", result.summary())
        return result

    # ----------------------------------------------------------- internals
    def _collect_file(self, path: Path, class_name: str, version: str,
                      result: ScanResult) -> SampleRecord | None:
        try:
            data = path.read_bytes()
        except OSError:
            result.skipped_non_elf.append(str(path))
            return None
        if not is_elf(data):
            result.skipped_non_elf.append(str(path))
            return None
        if self.skip_stripped and is_stripped(data):
            result.skipped_stripped.append(str(path))
            return None
        relative = path.relative_to(self.root)
        return SampleRecord(
            sample_id=str(relative),
            path=str(path),
            class_name=class_name,
            version=version,
            executable=path.name,
            file_size=len(data),
        )
