"""Vocabularies used to synthesise realistic application content.

The synthetic corpus needs function names, embedded strings and
toolchain identifiers that *look and behave* like the ones found in
real scientific software: same-domain applications share jargon,
applications linking the same libraries share symbols, and every
binary carries a sprinkling of generic C/C++ runtime symbols.  These
word lists drive :mod:`repro.corpus.appmodel`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "DOMAIN_NOUNS",
    "DOMAIN_VERBS",
    "COMMON_SUFFIXES",
    "RUNTIME_SYMBOLS",
    "SHARED_LIBRARY_SYMBOLS",
    "STRING_TEMPLATES",
    "TOOLCHAINS",
    "COMPILER_COMMENTS",
    "domain_vocabulary",
]

#: Domain-specific nouns that appear inside function names.
DOMAIN_NOUNS: Mapping[str, Sequence[str]] = {
    "genomics": (
        "read", "kmer", "contig", "scaffold", "alignment", "sequence",
        "genome", "transcript", "variant", "exon", "locus", "barcode",
        "assembly", "overlap", "index", "quality", "adapter", "coverage",
        "haplotype", "consensus", "primer", "fragment", "insert",
    ),
    "structural": (
        "residue", "atom", "torsion", "backbone", "sidechain", "helix",
        "sheet", "contact", "rotamer", "pocket", "ligand", "surface",
        "density", "model", "restraint", "rmsd", "bfactor", "occupancy",
    ),
    "chemistry": (
        "orbital", "basis", "density", "wavefunction", "gradient",
        "hamiltonian", "integral", "pseudopotential", "kpoint", "cell",
        "lattice", "exchange", "correlation", "scf", "dipole", "charge",
        "bond", "angle", "dihedral", "forcefield",
    ),
    "physics": (
        "grid", "field", "particle", "mesh", "flux", "boundary",
        "timestep", "potential", "energy", "momentum", "tensor",
        "operator", "spectrum", "mode", "wave", "domain",
    ),
    "math": (
        "matrix", "vector", "graph", "partition", "solver", "constraint",
        "objective", "gradient", "hessian", "eigenvalue", "factor",
        "sparse", "dense", "node", "edge", "cut", "bound", "simplex",
    ),
    "neuroimaging": (
        "voxel", "volume", "slice", "surface", "tract", "diffusion",
        "registration", "mask", "atlas", "parcellation", "timeseries",
        "cluster", "smoothing", "warp",
    ),
    "statistics": (
        "prior", "posterior", "likelihood", "chain", "sampler", "model",
        "parameter", "deviance", "mixture", "node", "distribution",
    ),
    "infrastructure": (
        "buffer", "message", "schema", "segment", "arena", "stream",
        "packet", "codec", "registry", "pointer", "capability",
    ),
    "epidemiology": (
        "host", "vector", "infection", "cohort", "intervention",
        "transmission", "parasite", "immunity", "population", "scenario",
    ),
}

#: Domain-specific verbs that appear inside function names.
DOMAIN_VERBS: Mapping[str, Sequence[str]] = {
    "genomics": ("align", "assemble", "map", "trim", "merge", "sort",
                 "index", "call", "phase", "count", "extract", "filter",
                 "hash", "scan", "split", "demultiplex", "polish"),
    "structural": ("refine", "minimize", "dock", "superpose", "score",
                   "build", "mutate", "relax", "pack", "thread"),
    "chemistry": ("integrate", "converge", "diagonalize", "optimize",
                  "propagate", "contract", "transform", "project",
                  "initialize", "symmetrize"),
    "physics": ("advance", "propagate", "interpolate", "decompose",
                "transform", "integrate", "scatter", "gather", "solve"),
    "math": ("factorize", "solve", "partition", "order", "permute",
             "eliminate", "prune", "branch", "relax", "pivot"),
    "neuroimaging": ("register", "segment", "normalize", "smooth",
                     "threshold", "warp", "resample", "estimate"),
    "statistics": ("sample", "update", "burn", "thin", "estimate",
                   "simulate", "accumulate"),
    "infrastructure": ("serialize", "deserialize", "encode", "decode",
                       "allocate", "dispatch", "validate", "traverse"),
    "epidemiology": ("simulate", "infect", "recover", "deploy", "survey",
                     "vaccinate", "sample", "progress"),
}

#: Suffixes appended to a fraction of generated function names.
COMMON_SUFFIXES: Sequence[str] = (
    "", "_init", "_free", "_create", "_destroy", "_impl", "_internal",
    "_update", "_compute", "_run", "_main", "_helper", "_v2", "_fast",
    "_parallel", "_mt", "_kernel", "_wrapper", "_check", "_stats",
)

#: Generic runtime symbols present in essentially every executable.
RUNTIME_SYMBOLS: Sequence[str] = (
    "main", "_start", "_init", "_fini", "__libc_csu_init",
    "__libc_csu_fini", "_edata", "_end", "__bss_start", "__data_start",
    "__gmon_start__", "_IO_stdin_used", "__dso_handle",
    "usage", "print_version", "print_help", "parse_args",
    "read_config", "write_output", "open_input", "close_input",
    "allocate_buffer", "free_buffer", "log_message", "fatal_error",
    "progress_report", "set_threads", "get_num_threads",
)

#: Symbols contributed by shared third-party libraries.  Classes that
#: declare the same library group in the catalogue embed (a mutated
#: subset of) these names, which is what creates realistic cross-class
#: similarity noise (e.g. the HTSlib family, BLAS users, Boost users).
SHARED_LIBRARY_SYMBOLS: Mapping[str, Sequence[str]] = {
    "htslib": (
        "hts_open", "hts_close", "hts_itr_next", "hts_idx_load",
        "sam_read1", "sam_write1", "sam_hdr_read", "sam_hdr_write",
        "bam_init1", "bam_destroy1", "bam_aux_get", "bam_endpos",
        "bcf_read", "bcf_write", "bcf_hdr_read", "vcf_parse",
        "bgzf_open", "bgzf_read", "bgzf_write", "tbx_index_build",
        "faidx_fetch_seq", "kseq_read", "kstring_resize",
    ),
    "zlib": (
        "deflate", "inflate", "deflateInit_", "inflateInit_",
        "crc32", "adler32", "gzopen", "gzread", "gzwrite", "gzclose",
        "compress2", "uncompress",
    ),
    "blas": (
        "dgemm_", "dgemv_", "daxpy_", "ddot_", "dnrm2_", "dscal_",
        "dsyrk_", "dtrsm_", "dgetrf_", "dgetri_", "dpotrf_", "dsyev_",
        "zgemm_", "zheev_",
    ),
    "fftw": (
        "fftw_plan_dft_1d", "fftw_plan_dft_r2c_3d", "fftw_execute",
        "fftw_destroy_plan", "fftw_malloc", "fftw_free",
        "fftw_plan_many_dft", "fftw_mpi_init",
    ),
    "mpi": (
        "MPI_Init", "MPI_Finalize", "MPI_Comm_rank", "MPI_Comm_size",
        "MPI_Send", "MPI_Recv", "MPI_Bcast", "MPI_Reduce",
        "MPI_Allreduce", "MPI_Barrier", "MPI_Gather", "MPI_Scatter",
        "MPI_Isend", "MPI_Irecv", "MPI_Waitall",
    ),
    "boost": (
        "_ZN5boost6system15system_categoryEv",
        "_ZN5boost6system16generic_categoryEv",
        "_ZN5boost9iostreams4copyEv",
        "_ZN5boost10filesystem4pathC1EPKc",
        "_ZN5boost12program_options17options_descriptionC1Ev",
        "_ZN5boost6threadD1Ev",
        "_ZN5boost5mutex4lockEv",
    ),
    "openmp": (
        "GOMP_parallel", "GOMP_barrier", "GOMP_critical_start",
        "GOMP_critical_end", "omp_get_thread_num", "omp_get_num_threads",
        "omp_set_num_threads", "GOMP_loop_dynamic_start",
    ),
    "cpp_runtime": (
        "_ZNSt6vectorIdSaIdEE9push_backERKd",
        "_ZNSt13basic_filebufIcSt11char_traitsIcEE4openEPKcSt13_Ios_Openmode",
        "_ZNSolsEd", "_ZNSolsEi", "_ZNSt8ios_base4InitC1Ev",
        "_ZSt17__throw_bad_allocv", "_ZdlPv", "_Znwm",
        "__cxa_begin_catch", "__cxa_end_catch", "__gxx_personality_v0",
    ),
    "hdf5": (
        "H5Fopen", "H5Fclose", "H5Dopen2", "H5Dread", "H5Dwrite",
        "H5Screate_simple", "H5Gcreate2", "H5Acreate2", "H5Tclose",
    ),
}

#: Templates for embedded printable strings; ``{name}``/``{version}``
#: placeholders are filled per class and per version.
STRING_TEMPLATES: Sequence[str] = (
    "{name} version {version}",
    "Usage: {prog} [options] <input> <output>",
    "Copyright (C) {year} The {name} Development Team",
    "This program is free software: you can redistribute it and/or modify",
    "error: cannot open file '%s'",
    "error: out of memory while allocating %zu bytes",
    "warning: %s deprecated, use %s instead",
    "[%s] processed %d records in %.2f seconds",
    "writing results to %s",
    "reading input from %s",
    "invalid value for option --%s",
    "try '{prog} --help' for more information",
    "%s: assertion failed at %s:%d",
    "number of threads: %d",
    "random seed: %ld",
    "total runtime: %.3f s",
    "peak memory usage: %.1f MB",
    "{name} home page: <https://www.example.org/{prog}>",
    "compiled with support for: %s",
    "license: GPLv3+",
    "input file '%s' appears to be truncated",
    "could not create temporary directory %s",
    "%d sequences loaded",
    "checkpoint written to %s",
    "configuration file: %s",
)

#: EasyBuild-style toolchain identifiers used in version directory names
#: (the paper's examples: ``46.0-iomkl-2019.01``, ``43.1-foss-2021a``).
TOOLCHAINS: Sequence[str] = (
    "GCC-10.3.0", "GCC-11.2.0", "GCC-12.2.0", "GCCcore-8.3.0",
    "foss-2019b", "foss-2021a", "foss-2022a", "goolf-1.4.10",
    "goolf-1.7.20", "iomkl-2019.01", "intel-2020a", "intel-2022b",
)

#: ``.comment`` section contents associated with each toolchain family.
COMPILER_COMMENTS: Mapping[str, str] = {
    "GCC": "GCC: (GNU) {gcc_version}",
    "GCCcore": "GCC: (GNU) {gcc_version}",
    "foss": "GCC: (GNU) {gcc_version}",
    "goolf": "GCC: (GNU) {gcc_version}",
    "iomkl": "Intel(R) C++ Compiler {icc_version} (ICC)",
    "intel": "Intel(R) C++ Compiler {icc_version} (ICC)",
}


def domain_vocabulary(domain: str) -> tuple[Sequence[str], Sequence[str]]:
    """Return ``(nouns, verbs)`` for a domain, defaulting to genomics.

    Unknown domains fall back to the genomics vocabulary rather than
    failing, so user-supplied catalogues with new domains keep working.
    """

    nouns = DOMAIN_NOUNS.get(domain, DOMAIN_NOUNS["genomics"])
    verbs = DOMAIN_VERBS.get(domain, DOMAIN_VERBS["genomics"])
    return nouns, verbs


#: Shared-object names (``DT_NEEDED`` entries) contributed by each library
#: group; used by the optional ``ssdeep-libs`` feature (the paper's
#: future-work ``ldd`` extension).
LIBRARY_SONAMES: Mapping[str, Sequence[str]] = {
    "htslib": ("libhts.so.3",),
    "zlib": ("libz.so.1",),
    "blas": ("libopenblas.so.0", "liblapack.so.3"),
    "fftw": ("libfftw3.so.3", "libfftw3f.so.3"),
    "mpi": ("libmpi.so.40", "libopen-rte.so.40", "libopen-pal.so.40"),
    "boost": ("libboost_system.so.1.74.0", "libboost_filesystem.so.1.74.0",
              "libboost_program_options.so.1.74.0"),
    "openmp": ("libgomp.so.1",),
    "cpp_runtime": ("libstdc++.so.6", "libgcc_s.so.1"),
    "hdf5": ("libhdf5.so.103", "libhdf5_hl.so.100"),
}

#: Shared objects essentially every dynamically linked executable needs.
BASE_SONAMES: Sequence[str] = (
    "libc.so.6", "libm.so.6", "libpthread.so.0", "libdl.so.2",
    "ld-linux-x86-64.so.2",
)
