"""The 92-class application catalogue.

The paper evaluates on 92 application classes with 5333 samples in
total.  Table 4 lists the 73 classes that stayed "known" in the
paper's split, together with their *test-set support* (40 % of each
class under the stratified 60/40 sample split); Table 3 lists the 19
classes that were held out entirely as "unknown", with their full
sample counts.  This module reconstructs per-class sample counts from
those tables:

* unknown classes: the Table 3 count is the total count;
* known classes: ``total ≈ support / 0.4`` (minimum 3, the paper's
  collection rule of "at least 3 versions ⇒ at least 3 samples").

The catalogue also records the structure the discussion section relies
on: the ``CellRanger``/``Cell-Ranger`` and ``Augustus``/``AUGUSTUS``
pairs are flagged as aliases of one underlying application (installed
at two locations), Velvet has exactly the three versions and two
executables of Table 1, and applications that share third-party
libraries (HTSlib, BLAS, Boost, …) are grouped so the generator can
inject shared symbols.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..exceptions import CorpusError

__all__ = [
    "ApplicationClassSpec",
    "ApplicationCatalog",
    "default_catalog",
    "PAPER_UNKNOWN_CLASSES",
    "PAPER_TEST_FRACTION",
]

#: The stratified sample-level test fraction used by the paper.
PAPER_TEST_FRACTION = 0.40


@dataclass(frozen=True)
class ApplicationClassSpec:
    """Static description of one application class.

    Attributes
    ----------
    name:
        Class name (the root directory of the software tree).
    domain:
        Scientific domain; selects the vocabulary used for synthetic
        symbols and strings.
    paper_test_support:
        The class's test-set support from Table 4 (known classes only).
    paper_total_samples:
        The class's total sample count from Table 3 (unknown classes).
    paper_unknown:
        True if the class fell into the paper's unknown (held-out) set.
    libraries:
        Shared-library groups linked by this application (keys of
        :data:`repro.corpus.lexicon.SHARED_LIBRARY_SYMBOLS`).
    executables:
        Explicit executable (sample) names per version; if empty the
        generator derives names automatically.
    versions:
        Explicit version directory names; if empty the generator
        derives EasyBuild-style names automatically.
    alias_of:
        Name of another class that is *the same application* installed
        at a different location (``Cell-Ranger``/``CellRanger``,
        ``AUGUSTUS``/``Augustus``).  Alias classes share the underlying
        application model, which reproduces the paper's documented
        cross-label confusion.
    version_index_offset:
        Where this class's versions start in the shared application's
        version history.  Used by alias pairs: ``Cell-Ranger`` holds the
        early versions and ``CellRanger`` the later ones, so the two
        locations are similar but not identical.
    version_drift:
        Relative aggressiveness of between-version mutation (1.0 is
        typical; >1 models applications that "change more drastically
        across versions", e.g. BigDFT / MUMmer in the discussion).
    """

    name: str
    domain: str = "genomics"
    paper_test_support: int | None = None
    paper_total_samples: int | None = None
    paper_unknown: bool = False
    libraries: tuple[str, ...] = ()
    executables: tuple[str, ...] = ()
    versions: tuple[str, ...] = ()
    alias_of: str | None = None
    version_index_offset: int = 0
    version_drift: float = 1.0

    def total_samples(self, test_fraction: float = PAPER_TEST_FRACTION) -> int:
        """Total sample count implied by the paper's tables."""

        if self.paper_total_samples is not None:
            return max(3, int(self.paper_total_samples))
        if self.paper_test_support is not None:
            return max(3, int(round(self.paper_test_support / test_fraction)))
        return 3


def _known(name: str, support: int, domain: str = "genomics", *,
           libraries: Sequence[str] = (), executables: Sequence[str] = (),
           versions: Sequence[str] = (), alias_of: str | None = None,
           version_index_offset: int = 0,
           version_drift: float = 1.0) -> ApplicationClassSpec:
    return ApplicationClassSpec(
        name=name, domain=domain, paper_test_support=support,
        paper_unknown=False, libraries=tuple(libraries),
        executables=tuple(executables), versions=tuple(versions),
        alias_of=alias_of, version_index_offset=version_index_offset,
        version_drift=version_drift,
    )


def _unknown(name: str, total: int, domain: str = "genomics", *,
             libraries: Sequence[str] = (), executables: Sequence[str] = (),
             versions: Sequence[str] = (), alias_of: str | None = None,
             version_index_offset: int = 0,
             version_drift: float = 1.0) -> ApplicationClassSpec:
    return ApplicationClassSpec(
        name=name, domain=domain, paper_total_samples=total,
        paper_unknown=True, libraries=tuple(libraries),
        executables=tuple(executables), versions=tuple(versions),
        alias_of=alias_of, version_index_offset=version_index_offset,
        version_drift=version_drift,
    )


# --------------------------------------------------------------------------
# Known classes (Table 4: class name and test-set support).
# --------------------------------------------------------------------------
_KNOWN_CLASSES: tuple[ApplicationClassSpec, ...] = (
    _known("Augustus", 10, "genomics"),
    _known("BCFtools", 4, "genomics", libraries=("htslib", "zlib")),
    _known("BEDTools", 3, "genomics", libraries=("zlib",)),
    _known("BLAT", 5, "genomics"),
    _known("BWA", 5, "genomics", libraries=("zlib",)),
    _known("BamTools", 2, "genomics", libraries=("zlib", "cpp_runtime")),
    _known("BigDFT", 28, "chemistry", libraries=("blas", "mpi", "fftw"),
           version_drift=2.2),
    _known("CAD-score", 3, "structural", libraries=("cpp_runtime",),
           version_drift=1.8),
    _known("CD-HIT", 12, "genomics", libraries=("openmp",)),
    _known("CapnProto", 1, "infrastructure", libraries=("cpp_runtime",)),
    _known("Cas-OFFinder", 1, "genomics", libraries=("cpp_runtime",)),
    _known("Celera Assembler", 101, "genomics", libraries=("cpp_runtime",)),
    _known("Cell-Ranger", 28, "genomics", libraries=("zlib", "cpp_runtime"),
           alias_of="CellRanger",
           versions=("2.1.1", "3.0.0", "3.1.0"), version_drift=1.6),
    _known("CellRanger", 20, "genomics", libraries=("zlib", "cpp_runtime"),
           versions=("4.0.0", "5.0.0", "6.0.1", "6.1.2", "7.1.0"),
           version_index_offset=3, version_drift=1.6),
    _known("Cufflinks", 6, "genomics", libraries=("boost", "zlib")),
    _known("DIAMOND", 2, "genomics", libraries=("zlib", "cpp_runtime")),
    _known("Exonerate", 43, "genomics"),
    _known("FSL", 351, "neuroimaging", libraries=("blas", "cpp_runtime", "zlib")),
    _known("FastTree", 2, "genomics", libraries=("openmp",)),
    _known("GMAP-GSNAP", 38, "genomics", libraries=("zlib",)),
    _known("HH-suite", 26, "structural", libraries=("openmp", "mpi")),
    _known("HMMER", 34, "genomics", libraries=("mpi",)),
    _known("HTSlib", 6, "genomics", libraries=("htslib", "zlib"),
           version_drift=1.7),
    _known("Infernal", 7, "genomics", libraries=("mpi",)),
    _known("InterProScan", 102, "genomics", libraries=("cpp_runtime",)),
    _known("JAGS", 1, "statistics", libraries=("blas",)),
    _known("Jellyfish", 2, "genomics", libraries=("cpp_runtime",)),
    _known("Kraken2", 6, "genomics", libraries=("openmp", "zlib")),
    _known("MAGMA", 1, "statistics", libraries=("blas",)),
    _known("MATLAB", 14, "math", libraries=("blas", "cpp_runtime"),
           version_drift=1.4),
    _known("MMseqs2", 1, "genomics", libraries=("openmp", "cpp_runtime")),
    _known("MUMmer", 26, "genomics", version_drift=2.0),
    _known("Mash", 1, "genomics", libraries=("cpp_runtime",)),
    _known("MolScript", 3, "structural"),
    _known("MrBayes", 1, "statistics", libraries=("mpi", "blas")),
    _known("OpenBabel", 8, "chemistry", libraries=("cpp_runtime",)),
    _known("OpenMM", 2, "chemistry", libraries=("cpp_runtime", "fftw")),
    _known("OpenStructure", 56, "structural", libraries=("boost", "cpp_runtime")),
    _known("PLUMED", 3, "chemistry", libraries=("blas", "mpi")),
    _known("PRANK", 2, "genomics"),
    _known("PSIPRED", 7, "structural"),
    _known("PhyML", 2, "genomics", libraries=("blas",)),
    _known("RECON", 6, "genomics"),
    _known("RSEM", 21, "genomics", libraries=("zlib", "cpp_runtime")),
    _known("Racon", 2, "genomics", libraries=("openmp", "cpp_runtime")),
    _known("Raster3D", 13, "structural"),
    _known("RepeatScout", 2, "genomics"),
    _known("Rosetta", 114, "structural", libraries=("boost", "cpp_runtime"),
           version_drift=1.5),
    _known("SMRT-Link", 3, "genomics", libraries=("cpp_runtime", "zlib")),
    _known("SOAPdenovo2", 2, "genomics", libraries=("zlib",)),
    _known("STAR", 10, "genomics", libraries=("openmp", "zlib")),
    _known("Salmon", 3, "genomics", libraries=("boost", "cpp_runtime", "zlib")),
    _known("SeqPrep", 3, "genomics", libraries=("zlib",)),
    _known("Stacks", 69, "genomics", libraries=("zlib", "cpp_runtime")),
    _known("StringTie", 2, "genomics", libraries=("zlib",)),
    _known("Subread", 21, "genomics", libraries=("zlib",)),
    _known("TopHat", 19, "genomics", libraries=("boost", "zlib"),
           version_drift=1.4),
    _known("Trinity", 41, "genomics", libraries=("cpp_runtime", "zlib")),
    _known("VCFtools", 2, "genomics", libraries=("htslib", "zlib")),
    _known("VSEARCH", 1, "genomics", libraries=("zlib",)),
    _known("Velvet", 2, "genomics",
           executables=("velveth", "velvetg"),
           versions=("1.2.10-GCC-10.3.0-mt-kmer_191", "1.2.10-goolf-1.4.10",
                     "1.2.10-goolf-1.7.20")),
    _known("ViennaRNA", 29, "genomics"),
    _known("XDS", 34, "structural", libraries=("blas",), version_drift=1.5),
    _known("breseq", 4, "genomics", libraries=("zlib", "cpp_runtime")),
    _known("canu", 51, "genomics", libraries=("cpp_runtime", "zlib")),
    _known("cdbfasta", 2, "genomics"),
    _known("fastQValidator", 2, "genomics", libraries=("zlib",)),
    _known("fastp", 1, "genomics", libraries=("zlib", "cpp_runtime")),
    _known("fineRADstructure", 2, "genomics", libraries=("cpp_runtime",)),
    _known("kallisto", 2, "genomics", libraries=("hdf5", "zlib")),
    _known("kentUtils", 352, "genomics", libraries=("zlib",)),
    _known("prodigal", 1, "genomics"),
    _known("segemehl", 1, "genomics", libraries=("zlib",)),
)

# --------------------------------------------------------------------------
# Unknown classes (Table 3: class name and total sample count).
# --------------------------------------------------------------------------
_UNKNOWN_CLASSES: tuple[ApplicationClassSpec, ...] = (
    _unknown("Schrodinger", 195, "chemistry", libraries=("blas", "cpp_runtime")),
    _unknown("QuantumESPRESSO", 178, "chemistry",
             libraries=("blas", "fftw", "mpi")),
    _unknown("SAMtools", 108, "genomics", libraries=("htslib", "zlib")),
    _unknown("MCL", 52, "math"),
    _unknown("BLAST", 52, "genomics", libraries=("cpp_runtime", "zlib")),
    _unknown("FASTA", 48, "genomics"),
    _unknown("MolProbity", 39, "structural"),
    _unknown("AUGUSTUS", 36, "genomics", alias_of="Augustus",
             version_index_offset=4),
    _unknown("HISAT2", 30, "genomics", libraries=("zlib", "cpp_runtime")),
    _unknown("OpenMalaria", 25, "epidemiology",
             libraries=("boost", "cpp_runtime"),
             executables=("openmalaria",)),
    _unknown("Gurobi", 20, "math", libraries=("blas",)),
    _unknown("Kraken", 18, "genomics", libraries=("zlib",)),
    _unknown("METIS", 18, "math"),
    _unknown("CCP4", 9, "structural", libraries=("blas",)),
    _unknown("TM-align", 9, "structural"),
    _unknown("ClustalW2", 4, "genomics"),
    _unknown("dssp", 4, "structural", libraries=("boost", "cpp_runtime")),
    _unknown("libxc", 4, "chemistry"),
    _unknown("CHARMM", 3, "chemistry", libraries=("blas", "fftw", "mpi")),
)

#: Names of the classes the paper held out as unknown (Table 3).
PAPER_UNKNOWN_CLASSES: tuple[str, ...] = tuple(c.name for c in _UNKNOWN_CLASSES)


class ApplicationCatalog:
    """Ordered collection of :class:`ApplicationClassSpec` entries."""

    def __init__(self, classes: Iterable[ApplicationClassSpec]) -> None:
        self._classes: list[ApplicationClassSpec] = list(classes)
        names = [c.name for c in self._classes]
        if len(set(names)) != len(names):
            raise CorpusError("catalogue contains duplicate class names")
        self._by_name = {c.name: c for c in self._classes}
        for spec in self._classes:
            if spec.alias_of is not None and spec.alias_of not in self._by_name:
                raise CorpusError(
                    f"class {spec.name!r} aliases unknown class {spec.alias_of!r}"
                )

    # ------------------------------------------------------------ protocol
    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterator[ApplicationClassSpec]:
        return iter(self._classes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ApplicationClassSpec:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise CorpusError(f"unknown application class {name!r}") from exc

    # ----------------------------------------------------------------- API
    @property
    def class_names(self) -> list[str]:
        """All class names in catalogue order."""

        return [c.name for c in self._classes]

    @property
    def paper_unknown_names(self) -> list[str]:
        """Names of classes flagged as the paper's unknown set."""

        return [c.name for c in self._classes if c.paper_unknown]

    def total_samples(self, max_samples_per_class: int | None = None) -> int:
        """Total number of samples the catalogue implies."""

        total = 0
        for spec in self._classes:
            count = spec.total_samples()
            if max_samples_per_class is not None:
                count = min(count, max(3, max_samples_per_class))
            total += count
        return total

    def subset(self, max_classes: int | None = None,
               *, keep_paper_unknown: bool = True) -> "ApplicationCatalog":
        """Return a smaller catalogue for reduced-scale experiments.

        Classes are ranked by sample count (largest first) so a subset
        still exhibits strong class imbalance; when
        ``keep_paper_unknown`` is set, at least a handful of the
        paper's unknown classes are retained so that the unknown-class
        mechanism stays exercised.
        """

        if max_classes is None or max_classes >= len(self._classes):
            return ApplicationCatalog(self._classes)
        if max_classes < 2:
            raise CorpusError("a catalogue subset needs at least 2 classes")

        ranked = sorted(self._classes, key=lambda c: c.total_samples(), reverse=True)
        selected: list[ApplicationClassSpec] = []
        if keep_paper_unknown:
            unknown_quota = max(2, max_classes // 4)
            unknown_ranked = [c for c in ranked if c.paper_unknown]
            selected.extend(unknown_ranked[:unknown_quota])
        for spec in ranked:
            if len(selected) >= max_classes:
                break
            if spec not in selected:
                selected.append(spec)
        # Keep alias targets together so the alias behaviour survives.
        names = {c.name for c in selected}
        for spec in list(selected):
            if spec.alias_of and spec.alias_of not in names:
                target = self._by_name[spec.alias_of]
                selected.append(target)
                names.add(target.name)
        # Preserve catalogue order for determinism.
        order = {c.name: i for i, c in enumerate(self._classes)}
        selected.sort(key=lambda c: order[c.name])
        return ApplicationCatalog(selected)

    def describe(self) -> str:
        """Multi-line human-readable summary (used by reports)."""

        lines = [f"{len(self._classes)} application classes, "
                 f"{self.total_samples()} samples"]
        for spec in self._classes:
            tag = "unknown" if spec.paper_unknown else "known"
            lines.append(f"  {spec.name:<20s} {spec.domain:<14s} "
                         f"{spec.total_samples():>5d} samples  [{tag}]")
        return "\n".join(lines)


def default_catalog() -> ApplicationCatalog:
    """The full 92-class catalogue reconstructed from the paper."""

    return ApplicationCatalog(_KNOWN_CLASSES + _UNKNOWN_CLASSES)
