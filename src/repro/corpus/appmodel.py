"""Per-class application source models.

An :class:`ApplicationModel` is the deterministic "source tree" of a
synthetic application class: its function-name inventory, its embedded
strings, the libraries it links and the layout of its code blocks.
Versions and executables are *derived* from the model — a version is
the model plus mutation (see :mod:`repro.corpus.mutation`), an
executable is a subset of the model (a suite like ``kentUtils`` or
``Velvet`` ships many binaries that share the class core but add their
own entry points).

All randomness is driven by :func:`stable_seed`, a SHA-256 based seed
derivation, so the corpus a given catalogue and seed produce is fully
reproducible across machines and Python versions.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .catalog import ApplicationClassSpec
from .lexicon import (
    BASE_SONAMES,
    COMMON_SUFFIXES,
    LIBRARY_SONAMES,
    RUNTIME_SYMBOLS,
    SHARED_LIBRARY_SYMBOLS,
    STRING_TEMPLATES,
    domain_vocabulary,
)

__all__ = ["stable_seed", "ApplicationModel", "ExecutableModel"]


def stable_seed(*parts: object) -> int:
    """Derive a 63-bit seed from arbitrary parts, stable across runs."""

    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFFFFFFFFFFFFFF


def _slugify(name: str) -> str:
    """Derive a C-identifier-friendly program prefix from a class name."""

    slug = re.sub(r"[^A-Za-z0-9]+", "_", name).strip("_").lower()
    return slug or "app"


@dataclass(frozen=True)
class ExecutableModel:
    """One executable (sample template) of an application class.

    Attributes
    ----------
    name:
        File name of the executable (e.g. ``velvetg``).
    functions:
        Global function names defined by this executable (class core
        subset plus executable-specific entry points).
    objects:
        Global data symbol names.
    strings:
        Embedded printable strings (before per-version substitution of
        ``{version}`` style placeholders handled by the mutator).
    code_block_ids:
        Identifiers of the code blocks making up ``.text``; blocks
        shared with other executables of the class have identical ids,
        which is what gives same-class binaries partially similar raw
        content.
    code_block_sizes:
        Size in bytes of each code block.
    """

    name: str
    functions: tuple[str, ...]
    objects: tuple[str, ...]
    strings: tuple[str, ...]
    code_block_ids: tuple[str, ...]
    code_block_sizes: tuple[int, ...]


class ApplicationModel:
    """Deterministic synthetic "source model" of an application class.

    Parameters
    ----------
    spec:
        Catalogue entry describing the class.
    corpus_seed:
        Global corpus seed; combined with the class identity (or its
        ``alias_of`` target, so aliased classes share one model).
    binary_size_range:
        Approximate ``.text`` size range for this corpus scale.
    """

    def __init__(self, spec: ApplicationClassSpec, corpus_seed: int,
                 binary_size_range: tuple[int, int] = (4_096, 32_768)) -> None:
        self.spec = spec
        self.corpus_seed = int(corpus_seed)
        self.binary_size_range = binary_size_range
        # Aliased classes (CellRanger / Cell-Ranger, AUGUSTUS / Augustus)
        # share the same underlying application identity.
        self.identity = spec.alias_of or spec.name
        self.prefix = _slugify(self.identity)
        self._rng = np.random.default_rng(
            stable_seed(self.corpus_seed, "model", self.identity))
        self._build()

    # ------------------------------------------------------------ building
    def _build(self) -> None:
        rng = self._rng
        nouns, verbs = domain_vocabulary(self.spec.domain)
        size_lo, size_hi = self.binary_size_range
        typical_size = int(rng.integers(size_lo, size_hi + 1))

        # Inventory sizes scale weakly with binary size.
        n_core_functions = int(np.clip(typical_size // 160, 40, 220))
        n_core_strings = int(np.clip(typical_size // 320, 24, 120))
        n_objects = int(np.clip(n_core_functions // 6, 4, 30))

        self.core_functions = self._make_function_names(
            rng, nouns, verbs, n_core_functions)
        self.core_objects = tuple(
            f"{self.prefix}_{noun}_table" for noun in
            rng.choice(nouns, size=min(n_objects, len(nouns)), replace=False)
        )
        self.core_strings = self._make_strings(rng, nouns, n_core_strings)
        self.library_symbols = self._collect_library_symbols(rng)
        # Shared-object dependencies (DT_NEEDED): the base runtime plus the
        # sonames of every linked library group.  Used by the optional
        # ``ssdeep-libs`` feature (the paper's future-work ldd extension).
        sonames = list(BASE_SONAMES)
        for library in self.spec.libraries:
            sonames.extend(LIBRARY_SONAMES.get(library, ()))
        self.shared_libraries = tuple(dict.fromkeys(sonames))

        # Code blocks: the class "object code", organised in blocks whose
        # identity is stable across executables/versions so that partial
        # reuse shows up in the raw-content fuzzy hash.
        n_blocks = int(np.clip(typical_size // 384, 12, 96))
        self.core_block_ids = tuple(f"{self.identity}/core/{i}" for i in range(n_blocks))
        self.core_block_sizes = tuple(
            int(s) for s in rng.integers(192, 640, size=n_blocks))
        self.typical_size = typical_size

    def _make_function_names(self, rng: np.random.Generator,
                             nouns: Sequence[str], verbs: Sequence[str],
                             count: int) -> tuple[str, ...]:
        names: set[str] = set()
        attempts = 0
        while len(names) < count and attempts < count * 20:
            attempts += 1
            verb = str(rng.choice(verbs))
            noun = str(rng.choice(nouns))
            suffix = str(rng.choice(COMMON_SUFFIXES))
            style = int(rng.integers(0, 4))
            if style == 0:
                name = f"{self.prefix}_{verb}_{noun}{suffix}"
            elif style == 1:
                name = f"{self.prefix}_{noun}_{verb}{suffix}"
            elif style == 2:
                # CamelCase C++-ish method name.
                name = f"{self.prefix}{verb.capitalize()}{noun.capitalize()}{suffix}"
            else:
                name = f"{verb}_{noun}_{self.prefix}{suffix}"
            names.add(name)
        return tuple(sorted(names))

    def _make_strings(self, rng: np.random.Generator, nouns: Sequence[str],
                      count: int) -> tuple[str, ...]:
        strings: list[str] = []
        for template in STRING_TEMPLATES:
            strings.append(template)
        while len(strings) < count:
            noun = str(rng.choice(nouns))
            kind = int(rng.integers(0, 5))
            if kind == 0:
                strings.append(f"processing {noun} %d of %d")
            elif kind == 1:
                strings.append(f"--{noun}-threshold")
            elif kind == 2:
                strings.append(f"invalid {noun} specification: %s")
            elif kind == 3:
                strings.append(f"{self.prefix}: {noun} buffer exhausted")
            else:
                strings.append(f"# {noun} summary statistics")
        return tuple(strings[:count])

    def _collect_library_symbols(self, rng: np.random.Generator) -> tuple[str, ...]:
        symbols: list[str] = []
        for library in self.spec.libraries:
            pool = SHARED_LIBRARY_SYMBOLS.get(library, ())
            if not pool:
                continue
            # Each application statically links a large, stable subset of
            # each library it uses.
            take = max(3, int(round(len(pool) * 0.8)))
            chosen = rng.choice(len(pool), size=min(take, len(pool)), replace=False)
            symbols.extend(pool[i] for i in sorted(chosen))
        return tuple(symbols)

    # ----------------------------------------------------------- derivation
    def executable_names(self, count: int) -> list[str]:
        """Names for ``count`` executables of this class.

        Explicit names from the catalogue are used first; additional
        ones are derived tool-suite style (``<prefix>_<verb><noun>``).
        """

        names = list(self.spec.executables)
        if len(names) >= count:
            return names[:count]
        rng = np.random.default_rng(stable_seed(self.corpus_seed, "exes", self.identity))
        nouns, verbs = domain_vocabulary(self.spec.domain)
        seen = set(names)
        while len(names) < count:
            verb = str(rng.choice(verbs))
            noun = str(rng.choice(nouns))
            style = int(rng.integers(0, 3))
            if style == 0:
                candidate = f"{self.prefix}_{verb}_{noun}"
            elif style == 1:
                candidate = f"{self.prefix}{verb.capitalize()}{noun.capitalize()}"
            else:
                candidate = f"{verb}{noun.capitalize()}"
            if candidate in seen:
                candidate = f"{candidate}{len(names)}"
            seen.add(candidate)
            names.append(candidate)
        return names

    def executable_model(self, executable_name: str,
                         executable_index: int) -> ExecutableModel:
        """Derive the model of one executable of this class.

        Executables share roughly 55–75 % of the class core (functions,
        strings, code blocks) and add their own entry points, mimicking
        a tool suite built on a common internal library.
        """

        rng = np.random.default_rng(
            stable_seed(self.corpus_seed, "exe", self.identity, executable_name))

        share = float(rng.uniform(0.55, 0.75))
        functions = self._subset(rng, self.core_functions, share)
        own_count = int(np.clip(len(self.core_functions) * 0.2, 6, 40))
        own_functions = tuple(
            f"{self.prefix}_{_slugify(executable_name)}_{verb}"
            for verb in self._own_tokens(rng, own_count)
        )
        objects = self._subset(rng, self.core_objects, 0.8)
        strings = self._subset(rng, self.core_strings, share)
        own_strings = (
            f"Usage: {executable_name} [options]",
            f"{executable_name}: unrecognized option '%s'",
            f"{executable_name} finished successfully",
        )

        block_share = float(rng.uniform(0.45, 0.7))
        core_block_count = max(4, int(len(self.core_block_ids) * block_share))
        chosen = rng.choice(len(self.core_block_ids), size=core_block_count,
                            replace=False)
        block_ids = [self.core_block_ids[i] for i in sorted(chosen)]
        block_sizes = [self.core_block_sizes[i] for i in sorted(chosen)]
        n_own_blocks = max(2, core_block_count // 3)
        for i in range(n_own_blocks):
            block_ids.append(f"{self.identity}/{executable_name}/{i}")
            block_sizes.append(int(rng.integers(192, 640)))

        all_functions = tuple(sorted(set(functions) | set(own_functions)
                                     | set(self.library_symbols)
                                     | set(RUNTIME_SYMBOLS)))
        return ExecutableModel(
            name=executable_name,
            functions=all_functions,
            objects=tuple(objects),
            strings=tuple(strings) + own_strings,
            code_block_ids=tuple(block_ids),
            code_block_sizes=tuple(block_sizes),
        )

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _subset(rng: np.random.Generator, items: Sequence[str],
                fraction: float) -> tuple[str, ...]:
        if not items:
            return ()
        count = max(1, int(round(len(items) * fraction)))
        chosen = rng.choice(len(items), size=min(count, len(items)), replace=False)
        return tuple(items[i] for i in sorted(chosen))

    def _own_tokens(self, rng: np.random.Generator, count: int) -> list[str]:
        nouns, verbs = domain_vocabulary(self.spec.domain)
        tokens = []
        for _ in range(count):
            tokens.append(f"{rng.choice(verbs)}_{rng.choice(nouns)}")
        return tokens
