"""Synthetic sciCORE-like application corpus.

The paper's data set consists of 92 application classes / 5333 samples
of preinstalled scientific software collected from the sciCORE
production cluster.  That corpus is not redistributable, so this
subpackage generates a synthetic stand-in with the same structure
(see DESIGN.md for the substitution rationale):

* :mod:`repro.corpus.catalog` — the 92-class catalogue with per-class
  sample counts reconstructed from the paper's Tables 3 and 4,
  domains, shared-library groups and the paper's known quirks
  (``CellRanger`` vs ``Cell-Ranger``, ``Augustus`` vs ``AUGUSTUS``),
* :mod:`repro.corpus.lexicon` — domain vocabularies used to synthesise
  function names, embedded strings and toolchains,
* :mod:`repro.corpus.appmodel` — the per-class "source model" from
  which versions and executables are derived,
* :mod:`repro.corpus.mutation` — how versions drift (code, strings,
  symbols, toolchain),
* :mod:`repro.corpus.builder` — materialise the
  ``<Class>/<version>/<executable>`` tree as real ELF files,
* :mod:`repro.corpus.scanner` — walk such a tree applying the paper's
  collection rules (label from path, skip stripped binaries, require
  at least three versions),
* :mod:`repro.corpus.dataset` — the in-memory sample table used by the
  feature extraction and classification stages.
"""

from .catalog import (
    ApplicationCatalog,
    ApplicationClassSpec,
    default_catalog,
    PAPER_UNKNOWN_CLASSES,
)
from .appmodel import ApplicationModel, ExecutableModel
from .mutation import MutationConfig, VersionMutator
from .builder import CorpusBuilder, GeneratedSample
from .scanner import CorpusScanner, ScanResult
from .dataset import CorpusDataset, SampleRecord

__all__ = [
    "ApplicationCatalog",
    "ApplicationClassSpec",
    "default_catalog",
    "PAPER_UNKNOWN_CLASSES",
    "ApplicationModel",
    "ExecutableModel",
    "MutationConfig",
    "VersionMutator",
    "CorpusBuilder",
    "GeneratedSample",
    "CorpusScanner",
    "ScanResult",
    "CorpusDataset",
    "SampleRecord",
]
