"""Cluster software-usage reporting.

One of the secondary use cases the paper lists for application labels
is "reporting software usage across the cluster".  Given classified
samples (optionally attributed to users/allocations) this module
aggregates a usage report and highlights deviations from an
allocation's expected software.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["UsageReport", "build_usage_report"]


@dataclass
class UsageReport:
    """Aggregated application usage."""

    class_counts: dict[str, int]
    per_user_counts: dict[str, dict[str, int]]
    unknown_count: int
    deviations: list[dict] = field(default_factory=list)

    def top_classes(self, n: int = 10) -> list[tuple[str, int]]:
        return sorted(self.class_counts.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def as_text(self) -> str:
        lines = ["Software usage report", "======================"]
        for name, count in self.top_classes(20):
            lines.append(f"  {name:<28s} {count:>6d} executions")
        lines.append(f"  {'<unknown applications>':<28s} {self.unknown_count:>6d} executions")
        if self.deviations:
            lines.append("")
            lines.append("Allocation deviations:")
            for deviation in self.deviations:
                lines.append(
                    f"  user {deviation['user']}: ran {deviation['class']} "
                    f"({deviation['count']}x) outside the allowed set")
        return "\n".join(lines)


def build_usage_report(predictions: Sequence, *,
                       users: Sequence[str] | None = None,
                       allowed_per_user: Mapping[str, Sequence[str]] | None = None,
                       unknown_label=-1) -> UsageReport:
    """Aggregate predicted labels into a usage report.

    Parameters
    ----------
    predictions:
        Predicted application class per executed sample.
    users:
        Optional user/allocation id per sample (same length).
    allowed_per_user:
        Optional mapping of user to the application classes their
        allocation is expected to run; anything else is reported as a
        deviation (the paper's guiding questions 1 and 2).
    """

    predictions = list(predictions)
    users = list(users) if users is not None else ["<all>"] * len(predictions)
    if len(users) != len(predictions):
        raise ValueError("users must have the same length as predictions")

    class_counts: Counter = Counter()
    per_user: dict[str, Counter] = defaultdict(Counter)
    unknown_count = 0
    for user, predicted in zip(users, predictions):
        if predicted == unknown_label:
            unknown_count += 1
            per_user[user]["<unknown>"] += 1
            continue
        class_counts[str(predicted)] += 1
        per_user[user][str(predicted)] += 1

    deviations: list[dict] = []
    if allowed_per_user:
        for user, counts in per_user.items():
            allowed = set(allowed_per_user.get(user, ()))
            if not allowed:
                continue
            for class_name, count in counts.items():
                if class_name == "<unknown>" or class_name in allowed:
                    continue
                deviations.append({"user": user, "class": class_name, "count": count})

    return UsageReport(
        class_counts=dict(class_counts),
        per_user_counts={user: dict(counts) for user, counts in per_user.items()},
        unknown_count=unknown_count,
        deviations=deviations,
    )
