"""Result analysis used by the paper's discussion section.

* :mod:`repro.analysis.importance` — aggregate Random-Forest feature
  importances per fuzzy-hash type (Table 5),
* :mod:`repro.analysis.misclassification` — find the class pairs that
  confuse the classifier (the CellRanger / Cell-Ranger and
  Augustus / AUGUSTUS discussion),
* :mod:`repro.analysis.usage_report` — software-usage reporting from
  predicted labels (one of the secondary use cases the paper lists).
"""

from .importance import group_importances, importance_by_class
from .misclassification import ConfusedPair, confused_pairs, per_class_discrepancies
from .usage_report import UsageReport, build_usage_report

__all__ = [
    "group_importances",
    "importance_by_class",
    "ConfusedPair",
    "confused_pairs",
    "per_class_discrepancies",
    "UsageReport",
    "build_usage_report",
]
