"""Misclassification analysis.

The paper's discussion section traces most of the residual error to a
handful of confusable class pairs (``CellRanger`` vs ``Cell-Ranger``,
``Augustus`` vs the held-out ``AUGUSTUS``) and to classes with large
precision/recall discrepancies (BigDFT, MUMmer).  These helpers extract
exactly those views from a prediction run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..ml.metrics import precision_recall_fscore_support

__all__ = ["ConfusedPair", "confused_pairs", "per_class_discrepancies"]


@dataclass(frozen=True)
class ConfusedPair:
    """One directed confusion: samples of ``true_class`` predicted as
    ``predicted_class``."""

    true_class: object
    predicted_class: object
    count: int

    def describe(self) -> str:
        return f"{self.count} samples of {self.true_class!r} predicted as {self.predicted_class!r}"


def confused_pairs(y_true: Sequence, y_pred: Sequence, *, top: int = 10,
                   ignore_correct: bool = True) -> list[ConfusedPair]:
    """The most frequent (true, predicted) confusions."""

    counter: Counter = Counter()
    for true_value, predicted in zip(y_true, y_pred):
        if ignore_correct and true_value == predicted:
            continue
        counter[(true_value, predicted)] += 1
    pairs = [ConfusedPair(true_class=t, predicted_class=p, count=c)
             for (t, p), c in counter.most_common(top)]
    return pairs


def per_class_discrepancies(y_true: Sequence, y_pred: Sequence, *,
                            min_support: int = 5,
                            min_gap: float = 0.2) -> list[dict]:
    """Classes whose precision and recall differ by at least ``min_gap``.

    This is the "Inconsistent Performance" view of the discussion
    (classes like BigDFT with precision 0.55 / recall 0.96).
    """

    y_true_arr = np.asarray(list(y_true), dtype=object)
    y_pred_arr = np.asarray(list(y_pred), dtype=object)
    labels = np.array(sorted(set(y_true_arr.tolist()), key=str), dtype=object)
    precision, recall, f1, support = precision_recall_fscore_support(
        y_true_arr, y_pred_arr, labels=labels, average=None)
    rows = []
    for label, p, r, f, s in zip(labels.tolist(), precision, recall, f1, support):
        if s < min_support:
            continue
        if abs(p - r) >= min_gap:
            rows.append({"class": label, "precision": float(p), "recall": float(r),
                         "f1": float(f), "support": int(s)})
    rows.sort(key=lambda row: -abs(row["precision"] - row["recall"]))
    return rows
