"""Feature-importance aggregation (paper Table 5).

The Random Forest is trained on one column per (fuzzy-hash type,
anchor class); the paper reports importance per fuzzy-hash *type*
(``ssdeep-file`` / ``ssdeep-strings`` / ``ssdeep-symbols``).  The
aggregation simply sums the Gini importances of all columns belonging
to a type and re-normalises, which is exactly what summing
scikit-learn's ``feature_importances_`` over column groups does.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..exceptions import ValidationError

__all__ = ["group_importances", "importance_by_class"]


def group_importances(importances: Sequence[float],
                      feature_groups: Mapping[str, Sequence[int]]) -> dict[str, float]:
    """Sum importances per feature group and normalise to 1.

    Parameters
    ----------
    importances:
        Per-column importances from the Random Forest.
    feature_groups:
        Mapping of group name (fuzzy-hash type) to column indices.
    """

    importances = np.asarray(importances, dtype=np.float64)
    if importances.ndim != 1:
        raise ValidationError("importances must be one-dimensional")
    totals: dict[str, float] = {}
    for group, indices in feature_groups.items():
        indices = np.asarray(list(indices), dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= importances.size):
            raise ValidationError(f"feature group {group!r} has out-of-range indices")
        totals[group] = float(importances[indices].sum()) if indices.size else 0.0
    grand_total = sum(totals.values())
    if grand_total <= 0:
        return {group: 0.0 for group in totals}
    return {group: value / grand_total for group, value in totals.items()}


def importance_by_class(importances: Sequence[float], feature_names: Sequence[str],
                        top: int = 10) -> list[tuple[str, float]]:
    """The most important individual columns (``type|class`` names)."""

    importances = np.asarray(importances, dtype=np.float64)
    if len(importances) != len(feature_names):
        raise ValidationError("importances and feature_names must align")
    order = np.argsort(importances)[::-1][:top]
    return [(feature_names[i], float(importances[i])) for i in order]
