"""Internal argument-validation helpers.

These utilities mirror the small subset of scikit-learn's ``check_*``
helpers that the from-scratch ML substrate needs, and add a few
library-specific checks (byte inputs, digests, probability values).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from .exceptions import ValidationError

__all__ = [
    "check_bytes",
    "check_probability",
    "check_positive_int",
    "check_non_negative_int",
    "check_in_choices",
    "check_array_2d",
    "check_array_1d",
    "check_consistent_length",
    "check_random_state",
]


def check_bytes(data: Any, name: str = "data") -> bytes:
    """Return ``data`` as :class:`bytes`, accepting bytes-like objects."""

    if isinstance(data, bytes):
        return data
    if isinstance(data, (bytearray, memoryview)):
        return bytes(data)
    if isinstance(data, str):
        return data.encode("utf-8", errors="replace")
    raise ValidationError(
        f"{name} must be bytes-like or str, got {type(data).__name__}"
    )


def check_probability(value: float, name: str = "value") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""

    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a float in [0, 1]") from exc
    if not (0.0 <= value <= 1.0) or not np.isfinite(value):
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_positive_int(value: Any, name: str = "value") -> int:
    """Validate that ``value`` is an integer >= 1."""

    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    value = int(value)
    if value < 1:
        raise ValidationError(f"{name} must be >= 1, got {value}")
    return value


def check_non_negative_int(value: Any, name: str = "value") -> int:
    """Validate that ``value`` is an integer >= 0."""

    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be a non-negative integer, got {value!r}")
    value = int(value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_choices(value: Any, choices: Iterable[Any], name: str = "value") -> Any:
    """Validate that ``value`` is among ``choices``."""

    choices = tuple(choices)
    if value not in choices:
        raise ValidationError(f"{name} must be one of {choices!r}, got {value!r}")
    return value


def check_array_2d(X: Any, name: str = "X", dtype=np.float64) -> np.ndarray:
    """Convert ``X`` to a 2-D float array, rejecting NaN/inf values."""

    arr = np.asarray(X, dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_array_1d(y: Any, name: str = "y") -> np.ndarray:
    """Convert ``y`` to a 1-D array (dtype preserved)."""

    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    return arr


def check_consistent_length(*arrays: Sequence[Any]) -> int:
    """Check that all arrays have the same first dimension, return it."""

    lengths = {len(a) for a in arrays if a is not None}
    if len(lengths) > 1:
        raise ValidationError(
            f"Found input arrays with inconsistent numbers of samples: {sorted(lengths)}"
        )
    return lengths.pop() if lengths else 0


def check_random_state(seed: Any) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator` instance.

    Accepts ``None`` (fresh entropy), an integer, an existing ``Generator``
    or a legacy ``RandomState`` (converted via its bit generator seed).
    """

    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    if isinstance(seed, np.random.RandomState):
        return np.random.default_rng(seed.randint(0, 2**32 - 1))
    raise ValidationError(f"Cannot use {seed!r} to seed a random generator")
