"""SSDeep's base64 alphabet.

SSDeep encodes each 6-bit chunk value with the standard base64 alphabet
(``A``–``Z``, ``a``–``z``, ``0``–``9``, ``+``, ``/``); digests therefore
consist only of these characters.
"""

from __future__ import annotations

__all__ = ["B64_ALPHABET", "encode_low6", "is_digest_alphabet"]

#: The 64-character alphabet used for digest characters.
B64_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

_ALPHABET_SET = frozenset(B64_ALPHABET)


def encode_low6(value: int) -> str:
    """Encode the low 6 bits of ``value`` as one digest character."""

    return B64_ALPHABET[value & 0x3F]


def is_digest_alphabet(text: str) -> bool:
    """Return True if every character of ``text`` is a valid digest char."""

    return all(ch in _ALPHABET_SET for ch in text)
