"""The 7-byte rolling hash used by SSDeep's context trigger.

The rolling hash combines three components over a sliding window of
``ROLLING_WINDOW = 7`` bytes (matching the spamsum/ssdeep reference):

* ``h1`` — the plain sum of the window bytes,
* ``h2`` — a position-weighted sum (the newest byte has weight 7, the
  oldest weight 1),
* ``h3`` — a shift/XOR mix: ``h3 = (h3 << 5) ^ c`` in 32-bit arithmetic,
  which, because ``7 * 5 >= 32``, also only depends on the last 7 bytes.

The rolling value is ``(h1 + h2 + h3) mod 2**32``.  A chunk boundary is
triggered at positions where ``value % block_size == block_size - 1``.

Two implementations are provided: a scalar :class:`RollingHash` that
mirrors the reference C code byte by byte (used in tests and as
documentation), and :func:`rolling_hash_values`, a NumPy routine that
computes the rolling value at *every* position of an input in a handful
of vectorised passes — this is the performance-critical path when
hashing whole executables.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ROLLING_WINDOW", "RollingHash", "rolling_hash_values"]

#: Window size of the rolling hash (bytes).
ROLLING_WINDOW = 7

_MASK32 = 0xFFFFFFFF


class RollingHash:
    """Scalar reference implementation of the SSDeep rolling hash."""

    __slots__ = ("_window", "_h1", "_h2", "_h3", "_n")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Reset the hash to its initial (empty window) state."""

        self._window = [0] * ROLLING_WINDOW
        self._h1 = 0
        self._h2 = 0
        self._h3 = 0
        self._n = 0

    def update(self, byte: int) -> int:
        """Feed one byte (0..255) and return the new rolling value."""

        byte &= 0xFF
        self._h2 = (self._h2 - self._h1 + ROLLING_WINDOW * byte) & _MASK32
        self._h1 = (self._h1 + byte - self._window[self._n % ROLLING_WINDOW]) & _MASK32
        self._window[self._n % ROLLING_WINDOW] = byte
        self._n += 1
        self._h3 = ((self._h3 << 5) & _MASK32) ^ byte
        return self.value

    @property
    def value(self) -> int:
        """Current rolling hash value (32-bit)."""

        return (self._h1 + self._h2 + self._h3) & _MASK32

    def update_bytes(self, data: bytes) -> int:
        """Feed a whole byte string; returns the final rolling value."""

        for byte in data:
            self.update(byte)
        return self.value


def rolling_hash_values(data: bytes | bytearray | memoryview | np.ndarray) -> np.ndarray:
    """Rolling hash value after each byte of ``data`` (vectorised).

    Returns an array ``r`` of dtype ``uint32`` and length ``len(data)``
    where ``r[i]`` equals the value a :class:`RollingHash` would report
    after consuming ``data[: i + 1]``.
    """

    if isinstance(data, np.ndarray):
        buf = data.astype(np.uint8, copy=False)
    else:
        buf = np.frombuffer(bytes(data), dtype=np.uint8)
    n = buf.size
    if n == 0:
        return np.zeros(0, dtype=np.uint32)

    b = buf.astype(np.uint64)

    # h1: plain sliding-window sum of the last 7 bytes.
    csum = np.zeros(n + 1, dtype=np.uint64)
    np.cumsum(b, out=csum[1:])
    left = np.maximum(np.arange(1, n + 1) - ROLLING_WINDOW, 0)
    h1 = csum[1:] - csum[left]

    # h2: position-weighted window sum; the byte at offset k from the end
    # of the window (k = 0 is the newest byte) has weight 7 - k.
    h2 = np.zeros(n, dtype=np.uint64)
    for k in range(ROLLING_WINDOW):
        weight = ROLLING_WINDOW - k
        if k == 0:
            h2 += weight * b
        else:
            h2[k:] += weight * b[:-k]

    # h3: shift/XOR mix; only the last 7 bytes contribute within 32 bits.
    h3 = np.zeros(n, dtype=np.uint64)
    for k in range(ROLLING_WINDOW):
        shifted = (b << np.uint64(5 * k)) & np.uint64(_MASK32)
        if k == 0:
            h3 ^= shifted
        else:
            h3[k:] ^= shifted[:-k]

    total = (h1 + h2 + h3) & np.uint64(_MASK32)
    return total.astype(np.uint32)
