"""Fuzzy-hashing substrate: a from-scratch SSDeep (CTPH) implementation.

SSDeep (Kornblum 2006) computes *context triggered piecewise hashes*:

1. a 7-byte rolling hash slides over the input; whenever its value is
   congruent to ``block_size - 1`` a chunk boundary is "triggered",
2. each chunk is summarised by the low 6 bits of an FNV-style hash and
   encoded as one base64 character,
3. the digest is ``block_size:chunk_signature:double_block_signature``
   where the second signature is computed at twice the block size,
4. two digests are compared by a Damerau–Levenshtein-style edit distance
   between their signatures, scaled to a 0–100 similarity score.

This subpackage implements all four steps without external
dependencies.  The Python `ssdeep` bindings are not available in this
environment, so the implementation here *is* the substrate the paper's
pipeline runs on (see DESIGN.md).

Public entry points
-------------------
* :func:`fuzzy_hash` / :class:`FuzzyHasher` — compute digests,
* :class:`SsdeepDigest` — parse / format digest strings,
* :func:`compare_digests` — 0–100 similarity between two digests,
* :func:`repro.hashing.crypto.crypto_digest` — cryptographic digests for
  the exact-match baseline.

A second, fixed-length hash family lives in :mod:`repro.hashing.vector`:
TLSH-style 72-character ``vr1:`` digests whose similarity is a Hamming
distance over a 256-bit rank-quartile body (:func:`vector_hash`,
:class:`VectorHasher`, :func:`compare_vector_digests`).  Unlike CTPH,
every pair of vector digests is comparable — there is no block-size
gate — and corpus-scale scoring packs digests into ``uint64`` matrices
(:class:`repro.index.knn.VectorKNNIndex`).
"""

from .rolling import ROLLING_WINDOW, RollingHash, rolling_hash_values
from .fnv import FNV_INIT, FNV_PRIME, fnv_hash, fnv_update, piecewise_low6
from .b64 import B64_ALPHABET, encode_low6
from .ssdeep import (
    MIN_BLOCKSIZE,
    SPAMSUM_LENGTH,
    FuzzyHasher,
    SsdeepDigest,
    fuzzy_hash,
    fuzzy_hash_file,
)
from .compare import (
    compare_digests,
    compare_digest_strings,
    has_common_substring,
    normalize_repeats,
)
from .crypto import crypto_digest, crypto_digest_file
from .vector import (
    VECTOR_DIGEST_LENGTH,
    VECTOR_PREFIX,
    VectorDigest,
    VectorHasher,
    compare_vector_digests,
    is_vector_digest,
    is_vector_feature_type,
    vector_hash,
)

__all__ = [
    "ROLLING_WINDOW",
    "RollingHash",
    "rolling_hash_values",
    "FNV_INIT",
    "FNV_PRIME",
    "fnv_hash",
    "fnv_update",
    "piecewise_low6",
    "B64_ALPHABET",
    "encode_low6",
    "MIN_BLOCKSIZE",
    "SPAMSUM_LENGTH",
    "FuzzyHasher",
    "SsdeepDigest",
    "fuzzy_hash",
    "fuzzy_hash_file",
    "compare_digests",
    "compare_digest_strings",
    "has_common_substring",
    "normalize_repeats",
    "crypto_digest",
    "crypto_digest_file",
    "VECTOR_DIGEST_LENGTH",
    "VECTOR_PREFIX",
    "VectorDigest",
    "VectorHasher",
    "compare_vector_digests",
    "is_vector_digest",
    "is_vector_feature_type",
    "vector_hash",
]
