"""Similarity scoring between SSDeep digests.

Two digests are compared exactly as the SSDeep reference does
(paper, Section 3):

1. the block sizes must be identical or differ by a factor of two —
   otherwise the files are structurally incomparable and the score is 0;
2. runs of more than three identical characters are collapsed to three
   (long runs carry little information and would distort the edit
   distance);
3. the two signatures must share at least one common substring of
   length :data:`~repro.hashing.rolling.ROLLING_WINDOW` (7); if they do
   not, the score is 0.  This gate is also what makes large-scale
   comparison cheap: almost all cross-application pairs are rejected
   here without computing an edit distance;
4. the remaining pairs are scored by a cost-weighted
   Damerau–Levenshtein distance scaled onto 0–100
   (:mod:`repro.distance.scoring`).

The module scores single pairs; bulk scoring against many reference
digests (with the 7-gram gate applied as a candidate index) lives in
:mod:`repro.features.similarity`.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from typing import Iterable

from ..distance.damerau import weighted_edit_distance
from ..distance.scoring import (
    COMPARABLE,
    INCOMPARABLE_BLOCK_SIZE,
    INCOMPARABLE_EMPTY,
    INCOMPARABLE_REASONS,
    INCOMPARABLE_SHORT_SIGNATURE,
    ssdeep_score_from_distance,
)
from .rolling import ROLLING_WINDOW
from .ssdeep import SsdeepDigest

__all__ = [
    "normalize_repeats",
    "has_common_substring",
    "score_signatures",
    "DigestComparison",
    "compare_digests",
    "compare_digests_detailed",
    "compare_digest_strings",
    "common_ngrams",
    "incomparable_counts",
    "reset_incomparable_counts",
]

_REPEAT_RE = re.compile(r"(.)\1{3,}")


def normalize_repeats(signature: str, max_run: int = 3) -> str:
    """Collapse runs of more than ``max_run`` identical characters.

    SSDeep applies this before scoring so that long constant regions
    (e.g. zero padding) do not dominate the edit distance.
    """

    if max_run != 3:
        pattern = re.compile(r"(.)\1{" + str(max_run) + r",}")
        return pattern.sub(lambda m: m.group(1) * max_run, signature)
    return _REPEAT_RE.sub(lambda m: m.group(1) * 3, signature)


def common_ngrams(signature: str, n: int = ROLLING_WINDOW) -> set[str]:
    """Return the set of length-``n`` substrings of ``signature``."""

    if len(signature) < n:
        return set()
    return {signature[i:i + n] for i in range(len(signature) - n + 1)}


def has_common_substring(s1: str, s2: str, length: int = ROLLING_WINDOW) -> bool:
    """True if ``s1`` and ``s2`` share a common substring of ``length``."""

    if len(s1) < length or len(s2) < length:
        return False
    grams = common_ngrams(s1, length)
    return any(s2[i:i + length] in grams for i in range(len(s2) - length + 1))


def score_signatures(s1: str, s2: str, block_size: int,
                     *, require_common_substring: bool = True) -> int:
    """Score two same-block-size signatures on the 0–100 SSDeep scale."""

    s1 = normalize_repeats(s1)
    s2 = normalize_repeats(s2)
    if not s1 or not s2:
        return 0
    if s1 == s2:
        return 100
    if require_common_substring and not has_common_substring(s1, s2):
        return 0
    distance = weighted_edit_distance(s1, s2)
    return int(ssdeep_score_from_distance(distance, len(s1), len(s2), block_size))


@dataclass(frozen=True)
class DigestComparison:
    """Typed outcome of one digest comparison.

    ``score`` is the usual 0–100 similarity.  ``comparable`` is False
    when the pair could not be meaningfully scored at all — the score
    is then 0 by construction, and ``reason`` names why (one of
    :data:`~repro.distance.scoring.INCOMPARABLE_REASONS`).  A
    comparable pair carries ``reason == COMPARABLE`` even when its
    score is 0: that zero is a genuine dissimilarity verdict.
    """

    score: int
    comparable: bool
    reason: str


# Incomparable outcomes counted per reason, for operational visibility
# (surfaced by the serving tier under GET /metrics).  Comparisons can
# run from several serving threads at once, so increments take a lock.
_INCOMPARABLE_LOCK = threading.Lock()
_INCOMPARABLE_COUNTS: dict[str, int] = {r: 0 for r in INCOMPARABLE_REASONS}


def incomparable_counts() -> dict[str, int]:
    """Snapshot of incomparable-comparison counters, keyed by reason."""

    with _INCOMPARABLE_LOCK:
        return dict(_INCOMPARABLE_COUNTS)


def reset_incomparable_counts() -> None:
    """Zero the incomparable-comparison counters (tests, process reuse)."""

    with _INCOMPARABLE_LOCK:
        for reason in _INCOMPARABLE_COUNTS:
            _INCOMPARABLE_COUNTS[reason] = 0


def _record_incomparable(reason: str) -> None:
    with _INCOMPARABLE_LOCK:
        _INCOMPARABLE_COUNTS[reason] += 1


def _pair_is_short(s1: str, s2: str) -> bool:
    """True when a signature pair can never pass the 7-gram gate."""

    s1 = normalize_repeats(s1)
    s2 = normalize_repeats(s2)
    if s1 and s1 == s2:
        return False  # identical signatures score 100 regardless of length
    return min(len(s1), len(s2)) < ROLLING_WINDOW


def compare_digests_detailed(d1: SsdeepDigest | str,
                             d2: SsdeepDigest | str) -> DigestComparison:
    """Compare two digests, reporting *why* when no score is possible.

    The score matches :func:`compare_digests` exactly; the extra fields
    distinguish "scored 0 because dissimilar" from the three structural
    dead-ends (block-size mismatch, empty digest, signatures too short
    for the 7-gram gate).  Incomparable outcomes increment a process-
    wide counter exposed through :func:`incomparable_counts`.
    """

    if isinstance(d1, str):
        d1 = SsdeepDigest.parse(d1)
    if isinstance(d2, str):
        d2 = SsdeepDigest.parse(d2)

    bs1, bs2 = d1.block_size, d2.block_size
    if bs1 != bs2 and bs1 != bs2 * 2 and bs2 != bs1 * 2:
        _record_incomparable(INCOMPARABLE_BLOCK_SIZE)
        return DigestComparison(0, False, INCOMPARABLE_BLOCK_SIZE)
    if d1.is_empty or d2.is_empty:
        _record_incomparable(INCOMPARABLE_EMPTY)
        return DigestComparison(0, False, INCOMPARABLE_EMPTY)

    if bs1 == bs2:
        score = max(score_signatures(d1.chunk, d2.chunk, bs1),
                    score_signatures(d1.double_chunk, d2.double_chunk,
                                     bs1 * 2))
        short = (_pair_is_short(d1.chunk, d2.chunk)
                 and _pair_is_short(d1.double_chunk, d2.double_chunk))
    elif bs1 == bs2 * 2:
        # d1's base signature was computed at the same block size as d2's
        # double signature.
        score = score_signatures(d1.chunk, d2.double_chunk, bs1)
        short = _pair_is_short(d1.chunk, d2.double_chunk)
    else:  # bs2 == bs1 * 2
        score = score_signatures(d1.double_chunk, d2.chunk, bs2)
        short = _pair_is_short(d1.double_chunk, d2.chunk)

    if score == 0 and short:
        _record_incomparable(INCOMPARABLE_SHORT_SIGNATURE)
        return DigestComparison(0, False, INCOMPARABLE_SHORT_SIGNATURE)
    return DigestComparison(int(score), True, COMPARABLE)


def compare_digests(d1: SsdeepDigest | str, d2: SsdeepDigest | str) -> int:
    """SSDeep similarity score (0–100) between two digests.

    Accepts :class:`SsdeepDigest` instances or digest strings.  The
    typed variant :func:`compare_digests_detailed` additionally reports
    whether a 0 meant "dissimilar" or "incomparable".
    """

    return compare_digests_detailed(d1, d2).score


def compare_digest_strings(digest1: str, digest2: str) -> int:
    """Alias of :func:`compare_digests` for string inputs."""

    return compare_digests(digest1, digest2)


def pairwise_scores(digests: Iterable[SsdeepDigest | str]) -> list[list[int]]:
    """Dense pairwise score matrix between a small set of digests.

    Intended for reporting and examples (e.g. the Table 2 style
    comparison); the large-scale feature matrix uses
    :mod:`repro.features.similarity` instead.
    """

    parsed = [SsdeepDigest.parse(d) if isinstance(d, str) else d for d in digests]
    n = len(parsed)
    matrix = [[0] * n for _ in range(n)]
    for i in range(n):
        matrix[i][i] = 100 if not parsed[i].is_empty else 0
        for j in range(i + 1, n):
            score = compare_digests(parsed[i], parsed[j])
            matrix[i][j] = score
            matrix[j][i] = score
    return matrix
