"""Context Triggered Piecewise Hashing (SSDeep digests).

This module turns raw bytes into SSDeep digests of the canonical form
``block_size:signature:double_block_signature``:

* the block size starts at the smallest power-of-two multiple of
  :data:`MIN_BLOCKSIZE` such that the expected signature length is at
  most :data:`SPAMSUM_LENGTH` characters, and is halved (and the digest
  recomputed) while the signature turns out shorter than
  ``SPAMSUM_LENGTH / 2`` — exactly the retry loop of the spamsum
  reference implementation;
* the rolling-hash trigger scan is fully vectorised
  (:func:`repro.hashing.rolling.rolling_hash_values`), so re-trying a
  smaller block size only costs a cheap modulo over the precomputed
  trigger array plus the per-chunk 6-bit FNV scan.

The digest is represented by :class:`SsdeepDigest`, which also handles
parsing and validation of digest strings (needed when loading feature
stores from disk).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..exceptions import DigestFormatError, HashingError
from .b64 import B64_ALPHABET, is_digest_alphabet
from .fnv import FNV_INIT, piecewise_low6
from .rolling import rolling_hash_values

__all__ = [
    "MIN_BLOCKSIZE",
    "SPAMSUM_LENGTH",
    "ADAPTIVE_SIZE_BANDS",
    "SsdeepDigest",
    "FuzzyHasher",
    "fuzzy_hash",
    "fuzzy_hash_file",
]

#: Smallest block size ever used.
MIN_BLOCKSIZE = 3
#: Maximum signature length in characters.
SPAMSUM_LENGTH = 64

#: Size-adaptive hashing bands: ``(upper_bound_bytes, min_blocksize,
#: spamsum_length)``, tried in order; ``None`` bounds the last band.
#: Small inputs keep the reference parameters; larger inputs get longer
#: signatures (more chunks summarised per digest) and a raised block
#: floor, which preserves resolution the fixed 64-character budget
#: loses on multi-megabyte binaries.  **Digests from different bands
#: are not score-comparable** (the 0–100 scale is normalised by
#: ``spamsum_length``), so adaptive mode is off by default and a corpus
#: must be hashed entirely with the same setting — see the README's
#: comparability rule.
ADAPTIVE_SIZE_BANDS: tuple[tuple[int | None, int, int], ...] = (
    (16 * 1024, MIN_BLOCKSIZE, SPAMSUM_LENGTH),
    (1024 * 1024, MIN_BLOCKSIZE, 96),
    (None, 2 * MIN_BLOCKSIZE, 128),
)
#: Default upper bound on the bytes :meth:`FuzzyHasher.hash_file` will load.
MAX_FILE_BYTES = 1 << 30
#: Default read size for the chunked file-reading loop.
FILE_READ_CHUNK = 1 << 20


@dataclass(frozen=True)
class SsdeepDigest:
    """Parsed SSDeep digest: ``block_size:chunk:double_chunk``."""

    block_size: int
    chunk: str
    double_chunk: str

    def __str__(self) -> str:  # canonical digest string
        return f"{self.block_size}:{self.chunk}:{self.double_chunk}"

    @classmethod
    def parse(cls, digest: str) -> "SsdeepDigest":
        """Parse a digest string, validating structure and alphabet."""

        if not isinstance(digest, str):
            raise DigestFormatError(
                f"digest must be a string, got {type(digest).__name__}"
            )
        parts = digest.split(":")
        if len(parts) != 3:
            raise DigestFormatError(
                f"digest must have 3 colon-separated fields, got {digest!r}"
            )
        raw_bs, chunk, double_chunk = parts
        try:
            block_size = int(raw_bs)
        except ValueError as exc:
            raise DigestFormatError(f"invalid block size in digest {digest!r}") from exc
        if block_size < MIN_BLOCKSIZE:
            raise DigestFormatError(
                f"block size must be >= {MIN_BLOCKSIZE}, got {block_size}"
            )
        if not is_digest_alphabet(chunk) or not is_digest_alphabet(double_chunk):
            raise DigestFormatError(
                f"digest {digest!r} contains characters outside the base64 alphabet"
            )
        return cls(block_size=block_size, chunk=chunk, double_chunk=double_chunk)

    @property
    def is_empty(self) -> bool:
        """True if the digest was computed from empty input."""

        return not self.chunk and not self.double_chunk


def _initial_block_size(length: int) -> int:
    """Smallest admissible block size for an input of ``length`` bytes."""

    block_size = MIN_BLOCKSIZE
    while block_size * SPAMSUM_LENGTH < length:
        block_size *= 2
    return block_size


class FuzzyHasher:
    """Compute SSDeep digests of byte strings and files.

    Parameters
    ----------
    min_blocksize:
        Smallest block size the retry loop may reach (default 3).
    spamsum_length:
        Maximum signature length (default 64).  Exposed mainly so that
        property-based tests can exercise degenerate configurations.
    adaptive:
        When True, ``min_blocksize``/``spamsum_length`` are chosen per
        input from :data:`ADAPTIVE_SIZE_BANDS` by input size, overriding
        the two parameters above.  Off by default because digests hashed
        in different bands are **not** score-comparable: mix adaptive
        and non-adaptive digests in one corpus and the cross-band scores
        are meaningless.
    """

    def __init__(self, *, min_blocksize: int = MIN_BLOCKSIZE,
                 spamsum_length: int = SPAMSUM_LENGTH,
                 adaptive: bool = False) -> None:
        if min_blocksize < 1:
            raise HashingError("min_blocksize must be >= 1")
        if spamsum_length < 2 or spamsum_length % 2:
            raise HashingError("spamsum_length must be an even integer >= 2")
        self.min_blocksize = int(min_blocksize)
        self.spamsum_length = int(spamsum_length)
        self.adaptive = bool(adaptive)

    # ------------------------------------------------------------------ API
    def hash(self, data: bytes | bytearray | memoryview | str) -> SsdeepDigest:
        """Return the :class:`SsdeepDigest` of ``data``.

        Text inputs are encoded as UTF-8 first (the paper hashes the
        textual output of ``strings`` and ``nm`` as well as raw bytes).
        """

        if isinstance(data, str):
            data = data.encode("utf-8", errors="replace")
        elif not isinstance(data, (bytes, bytearray)):
            data = bytes(data)

        min_bs, spamsum = self._params_for(len(data))
        if not data:
            return SsdeepDigest(block_size=min_bs, chunk="", double_chunk="")

        roll = rolling_hash_values(data)
        block_size = self._initial_block_size(len(data), min_bs, spamsum)

        while True:
            chunk, double_chunk = self._digest_at(data, roll, block_size, spamsum)
            if block_size > min_bs and len(chunk) < spamsum // 2:
                block_size //= 2
                continue
            return SsdeepDigest(block_size=block_size, chunk=chunk,
                                double_chunk=double_chunk)

    def hash_file(self, path: str | os.PathLike, *,
                  max_bytes: int | None = MAX_FILE_BYTES,
                  chunk_size: int = FILE_READ_CHUNK) -> SsdeepDigest:
        """Hash the contents of a file.

        The file is read in bounded ``chunk_size`` slices rather than one
        unbounded ``read()``; ``max_bytes`` (default 1 GiB, ``None``
        disables the cap) bounds total memory and raises
        :class:`~repro.exceptions.HashingError` for larger files —
        oversized regular files are rejected from their ``stat`` size
        before any byte is read.  The block-size retry loop of the
        digest still needs the whole input in memory, so the cap — not
        the chunking — is what makes the memory ceiling explicit; the
        buffer is preallocated from the ``stat`` size and handed to
        :meth:`hash` without an extra copy.
        """

        if chunk_size < 1:
            raise HashingError("chunk_size must be >= 1")
        if max_bytes is not None and max_bytes < 0:
            raise HashingError("max_bytes must be >= 0 (or None to disable)")

        def over_limit() -> HashingError:
            return HashingError(
                f"{os.fspath(path)} exceeds the {max_bytes}-byte hashing "
                f"limit; raise max_bytes (or pass None) to hash it anyway")

        with open(path, "rb") as fh:
            expected = os.fstat(fh.fileno()).st_size
            if max_bytes is not None and expected > max_bytes:
                raise over_limit()
            buffer = bytearray(expected)
            view = memoryview(buffer)
            filled = 0
            while filled < expected:
                n_read = fh.readinto(view[filled:filled + chunk_size])
                if not n_read:
                    break
                filled += n_read
            del view
            if filled < expected:          # file shrank while reading
                del buffer[filled:]
            else:
                # The file may have grown past its stat size (pipes and
                # procfs report 0); keep reading in bounded chunks.
                while True:
                    chunk = fh.read(chunk_size)
                    if not chunk:
                        break
                    buffer.extend(chunk)
                    if max_bytes is not None and len(buffer) > max_bytes:
                        raise over_limit()
        return self.hash(buffer)

    def hash_many(self, items: Iterable[bytes | str]) -> list[SsdeepDigest]:
        """Hash an iterable of inputs, preserving order."""

        return [self.hash(item) for item in items]

    # ----------------------------------------------------------- internals
    def _params_for(self, length: int) -> tuple[int, int]:
        """``(min_blocksize, spamsum_length)`` for one input."""

        if not self.adaptive:
            return self.min_blocksize, self.spamsum_length
        for bound, min_bs, spamsum in ADAPTIVE_SIZE_BANDS:
            if bound is None or length < bound:
                return min_bs, spamsum
        return self.min_blocksize, self.spamsum_length  # pragma: no cover

    def _initial_block_size(self, length: int,
                            min_blocksize: int | None = None,
                            spamsum_length: int | None = None) -> int:
        block_size = (self.min_blocksize if min_blocksize is None
                      else min_blocksize)
        spamsum = (self.spamsum_length if spamsum_length is None
                   else spamsum_length)
        while block_size * spamsum < length:
            block_size *= 2
        return block_size

    def _digest_at(self, data: bytes, roll: np.ndarray, block_size: int,
                   spamsum_length: int | None = None) -> tuple[str, str]:
        """Compute both signatures for a fixed block size."""

        spamsum = (self.spamsum_length if spamsum_length is None
                   else spamsum_length)
        chunk = self._signature(data, roll, block_size, spamsum)
        double_chunk = self._signature(data, roll, block_size * 2,
                                       spamsum // 2)
        return chunk, double_chunk

    def _signature(self, data: bytes, roll: np.ndarray, block_size: int,
                   max_length: int) -> str:
        """One signature: trigger positions -> per-chunk base64 characters."""

        triggers = np.flatnonzero(roll % np.uint32(block_size) == np.uint32(block_size - 1))
        # Only the first (max_length - 1) triggers start new characters; the
        # final character summarises everything after the last used trigger.
        used = triggers[: max_length - 1]
        chunk_states, tail_state = piecewise_low6(data, used, FNV_INIT)
        chars = [B64_ALPHABET[s] for s in chunk_states]
        # The reference implementation only appends the trailing character
        # when the rolling hash is non-zero at the end of the data (i.e. the
        # input does not end in a run of zero bytes long enough to zero the
        # window).
        if int(roll[-1]) != 0:
            chars.append(B64_ALPHABET[tail_state])
        return "".join(chars)


_DEFAULT_HASHER = FuzzyHasher()


def fuzzy_hash(data: bytes | bytearray | memoryview | str) -> str:
    """Convenience function: SSDeep digest string of ``data``."""

    return str(_DEFAULT_HASHER.hash(data))


def fuzzy_hash_file(path: str | os.PathLike) -> str:
    """Convenience function: SSDeep digest string of a file's contents."""

    return str(_DEFAULT_HASHER.hash_file(path))
