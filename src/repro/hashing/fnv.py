"""FNV-style piecewise chunk hash used by SSDeep.

Each chunk between two rolling-hash trigger points is summarised by an
FNV-1 style hash ``h = ((h * FNV_PRIME) XOR byte) mod 2**32`` seeded
with ``FNV_INIT``; only the low 6 bits of the final value are kept and
encoded as one base64 character.

Because multiplication and XOR both commute with "take the low 6 bits",
the digest character of a chunk can be computed with a 6-bit state
machine.  :func:`piecewise_low6` exploits this with a pre-computed
``64 x 256`` transition table, which makes the per-byte Python loop
(the only part of digest computation that cannot be fully vectorised)
about three times faster than doing 32-bit arithmetic per byte.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["FNV_INIT", "FNV_PRIME", "FNV64_INIT", "FNV64_PRIME",
           "fnv_update", "fnv_hash", "fnv64_hash", "piecewise_low6"]

#: Initial value of the piecewise hash (the spamsum HASH_INIT constant).
FNV_INIT = 0x28021967
#: FNV-1 32-bit prime.
FNV_PRIME = 0x01000193

#: FNV-1 64-bit offset basis (used by the index's hashed gram postings).
FNV64_INIT = 0xCBF29CE484222325
#: FNV-1 64-bit prime.
FNV64_PRIME = 0x00000100000001B3

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF
_LOW6 = 0x3F


def fnv_update(h: int, byte: int) -> int:
    """One FNV step in 32-bit arithmetic (reference semantics)."""

    return ((h * FNV_PRIME) & _MASK32) ^ (byte & 0xFF)


def fnv_hash(data: bytes, init: int = FNV_INIT) -> int:
    """Full 32-bit FNV hash of ``data`` (used by tests as the reference)."""

    h = init & _MASK32
    for byte in data:
        h = fnv_update(h, byte)
    return h


def fnv64_hash(data: bytes, init: int = FNV64_INIT) -> int:
    """64-bit FNV-1 hash of ``data`` — the reference for the hashed
    ``(block_size, gram)`` posting keys of :mod:`repro.index.postings`."""

    h = init & _MASK64
    for byte in data:
        h = ((h * FNV64_PRIME) & _MASK64) ^ (byte & 0xFF)
    return h


def _build_low6_table() -> list[bytes]:
    """Transition table for the 6-bit projection of the FNV state.

    ``table[state][byte]`` is the next 6-bit state.  Stored as a list of
    64 ``bytes`` objects of length 256 so lookups stay allocation-free.
    """

    prime_low6 = FNV_PRIME & _LOW6
    table: list[bytes] = []
    for state in range(64):
        row = bytearray(256)
        mult = (state * prime_low6) & _LOW6
        for byte in range(256):
            row[byte] = mult ^ (byte & _LOW6)
        table.append(bytes(row))
    return table


_LOW6_TABLE = _build_low6_table()


def piecewise_low6(data: bytes, boundaries: Sequence[int] | np.ndarray,
                   init: int = FNV_INIT) -> tuple[list[int], int]:
    """Low-6-bit FNV state at each chunk boundary plus the trailing state.

    Parameters
    ----------
    data:
        The raw input bytes.
    boundaries:
        Sorted, strictly increasing byte indices at which the rolling
        hash triggered.  Chunk ``k`` covers
        ``data[boundaries[k-1] + 1 : boundaries[k] + 1]`` (the trigger
        byte belongs to the chunk it terminates), and the hash state is
        reset after every boundary.
    init:
        Initial 32-bit hash value; only its low 6 bits matter here.

    Returns
    -------
    (chunk_states, tail_state):
        ``chunk_states[k]`` is the 6-bit value at boundary ``k``;
        ``tail_state`` is the 6-bit value accumulated after the last
        boundary up to the end of ``data`` (the value encoded as the
        final digest character).
    """

    table = _LOW6_TABLE
    start_state = init & _LOW6
    state = start_state
    chunk_states: list[int] = []
    pos = 0
    for boundary in boundaries:
        boundary = int(boundary)
        segment = data[pos:boundary + 1]
        for byte in segment:
            state = table[state][byte]
        chunk_states.append(state)
        state = start_state
        pos = boundary + 1
    for byte in data[pos:]:
        state = table[state][byte]
    return chunk_states, state
