"""Cryptographic digests for the exact-match baseline.

The paper motivates fuzzy hashing by contrasting it with cryptographic
hashes, which "can only be used to find exact matches" (Section 1, and
the prior work of Yamamoto et al.).  The exact-match baseline in
:mod:`repro.core.baselines` therefore needs plain cryptographic digests
of the same three feature inputs (raw file, strings output, symbol
list); this module wraps :mod:`hashlib` with a small, typed API.
"""

from __future__ import annotations

import hashlib
import os

from ..exceptions import ValidationError

__all__ = ["SUPPORTED_ALGORITHMS", "crypto_digest", "crypto_digest_file"]

#: Algorithms accepted by :func:`crypto_digest`.
SUPPORTED_ALGORITHMS = ("md5", "sha1", "sha256", "sha512")


def crypto_digest(data: bytes | str, algorithm: str = "sha256") -> str:
    """Hex digest of ``data`` under the given cryptographic hash."""

    if algorithm not in SUPPORTED_ALGORITHMS:
        raise ValidationError(
            f"algorithm must be one of {SUPPORTED_ALGORITHMS}, got {algorithm!r}"
        )
    if isinstance(data, str):
        data = data.encode("utf-8", errors="replace")
    hasher = hashlib.new(algorithm)
    hasher.update(data)
    return hasher.hexdigest()


def crypto_digest_file(path: str | os.PathLike, algorithm: str = "sha256",
                       chunk_size: int = 1 << 20) -> str:
    """Hex digest of a file's contents, streamed in ``chunk_size`` blocks."""

    if algorithm not in SUPPORTED_ALGORITHMS:
        raise ValidationError(
            f"algorithm must be one of {SUPPORTED_ALGORITHMS}, got {algorithm!r}"
        )
    hasher = hashlib.new(algorithm)
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk_size)
            if not block:
                break
            hasher.update(block)
    return hasher.hexdigest()
