"""Scaling of edit distances into SSDeep similarity scores.

SSDeep reports similarity on a 0–100 scale where 0 means "no similarity"
and 100 means "the inputs are (structurally) identical" (paper,
Section 3).  The reference implementation derives the score from a
cost-weighted restricted Damerau–Levenshtein distance between the two
digest chunk strings:

1. compute the weighted edit distance ``d`` (insert/delete cost 1,
   substitution 3, transposition 5);
2. rescale by the combined digest length so that digests of different
   lengths are comparable:  ``d' = d * 64 / (len1 + len2)``;
3. map onto 0–100: ``score = 100 - 100 * d' / 64``;
4. for small block sizes, cap the score so that two very short digests
   cannot spuriously reach a high score.

Both the generic scaling helper and the exact SSDeep formula are
exposed, because the feature-matrix code wants to run step 1 in a batch
(:class:`repro.distance.batch.BatchEditDistance`) and apply steps 2–4
afterwards as vectorised NumPy arithmetic.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SPAMSUM_LENGTH",
    "MIN_BLOCKSIZE",
    "ROLLING_WINDOW",
    "COMPARABLE",
    "INCOMPARABLE_BLOCK_SIZE",
    "INCOMPARABLE_EMPTY",
    "INCOMPARABLE_SHORT_SIGNATURE",
    "INCOMPARABLE_REASONS",
    "scale_edit_distance",
    "ssdeep_score_from_distance",
]

#: Maximum number of base64 characters in an SSDeep digest chunk.
SPAMSUM_LENGTH = 64
#: Smallest block size SSDeep ever uses.
MIN_BLOCKSIZE = 3
#: Size of the rolling-hash window.
ROLLING_WINDOW = 7

# ------------------------------------------------------- comparability
# A zero score hides two very different facts: "these inputs share no
# structure" versus "these digests *cannot* be scored against each
# other".  The reasons below type the second case so callers (and the
# serving /metrics endpoint) can tell them apart.

#: The pair was genuinely scored; a 0 means structural dissimilarity.
COMPARABLE = "comparable"
#: Block sizes differ by more than one factor of two.
INCOMPARABLE_BLOCK_SIZE = "block-size-mismatch"
#: At least one digest carries no signature content.
INCOMPARABLE_EMPTY = "empty-digest"
#: Every comparable signature pair has a side shorter than the 7-gram
#: window, so even identical content can never score above zero.
INCOMPARABLE_SHORT_SIGNATURE = "short-signature"

#: Every typed reason a digest pair can be incomparable.
INCOMPARABLE_REASONS = (INCOMPARABLE_BLOCK_SIZE, INCOMPARABLE_EMPTY,
                        INCOMPARABLE_SHORT_SIGNATURE)


def scale_edit_distance(distance, len1, len2,
                        digest_length: int = SPAMSUM_LENGTH):
    """Rescale raw edit distances by digest length onto ``[0, 100]``.

    Implements steps 2–3 above without the block-size cap; accepts
    scalars or NumPy arrays (broadcasting applies).  Returns floats in
    ``[0, 100]`` where higher means more similar.
    """

    distance = np.asarray(distance, dtype=np.float64)
    total_len = np.asarray(len1, dtype=np.float64) + np.asarray(len2, dtype=np.float64)
    total_len = np.where(total_len <= 0, 1.0, total_len)
    rescaled = distance * digest_length / total_len
    score = 100.0 - (100.0 * rescaled) / digest_length
    return np.clip(score, 0.0, 100.0)


def ssdeep_score_from_distance(distance, len1, len2, block_size,
                               *,
                               digest_length: int = SPAMSUM_LENGTH,
                               min_blocksize: int = MIN_BLOCKSIZE,
                               rolling_window: int = ROLLING_WINDOW):
    """Exact SSDeep score computation from a weighted edit distance.

    Mirrors ``score_strings`` from the reference implementation,
    including the small-block-size cap, but operates on scalars or NumPy
    arrays.  Returns integer scores in ``[0, 100]``.

    Parameters
    ----------
    distance:
        Weighted edit distance(s) between the two digest chunks
        (insert/delete 1, substitute 3, transpose 5).
    len1, len2:
        Lengths of the two digest chunks.
    block_size:
        The block size at which the two chunks were computed (they must
        match for the comparison to be meaningful).
    """

    distance = np.asarray(distance, dtype=np.float64)
    len1 = np.asarray(len1, dtype=np.float64)
    len2 = np.asarray(len2, dtype=np.float64)
    block_size = np.asarray(block_size, dtype=np.float64)

    total_len = np.where((len1 + len2) <= 0, 1.0, len1 + len2)
    score = distance * digest_length / total_len
    score = (100.0 * score) / digest_length
    score = 100.0 - score
    score = np.clip(score, 0.0, 100.0)

    # Small block sizes cannot assert strong similarity: cap the score at
    # block_size / MIN_BLOCKSIZE * min(len1, len2), exactly as ssdeep does.
    threshold_block = (99 + rolling_window) // rolling_window * min_blocksize
    cap = block_size / min_blocksize * np.minimum(len1, len2)
    score = np.where(block_size < threshold_block, np.minimum(score, cap), score)

    result = np.floor(np.clip(score, 0.0, 100.0)).astype(np.int64)
    if result.ndim == 0:
        return int(result)
    return result
