"""Levenshtein (insert/delete/substitute) edit distance.

Two implementations are provided:

* :func:`levenshtein_distance` — a straightforward two-row dynamic
  program in pure Python.  Used as the reference in tests and for very
  short strings where NumPy overhead dominates.
* :func:`levenshtein_distance_numpy` — a row-vectorised NumPy variant.
  The column dependency introduced by insertions is resolved with the
  classic ``minimum.accumulate`` trick, so each DP row costs a handful
  of vector operations instead of a Python loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["levenshtein_distance", "levenshtein_distance_numpy"]


def levenshtein_distance(a: str | bytes, b: str | bytes) -> int:
    """Return the Levenshtein distance between sequences ``a`` and ``b``.

    Insertions, deletions and substitutions all cost 1.  Runs in
    ``O(|a| * |b|)`` time and ``O(min(|a|, |b|))`` memory.
    """

    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)

    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost  # substitution / match
            )
        previous, current = current, previous
    return previous[len(b)]


def levenshtein_distance_numpy(a: str | bytes, b: str | bytes) -> int:
    """NumPy row-DP Levenshtein distance (same result as the reference).

    Each DP row is computed with vectorised operations.  The serial
    dependency along the row (insertions) is handled by observing that
    ``row[j] = min(row[j], row[j-1] + 1)`` is equivalent to
    ``row = minimum.accumulate(row - arange) + arange`` where ``arange``
    is the column index.
    """

    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)

    a_arr = _as_codes(a)
    b_arr = _as_codes(b)
    n = b_arr.size

    cols = np.arange(n + 1, dtype=np.int64)
    previous = cols.copy()
    for i in range(1, a_arr.size + 1):
        # Candidate values ignoring the insertion dependency.
        substitution = previous[:-1] + (b_arr != a_arr[i - 1])
        deletion = previous[1:] + 1
        row = np.empty(n + 1, dtype=np.int64)
        row[0] = i
        row[1:] = np.minimum(substitution, deletion)
        # Resolve insertions with a prefix-minimum scan.
        row = np.minimum.accumulate(row - cols) + cols
        previous = row
    return int(previous[-1])


def _as_codes(s: str | bytes) -> np.ndarray:
    """Encode a string or bytes object as an integer code array."""

    if isinstance(s, (bytes, bytearray, memoryview)):
        return np.frombuffer(bytes(s), dtype=np.uint8).astype(np.int64)
    return np.array([ord(c) for c in s], dtype=np.int64)
