"""Batched edit-distance engine.

Building the similarity feature matrix requires millions of pairwise
SSDeep digest comparisons (every test sample against every training
anchor, for three hash types).  Evaluating those one pair at a time in
Python is the dominant cost of the whole pipeline, so this module
implements the dynamic program *batched over pairs*:

* all first strings are packed into one ``(n_pairs, max_len_a)`` integer
  matrix, all second strings into ``(n_pairs, max_len_b)``;
* the DP advances row by row (over positions of the first string); for
  each row the column recurrence is vectorised over *both* the batch and
  the column dimension.  The serial dependency introduced by insertions
  is removed with a prefix-minimum (``minimum.accumulate``) transform,
  which is exact for any constant insertion cost;
* adjacent transpositions (the Damerau extension used by SSDeep) only
  reference rows ``i-1`` and ``i-2``, so they do not break the
  vectorisation.

The result is identical to evaluating
:func:`repro.distance.damerau.weighted_edit_distance` (or
:func:`~repro.distance.damerau.osa_distance` with unit costs) pair by
pair; the unit tests assert exact agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["BatchEditDistance", "batch_edit_distances"]

# Distinct padding sentinels for the two sides so padded cells never match.
_PAD_A = -1
_PAD_B = -2


def _pack(strings: Sequence[str | bytes], pad_value: int) -> tuple[np.ndarray, np.ndarray]:
    """Pack variable-length strings into a padded ``int32`` code matrix.

    Returns ``(codes, lengths)`` where ``codes`` has shape
    ``(n, max_len)`` and unused positions hold ``pad_value``.  ``int32``
    covers the whole Unicode range (code points reach 0x10FFFF, past
    ``int16``).
    """

    n = len(strings)
    lengths = np.fromiter((len(s) for s in strings), dtype=np.int64, count=n)
    max_len = int(lengths.max()) if n else 0
    codes = np.full((n, max(max_len, 1)), pad_value, dtype=np.int32)
    if max_len == 0:
        return codes, lengths
    if all(isinstance(s, str) for s in strings):
        # One bulk UTF-32 decode beats a per-character Python loop: the
        # concatenation yields exact code points (astral planes included)
        # as a flat uint32 vector, scattered into rows via the offsets.
        # surrogatepass keeps lone surrogates (e.g. surrogateescape-decoded
        # input) representable, exactly like ord() was.
        flat = np.frombuffer(
            "".join(strings).encode("utf-32-le", errors="surrogatepass"),
            dtype="<u4").astype(np.int32)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        positions = np.arange(len(flat), dtype=np.int64) - \
            np.repeat(offsets[:-1], lengths)
        codes[np.repeat(np.arange(n, dtype=np.int64), lengths),
              positions] = flat
        return codes, lengths
    for idx, s in enumerate(strings):
        if not s:
            continue
        if isinstance(s, (bytes, bytearray, memoryview)):
            row = np.frombuffer(bytes(s), dtype=np.uint8).astype(np.int32)
        else:
            row = np.fromiter((ord(c) for c in s), dtype=np.int32, count=len(s))
        codes[idx, : len(s)] = row
    return codes, lengths


@dataclass(frozen=True)
class EditCosts:
    """Edit operation costs used by the batched DP."""

    insert: int = 1
    delete: int = 1
    substitute: int = 1
    transpose: int = 1

    def validate(self) -> "EditCosts":
        for name in ("insert", "delete", "substitute", "transpose"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cost must be non-negative")
        return self


class BatchEditDistance:
    """Vectorised restricted Damerau–Levenshtein distance over string pairs.

    Parameters
    ----------
    insert_cost, delete_cost, substitute_cost, transpose_cost:
        Operation costs.  The defaults (1/1/1/1) give the plain
        restricted Damerau–Levenshtein distance; SSDeep scoring uses
        (1/1/3/5), see :class:`repro.distance.scoring`.
    chunk_size:
        Maximum number of pairs processed per DP sweep.  Larger chunks
        amortise Python overhead but use more memory
        (``O(chunk_size * max_len)`` int32 cells per DP row).
    """

    def __init__(self, *, insert_cost: int = 1, delete_cost: int = 1,
                 substitute_cost: int = 1, transpose_cost: int = 1,
                 chunk_size: int = 65536) -> None:
        self.costs = EditCosts(insert_cost, delete_cost,
                               substitute_cost, transpose_cost).validate()
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)

    # ------------------------------------------------------------------ API
    def distances(self, pairs: Iterable[tuple[str | bytes, str | bytes]]) -> np.ndarray:
        """Return the edit distance for every ``(a, b)`` pair."""

        pairs = list(pairs)
        left = [p[0] for p in pairs]
        right = [p[1] for p in pairs]
        return self.distances_two_lists(left, right)

    def distances_two_lists(self, left: Sequence[str | bytes],
                            right: Sequence[str | bytes]) -> np.ndarray:
        """Return element-wise distances between ``left[i]`` and ``right[i]``."""

        if len(left) != len(right):
            raise ValueError(
                f"left and right must have the same length, got {len(left)} and {len(right)}"
            )
        n = len(left)
        out = np.zeros(n, dtype=np.int64)
        for start in range(0, n, self.chunk_size):
            stop = min(start + self.chunk_size, n)
            out[start:stop] = self._chunk(left[start:stop], right[start:stop])
        return out

    def one_vs_many(self, query: str | bytes,
                    references: Sequence[str | bytes]) -> np.ndarray:
        """Distances between a single query string and many references."""

        return self.distances_two_lists([query] * len(references), references)

    # ----------------------------------------------------------- internals
    def _chunk(self, left: Sequence[str | bytes],
               right: Sequence[str | bytes]) -> np.ndarray:
        n = len(left)
        if n == 0:
            return np.zeros(0, dtype=np.int64)

        a_codes, a_len = _pack(left, _PAD_A)
        b_codes, b_len = _pack(right, _PAD_B)

        # Sort by descending first-string length: pairs finish at row
        # ``a_len`` of the DP, so the still-active pairs always form a
        # prefix and every row sweep shrinks to exactly the live rows.
        order = np.argsort(-a_len, kind="stable")
        a_codes = a_codes[order]
        b_codes = b_codes[order]
        a_len_s = a_len[order]
        b_len_s = b_len[order]
        max_a = int(a_len_s[0]) if n else 0
        max_b = int(b_len.max()) if n else 0

        # Cell values are bounded by the all-deletions-plus-all-insertions
        # path, so short inputs (e.g. 64-char SSDeep signatures) run the
        # whole DP in int16 — half the bandwidth again over int32, which
        # remains the fallback for long strings.
        costs = self.costs
        max_cost = max(costs.insert, costs.delete,
                       costs.substitute, costs.transpose)
        bound = (max_a + max_b + 2) * max(max_cost, 1)
        dtype = np.int16 if bound < np.iinfo(np.int16).max else np.int32
        cols = np.arange(max_b + 1, dtype=dtype)
        ins_ramp = cols * dtype(costs.insert)

        # DP rows, shape (n, max_b + 1).
        prev2 = np.zeros((n, max_b + 1), dtype=dtype)
        prev1 = np.broadcast_to(ins_ramp, (n, max_b + 1)).copy()
        result_s = np.empty(n, dtype=np.int64)

        # Pairs whose first string is empty: distance = len(b) * insert.
        empty_a = a_len_s == 0
        if np.any(empty_a):
            result_s[empty_a] = b_len_s[empty_a] * costs.insert
        if max_b == 0:
            # Every second string is empty: remaining pairs are pure deletions.
            result_s[~empty_a] = a_len_s[~empty_a] * costs.delete
            result = np.empty(n, dtype=np.int64)
            result[order] = result_s
            return result

        neg_a_len = -a_len_s
        for i in range(1, max_a + 1):
            # Rows still running: a_len_s >= i, a prefix of the sort order.
            k = int(np.searchsorted(neg_a_len, -i, side="right"))
            ai = a_codes[:k, i - 1][:, None]                     # (k, 1)
            b_k = b_codes[:k]
            p1 = prev1[:k]
            mismatch = (b_k != ai)                               # (k, max_b)

            # Candidate costs that do not depend on the current row.
            substitution = p1[:, :-1] + mismatch * dtype(costs.substitute)
            deletion = p1[:, 1:] + dtype(costs.delete)
            cand = np.minimum(substitution, deletion)

            if i > 1 and max_b > 1:
                # Transposition: a[i-1] == b[j-2] and a[i-2] == b[j-1].
                prev_ai = a_codes[:k, i - 2][:, None]
                swap = (b_k[:, :-1] == ai) & (b_k[:, 1:] == prev_ai) \
                    & mismatch[:, 1:]
                transposition = prev2[:k, :-2] + dtype(costs.transpose)
                cand[:, 1:] = np.where(swap, np.minimum(cand[:, 1:], transposition),
                                       cand[:, 1:])

            current = np.empty((k, max_b + 1), dtype=dtype)
            current[:, 0] = i * costs.delete
            current[:, 1:] = cand
            # Resolve the insertion dependency along the row with a
            # prefix-minimum scan (exact for constant insertion cost).
            current -= ins_ramp
            np.minimum.accumulate(current, axis=1, out=current)
            current += ins_ramp

            # Capture finished pairs whose first string has length i.
            done = a_len_s[:k] == i
            if np.any(done):
                rows = np.flatnonzero(done)
                result_s[rows] = current[rows, b_len_s[rows]]

            # Recycle buffers; rows at and beyond k are never read again
            # because the active prefix only shrinks.
            prev2, prev1 = prev1, prev2
            prev1[:k] = current

        result = np.empty(n, dtype=np.int64)
        result[order] = result_s
        return result


def batch_edit_distances(left: Sequence[str | bytes],
                         right: Sequence[str | bytes],
                         *,
                         insert_cost: int = 1,
                         delete_cost: int = 1,
                         substitute_cost: int = 1,
                         transpose_cost: int = 1,
                         chunk_size: int = 65536) -> np.ndarray:
    """Convenience wrapper: element-wise batched edit distances."""

    engine = BatchEditDistance(
        insert_cost=insert_cost,
        delete_cost=delete_cost,
        substitute_cost=substitute_cost,
        transpose_cost=transpose_cost,
        chunk_size=chunk_size,
    )
    return engine.distances_two_lists(left, right)
