"""Batched edit-distance engine.

Building the similarity feature matrix requires millions of pairwise
SSDeep digest comparisons (every test sample against every training
anchor, for three hash types).  Evaluating those one pair at a time in
Python is the dominant cost of the whole pipeline, so this module
implements the dynamic program *batched over pairs*:

* all first strings are packed into one ``(n_pairs, max_len_a)`` integer
  matrix, all second strings into ``(n_pairs, max_len_b)``;
* the DP advances row by row (over positions of the first string); for
  each row the column recurrence is vectorised over *both* the batch and
  the column dimension.  The serial dependency introduced by insertions
  is removed with a prefix-minimum (``minimum.accumulate``) transform,
  which is exact for any constant insertion cost;
* adjacent transpositions (the Damerau extension used by SSDeep) only
  reference rows ``i-1`` and ``i-2``, so they do not break the
  vectorisation.

The result is identical to evaluating
:func:`repro.distance.damerau.weighted_edit_distance` (or
:func:`~repro.distance.damerau.osa_distance` with unit costs) pair by
pair; the unit tests assert exact agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["BatchEditDistance", "batch_edit_distances"]

# Distinct padding sentinels for the two sides so padded cells never match.
_PAD_A = -1
_PAD_B = -2


def _pack(strings: Sequence[str | bytes], pad_value: int) -> tuple[np.ndarray, np.ndarray]:
    """Pack variable-length strings into a padded ``int32`` code matrix.

    Returns ``(codes, lengths)`` where ``codes`` has shape
    ``(n, max_len)`` and unused positions hold ``pad_value``.  ``int32``
    covers the whole Unicode range (code points reach 0x10FFFF, past
    ``int16``).
    """

    n = len(strings)
    lengths = np.fromiter((len(s) for s in strings), dtype=np.int64, count=n)
    max_len = int(lengths.max()) if n else 0
    codes = np.full((n, max(max_len, 1)), pad_value, dtype=np.int32)
    for idx, s in enumerate(strings):
        if not s:
            continue
        if isinstance(s, (bytes, bytearray, memoryview)):
            row = np.frombuffer(bytes(s), dtype=np.uint8).astype(np.int32)
        else:
            row = np.fromiter((ord(c) for c in s), dtype=np.int32, count=len(s))
        codes[idx, : len(s)] = row
    return codes, lengths


@dataclass(frozen=True)
class EditCosts:
    """Edit operation costs used by the batched DP."""

    insert: int = 1
    delete: int = 1
    substitute: int = 1
    transpose: int = 1

    def validate(self) -> "EditCosts":
        for name in ("insert", "delete", "substitute", "transpose"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cost must be non-negative")
        return self


class BatchEditDistance:
    """Vectorised restricted Damerau–Levenshtein distance over string pairs.

    Parameters
    ----------
    insert_cost, delete_cost, substitute_cost, transpose_cost:
        Operation costs.  The defaults (1/1/1/1) give the plain
        restricted Damerau–Levenshtein distance; SSDeep scoring uses
        (1/1/3/5), see :class:`repro.distance.scoring`.
    chunk_size:
        Maximum number of pairs processed per DP sweep.  Larger chunks
        amortise Python overhead but use more memory
        (``O(chunk_size * max_len)`` int32 cells per DP row).
    """

    def __init__(self, *, insert_cost: int = 1, delete_cost: int = 1,
                 substitute_cost: int = 1, transpose_cost: int = 1,
                 chunk_size: int = 65536) -> None:
        self.costs = EditCosts(insert_cost, delete_cost,
                               substitute_cost, transpose_cost).validate()
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)

    # ------------------------------------------------------------------ API
    def distances(self, pairs: Iterable[tuple[str | bytes, str | bytes]]) -> np.ndarray:
        """Return the edit distance for every ``(a, b)`` pair."""

        pairs = list(pairs)
        left = [p[0] for p in pairs]
        right = [p[1] for p in pairs]
        return self.distances_two_lists(left, right)

    def distances_two_lists(self, left: Sequence[str | bytes],
                            right: Sequence[str | bytes]) -> np.ndarray:
        """Return element-wise distances between ``left[i]`` and ``right[i]``."""

        if len(left) != len(right):
            raise ValueError(
                f"left and right must have the same length, got {len(left)} and {len(right)}"
            )
        n = len(left)
        out = np.zeros(n, dtype=np.int64)
        for start in range(0, n, self.chunk_size):
            stop = min(start + self.chunk_size, n)
            out[start:stop] = self._chunk(left[start:stop], right[start:stop])
        return out

    def one_vs_many(self, query: str | bytes,
                    references: Sequence[str | bytes]) -> np.ndarray:
        """Distances between a single query string and many references."""

        return self.distances_two_lists([query] * len(references), references)

    # ----------------------------------------------------------- internals
    def _chunk(self, left: Sequence[str | bytes],
               right: Sequence[str | bytes]) -> np.ndarray:
        n = len(left)
        if n == 0:
            return np.zeros(0, dtype=np.int64)

        a_codes, a_len = _pack(left, _PAD_A)
        b_codes, b_len = _pack(right, _PAD_B)
        max_a = int(a_len.max()) if n else 0
        max_b = int(b_len.max()) if n else 0

        costs = self.costs
        cols = np.arange(max_b + 1, dtype=np.int64)
        ins_ramp = cols * costs.insert

        # DP rows, shape (n, max_b + 1).
        prev2 = np.zeros((n, max_b + 1), dtype=np.int64)
        prev1 = np.broadcast_to(ins_ramp, (n, max_b + 1)).copy()
        result = np.empty(n, dtype=np.int64)

        # Pairs whose first string is empty: distance = len(b) * insert.
        empty_a = a_len == 0
        if np.any(empty_a):
            result[empty_a] = b_len[empty_a] * costs.insert
        if max_b == 0:
            # Every second string is empty: remaining pairs are pure deletions.
            result[~empty_a] = a_len[~empty_a] * costs.delete
            return result

        for i in range(1, max_a + 1):
            ai = a_codes[:, i - 1][:, None]                      # (n, 1)
            mismatch = (b_codes != ai).astype(np.int64)          # (n, max_b)

            # Candidate costs that do not depend on the current row.
            substitution = prev1[:, :-1] + mismatch * costs.substitute
            deletion = prev1[:, 1:] + costs.delete
            cand = np.minimum(substitution, deletion)

            if i > 1 and max_b > 1:
                # Transposition: a[i-1] == b[j-2] and a[i-2] == b[j-1].
                prev_ai = a_codes[:, i - 2][:, None]
                swap = (b_codes[:, :-1] == ai) & (b_codes[:, 1:] == prev_ai) & (mismatch[:, 1:] == 1)
                transposition = prev2[:, :-2] + costs.transpose
                cand[:, 1:] = np.where(swap, np.minimum(cand[:, 1:], transposition),
                                       cand[:, 1:])

            current = np.empty_like(prev1)
            current[:, 0] = i * costs.delete
            current[:, 1:] = cand
            # Resolve the insertion dependency along the row with a
            # prefix-minimum scan (exact for constant insertion cost).
            current = np.minimum.accumulate(current - ins_ramp, axis=1) + ins_ramp

            # Capture finished pairs whose first string has length i.
            done = a_len == i
            if np.any(done):
                result[done] = current[done, b_len[done]]

            prev2, prev1 = prev1, current

        return result


def batch_edit_distances(left: Sequence[str | bytes],
                         right: Sequence[str | bytes],
                         *,
                         insert_cost: int = 1,
                         delete_cost: int = 1,
                         substitute_cost: int = 1,
                         transpose_cost: int = 1,
                         chunk_size: int = 65536) -> np.ndarray:
    """Convenience wrapper: element-wise batched edit distances."""

    engine = BatchEditDistance(
        insert_cost=insert_cost,
        delete_cost=delete_cost,
        substitute_cost=substitute_cost,
        transpose_cost=transpose_cost,
        chunk_size=chunk_size,
    )
    return engine.distances_two_lists(left, right)
