"""Edit-distance substrate.

SSDeep similarity scores are derived from an edit distance between the
two digest strings (the paper uses the Damerau–Levenshtein distance,
Eq. 1).  This subpackage provides:

* :mod:`repro.distance.levenshtein` — classic Levenshtein distance
  (pure-Python reference and a NumPy row-DP implementation),
* :mod:`repro.distance.damerau` — restricted (optimal string alignment)
  and unrestricted Damerau–Levenshtein distances,
* :mod:`repro.distance.batch` — a batched NumPy dynamic-programming
  engine that evaluates thousands of string pairs at once (the hot path
  when building the similarity feature matrix),
* :mod:`repro.distance.scoring` — SSDeep's scaling of the edit distance
  into a 0–100 similarity score.
"""

from .levenshtein import levenshtein_distance, levenshtein_distance_numpy
from .damerau import (
    damerau_levenshtein_distance,
    osa_distance,
    weighted_edit_distance,
)
from .batch import BatchEditDistance, batch_edit_distances
from .scoring import scale_edit_distance, ssdeep_score_from_distance

__all__ = [
    "levenshtein_distance",
    "levenshtein_distance_numpy",
    "damerau_levenshtein_distance",
    "osa_distance",
    "weighted_edit_distance",
    "BatchEditDistance",
    "batch_edit_distances",
    "scale_edit_distance",
    "ssdeep_score_from_distance",
]
