"""Damerau–Levenshtein edit distances.

The paper (Section 3, Eq. 1) defines the distance used by SSDeep as the
Damerau–Levenshtein distance: the minimum number of insertions,
deletions, substitutions *and transpositions of adjacent characters*
needed to turn one string into the other.

Two standard variants are implemented:

* :func:`osa_distance` — the *optimal string alignment* (a.k.a.
  "restricted" Damerau–Levenshtein) distance, which never edits a
  substring more than once.  This is the variant used by the original
  ``ssdeep``/``spamsum`` code and by our similarity scoring.
* :func:`damerau_levenshtein_distance` — the unrestricted distance that
  exactly implements the recurrence in the paper's Equation 1 (prefix
  transpositions may be interleaved with other edits).

:func:`weighted_edit_distance` exposes the cost-weighted variant used by
SSDeep's scoring, where substitutions cost 3 and transpositions cost 5
relative to unit-cost insert/delete (matching the reference
implementation of ``spamsum``/``ssdeep``).
"""

from __future__ import annotations

__all__ = [
    "osa_distance",
    "damerau_levenshtein_distance",
    "weighted_edit_distance",
]


def osa_distance(a: str | bytes, b: str | bytes) -> int:
    """Restricted Damerau–Levenshtein (optimal string alignment) distance.

    Adjacent transpositions cost 1, but a transposed pair cannot be
    edited further.  ``O(|a|*|b|)`` time, three DP rows of memory.
    """

    if a == b:
        return 0
    la, lb = len(a), len(b)
    if la == 0:
        return lb
    if lb == 0:
        return la

    prev2 = [0] * (lb + 1)
    prev1 = list(range(lb + 1))
    current = [0] * (lb + 1)

    for i in range(1, la + 1):
        current[0] = i
        ai = a[i - 1]
        for j in range(1, lb + 1):
            bj = b[j - 1]
            cost = 0 if ai == bj else 1
            best = min(
                prev1[j] + 1,        # deletion
                current[j - 1] + 1,  # insertion
                prev1[j - 1] + cost  # substitution
            )
            if i > 1 and j > 1 and ai == b[j - 2] and a[i - 2] == bj:
                best = min(best, prev2[j - 2] + 1)  # transposition
            current[j] = best
        prev2, prev1, current = prev1, current, prev2
    return prev1[lb]


def damerau_levenshtein_distance(a: str | bytes, b: str | bytes) -> int:
    """Unrestricted Damerau–Levenshtein distance (paper Eq. 1 semantics).

    Uses the classic algorithm with a per-alphabet-symbol "last seen row"
    table, ``O(|a|*|b|)`` time and ``O(|a|*|b|)`` memory.  For the short
    digest strings handled by this library (<= ~90 characters) the memory
    use is negligible.
    """

    if a == b:
        return 0
    la, lb = len(a), len(b)
    if la == 0:
        return lb
    if lb == 0:
        return la

    # The "infinite" sentinel must exceed any achievable distance.
    inf = la + lb
    # Map symbols to small indices for the last-occurrence table.
    alphabet: dict = {}
    for ch in a:
        alphabet.setdefault(ch, 0)
    for ch in b:
        alphabet.setdefault(ch, 0)
    da = {ch: 0 for ch in alphabet}

    # DP matrix with an extra border row/column of `inf`.
    h = [[0] * (lb + 2) for _ in range(la + 2)]
    h[0][0] = inf
    for i in range(0, la + 1):
        h[i + 1][0] = inf
        h[i + 1][1] = i
    for j in range(0, lb + 1):
        h[0][j + 1] = inf
        h[1][j + 1] = j

    for i in range(1, la + 1):
        db = 0
        ai = a[i - 1]
        for j in range(1, lb + 1):
            bj = b[j - 1]
            i1 = da[bj]
            j1 = db
            if ai == bj:
                cost = 0
                db = j
            else:
                cost = 1
            h[i + 1][j + 1] = min(
                h[i][j] + cost,                        # substitution / match
                h[i + 1][j] + 1,                       # insertion
                h[i][j + 1] + 1,                       # deletion
                h[i1][j1] + (i - i1 - 1) + 1 + (j - j1 - 1),  # transposition
            )
        da[ai] = i
    return h[la + 1][lb + 1]


def weighted_edit_distance(a: str | bytes, b: str | bytes,
                           *,
                           insert_cost: int = 1,
                           delete_cost: int = 1,
                           substitute_cost: int = 3,
                           transpose_cost: int = 5) -> int:
    """Cost-weighted restricted edit distance.

    The default weights (1/1/3/5) are the ones used by the reference
    ``ssdeep`` implementation when scoring digest similarity; a
    substitution is deliberately more expensive than an insert+delete
    pair would be, and a transposition more expensive still.
    """

    la, lb = len(a), len(b)
    if la == 0:
        return lb * insert_cost
    if lb == 0:
        return la * delete_cost

    prev2 = [0] * (lb + 1)
    prev1 = [j * insert_cost for j in range(lb + 1)]
    current = [0] * (lb + 1)

    for i in range(1, la + 1):
        current[0] = i * delete_cost
        ai = a[i - 1]
        for j in range(1, lb + 1):
            bj = b[j - 1]
            if ai == bj:
                best = prev1[j - 1]
            else:
                best = prev1[j - 1] + substitute_cost
            best = min(best, prev1[j] + delete_cost, current[j - 1] + insert_cost)
            if i > 1 and j > 1 and ai == b[j - 2] and a[i - 2] == bj and ai != bj:
                best = min(best, prev2[j - 2] + transpose_cost)
            current[j] = best
        prev2, prev1, current = prev1, current, prev2
    return prev1[lb]
