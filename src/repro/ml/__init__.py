"""From-scratch machine-learning substrate.

The paper's pipeline is built on scikit-learn: a Random Forest
Classifier with balanced class weights, stratified train/test splits,
grid-search hyper-parameter tuning and the micro/macro/weighted
precision/recall/f1 report.  scikit-learn is not available in this
environment, so this subpackage re-implements the required subset with
NumPy, keeping the public API close enough to scikit-learn that the
code in :mod:`repro.core` reads like the paper's description:

* :mod:`repro.ml.tree` / :mod:`repro.ml.forest` — CART decision trees
  and the Random Forest (bootstrap aggregation, ``class_weight``,
  ``predict_proba``, Gini feature importances),
* :mod:`repro.ml.neighbors` / :mod:`repro.ml.linear` — the KNN and
  linear-SVM comparators named as future work in the paper,
* :mod:`repro.ml.metrics` — precision/recall/f1 with micro, macro and
  weighted averaging plus the classification report,
* :mod:`repro.ml.model_selection` — stratified splits, K-fold CV,
  parameter grids and a (optionally process-parallel) grid search,
* :mod:`repro.ml.class_weight`, :mod:`repro.ml.encoding`,
  :mod:`repro.ml.base` — the supporting plumbing.
"""

from .base import BaseEstimator, ClassifierMixin, clone
from .encoding import LabelEncoder
from .class_weight import compute_class_weight, compute_sample_weight
from .tree import DecisionTreeClassifier
from .forest import RandomForestClassifier
from .neighbors import KNeighborsClassifier
from .linear import LinearSVMClassifier
from .metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_fscore_support,
    precision_score,
    recall_score,
)
from .model_selection import (
    GridSearchCV,
    ParameterGrid,
    StratifiedKFold,
    train_test_split,
)

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "clone",
    "LabelEncoder",
    "compute_class_weight",
    "compute_sample_weight",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "LinearSVMClassifier",
    "accuracy_score",
    "classification_report",
    "confusion_matrix",
    "f1_score",
    "precision_recall_fscore_support",
    "precision_score",
    "recall_score",
    "GridSearchCV",
    "ParameterGrid",
    "StratifiedKFold",
    "train_test_split",
]
