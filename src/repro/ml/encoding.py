"""Label encoding utilities."""

from __future__ import annotations

import numpy as np

from ..exceptions import NotFittedError, ValidationError

__all__ = ["LabelEncoder"]


class LabelEncoder:
    """Map arbitrary (hashable, orderable) labels to integers 0..K-1.

    Mirrors scikit-learn's ``LabelEncoder``: classes are stored sorted,
    ``transform`` rejects labels unseen during ``fit``.
    """

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def fit(self, y) -> "LabelEncoder":
        arr = np.asarray(y)
        if arr.ndim != 1:
            raise ValidationError("LabelEncoder expects a 1-D array of labels")
        self.classes_ = np.array(sorted(set(arr.tolist())))
        return self

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def transform(self, y) -> np.ndarray:
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder is not fitted")
        lookup = {label: index for index, label in enumerate(self.classes_.tolist())}
        arr = np.asarray(y)
        try:
            return np.array([lookup[label] for label in arr.tolist()], dtype=np.int64)
        except KeyError as exc:
            raise ValidationError(f"y contains previously unseen label {exc.args[0]!r}") from exc

    def get_state(self) -> dict:
        """Serialisable snapshot of the fitted encoder (model artifacts)."""

        if self.classes_ is None:
            raise NotFittedError("LabelEncoder is not fitted")
        return {"classes": self.classes_.tolist()}

    def set_state(self, state: dict) -> "LabelEncoder":
        """Restore a snapshot produced by :meth:`get_state`."""

        try:
            classes = list(state["classes"])
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"invalid LabelEncoder state: {exc}") from exc
        self.classes_ = np.array(classes)
        return self

    def inverse_transform(self, encoded) -> np.ndarray:
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder is not fitted")
        encoded = np.asarray(encoded, dtype=np.int64)
        if encoded.size and (encoded.min() < 0 or encoded.max() >= len(self.classes_)):
            raise ValidationError("encoded labels out of range")
        return self.classes_[encoded]
