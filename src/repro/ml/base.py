"""Estimator base classes and parameter handling.

A small re-implementation of scikit-learn's estimator protocol:
``get_params``/``set_params`` driven by the constructor signature,
:func:`clone` to build unfitted copies, and a ``ClassifierMixin`` that
provides ``score``.  Grid search and the Fuzzy Hash Classifier rely on
these to treat every model generically.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np

from ..exceptions import NotFittedError, ValidationError

__all__ = ["BaseEstimator", "ClassifierMixin", "clone", "check_is_fitted"]


class BaseEstimator:
    """Base class providing parameter introspection.

    Subclasses must accept all hyper-parameters as keyword arguments in
    ``__init__`` and store them under the same attribute names (the
    scikit-learn convention); fitted state uses a trailing underscore.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        names = [
            name for name, param in signature.parameters.items()
            if name != "self" and param.kind not in (
                inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        ]
        return sorted(names)

    def get_params(self, deep: bool = True) -> dict[str, Any]:
        """Return the estimator's hyper-parameters as a dict."""

        params: dict[str, Any] = {}
        for name in self._param_names():
            value = getattr(self, name)
            params[name] = value
            if deep and isinstance(value, BaseEstimator):
                for sub_name, sub_value in value.get_params(deep=True).items():
                    params[f"{name}__{sub_name}"] = sub_value
        return params

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyper-parameters (supports ``nested__param`` syntax)."""

        if not params:
            return self
        valid = set(self._param_names())
        nested: dict[str, dict[str, Any]] = {}
        for key, value in params.items():
            if "__" in key:
                prefix, _, suffix = key.partition("__")
                nested.setdefault(prefix, {})[suffix] = value
                continue
            if key not in valid:
                raise ValidationError(
                    f"Invalid parameter {key!r} for estimator {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, key, value)
        for prefix, sub_params in nested.items():
            if prefix not in valid:
                raise ValidationError(
                    f"Invalid parameter {prefix!r} for estimator {type(self).__name__}"
                )
            sub_estimator = getattr(self, prefix)
            if not isinstance(sub_estimator, BaseEstimator):
                raise ValidationError(
                    f"Parameter {prefix!r} is not an estimator; cannot set nested params"
                )
            sub_estimator.set_params(**sub_params)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params(deep=False).items())
        return f"{type(self).__name__}({params})"


class ClassifierMixin:
    """Adds ``score`` (mean accuracy) to classifiers."""

    def score(self, X, y) -> float:
        from .metrics import accuracy_score

        return accuracy_score(y, self.predict(X))


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with the same parameters."""

    if not isinstance(estimator, BaseEstimator):
        raise ValidationError(
            f"clone expects a BaseEstimator, got {type(estimator).__name__}"
        )
    params = estimator.get_params(deep=False)
    cloned_params = {
        key: clone(value) if isinstance(value, BaseEstimator) else value
        for key, value in params.items()
    }
    return type(estimator)(**cloned_params)


def check_is_fitted(estimator: Any, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``attribute`` exists."""

    if not hasattr(estimator, attribute) or getattr(estimator, attribute) is None:
        raise NotFittedError(
            f"This {type(estimator).__name__} instance is not fitted yet; "
            f"call 'fit' before using this method."
        )
