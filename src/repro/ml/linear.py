"""Linear SVM-style classifier (one-vs-rest hinge loss, SGD).

The second future-work comparator named by the paper ("Support Vector
Machines").  A full kernel SVM is out of scope for the baseline
comparison; a linear one-vs-rest hinge-loss classifier trained with
averaged stochastic gradient descent captures the linear-decision-
boundary contrast with the Random Forest that the comparison is about.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    check_array_1d,
    check_array_2d,
    check_consistent_length,
    check_random_state,
)
from ..exceptions import ValidationError
from .base import BaseEstimator, ClassifierMixin, check_is_fitted
from .class_weight import compute_class_weight
from .encoding import LabelEncoder

__all__ = ["LinearSVMClassifier"]


class LinearSVMClassifier(BaseEstimator, ClassifierMixin):
    """One-vs-rest linear classifier with hinge loss and L2 regularisation.

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger = less regularisation).
    max_iter:
        Number of epochs over the training data.
    learning_rate:
        Initial SGD step size (decays as ``1 / (1 + t * decay)``).
    class_weight:
        ``None``, ``"balanced"`` or a mapping; scales the hinge loss of
        each class.
    fit_intercept:
        Learn a bias term per class.
    random_state:
        Seed for shuffling between epochs.
    """

    def __init__(self, *, C: float = 1.0, max_iter: int = 50,
                 learning_rate: float = 0.01, class_weight=None,
                 fit_intercept: bool = True, random_state=None) -> None:
        self.C = C
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.class_weight = class_weight
        self.fit_intercept = fit_intercept
        self.random_state = random_state

    def fit(self, X, y) -> "LinearSVMClassifier":
        X = check_array_2d(X, "X")
        y = check_array_1d(y, "y")
        check_consistent_length(X, y)
        if self.C <= 0:
            raise ValidationError("C must be positive")
        if self.max_iter < 1:
            raise ValidationError("max_iter must be >= 1")

        encoder = LabelEncoder()
        y_encoded = encoder.fit_transform(y)
        self.classes_ = encoder.classes_
        self._encoder = encoder
        self.n_features_in_ = X.shape[1]

        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        rng = check_random_state(self.random_state)

        # Standardise features for stable SGD; remember the scaling.
        self._mean = X.mean(axis=0)
        self._scale = X.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        Xs = (X - self._mean) / self._scale

        class_weights = compute_class_weight(self.class_weight,
                                             np.arange(n_classes), y_encoded)
        targets = np.where(
            y_encoded[:, None] == np.arange(n_classes)[None, :], 1.0, -1.0)
        per_sample_class_weight = class_weights[y_encoded]

        weights = np.zeros((n_classes, n_features), dtype=np.float64)
        intercepts = np.zeros(n_classes, dtype=np.float64)
        averaged_weights = np.zeros_like(weights)
        averaged_intercepts = np.zeros_like(intercepts)
        lam = 1.0 / (self.C * n_samples)

        step = 0
        for epoch in range(self.max_iter):
            order = rng.permutation(n_samples)
            for index in order:
                step += 1
                eta = self.learning_rate / (1.0 + self.learning_rate * lam * step)
                x = Xs[index]
                margins = weights @ x + intercepts            # (n_classes,)
                target = targets[index]                        # (n_classes,)
                violating = target * margins < 1.0
                weights *= (1.0 - eta * lam)
                if np.any(violating):
                    scale = eta * per_sample_class_weight[index]
                    weights[violating] += scale * target[violating, None] * x[None, :]
                    if self.fit_intercept:
                        intercepts[violating] += scale * target[violating]
                averaged_weights += weights
                averaged_intercepts += intercepts

        self.coef_ = averaged_weights / max(step, 1)
        self.intercept_ = averaged_intercepts / max(step, 1)
        return self

    # ------------------------------------------------------------- predict
    def decision_function(self, X) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array_2d(X, "X")
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}")
        Xs = (X - self._mean) / self._scale
        return Xs @ self.coef_.T + self.intercept_

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        """Softmax over the decision function (a calibration-free proxy,
        sufficient for the confidence-threshold comparison)."""

        scores = self.decision_function(X)
        scores = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(scores)
        return exp / exp.sum(axis=1, keepdims=True)
