"""Classification metrics: precision, recall, f1, confusion matrix, report.

The paper evaluates with "the micro, macro, and weighted versions of
precision, recall, and f1-score" (Section 3, citing van Rijsbergen) and
presents the scikit-learn classification report (Table 4).  The
implementations here follow the same definitions:

* **micro** averaging aggregates true/false positives over all classes
  (equal weight per *instance*; equals accuracy in single-label
  multi-class problems),
* **macro** averaging computes the metric per class and takes the
  unweighted mean (equal weight per *class*),
* **weighted** averaging weighs each class's metric by its support.

Division-by-zero cases (a class never predicted, or with no true
samples) contribute 0, matching scikit-learn's ``zero_division=0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_consistent_length
from ..exceptions import ValidationError

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_fscore_support",
    "precision_score",
    "recall_score",
    "f1_score",
    "classification_report",
    "ClassificationReport",
    "ClassMetrics",
]

_AVERAGES = ("micro", "macro", "weighted", None)


def _as_label_array(y) -> np.ndarray:
    """Convert labels to a 1-D object array.

    Using ``dtype=object`` is essential for the paper's setting, where
    the label set mixes application-class strings with the integer
    ``-1`` unknown marker; a plain ``np.asarray`` would coerce everything
    to strings and silently stop ``-1`` from matching.
    """

    arr = np.empty(len(y), dtype=object)
    arr[:] = list(y)
    return arr


def _unique_labels(y_true, y_pred, labels=None) -> np.ndarray:
    if labels is not None:
        return _as_label_array(list(labels))
    values = set(_as_label_array(y_true).tolist()) | set(_as_label_array(y_pred).tolist())
    return _as_label_array(sorted(values, key=lambda v: (str(type(v)), str(v))))


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly correct predictions."""

    y_true = _as_label_array(y_true)
    y_pred = _as_label_array(y_pred)
    check_consistent_length(y_true, y_pred)
    if y_true.size == 0:
        raise ValidationError("accuracy_score of empty input is undefined")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix ``C`` with ``C[i, j]`` = true ``i`` predicted ``j``."""

    y_true = _as_label_array(y_true)
    y_pred = _as_label_array(y_pred)
    check_consistent_length(y_true, y_pred)
    labels = _unique_labels(y_true, y_pred, labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for true_value, predicted in zip(y_true.tolist(), y_pred.tolist()):
        if true_value in index and predicted in index:
            matrix[index[true_value], index[predicted]] += 1
    return matrix


def _per_class_counts(y_true, y_pred, labels) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """True positives, false positives, false negatives, support per class."""

    y_true = _as_label_array(y_true)
    y_pred = _as_label_array(y_pred)
    tp = np.zeros(len(labels), dtype=np.float64)
    fp = np.zeros(len(labels), dtype=np.float64)
    fn = np.zeros(len(labels), dtype=np.float64)
    support = np.zeros(len(labels), dtype=np.int64)
    for index, label in enumerate(labels.tolist()):
        true_mask = y_true == label
        pred_mask = y_pred == label
        tp[index] = np.sum(true_mask & pred_mask)
        fp[index] = np.sum(~true_mask & pred_mask)
        fn[index] = np.sum(true_mask & ~pred_mask)
        support[index] = np.sum(true_mask)
    return tp, fp, fn, support


def _safe_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    result = np.zeros_like(numerator, dtype=np.float64)
    mask = denominator > 0
    result[mask] = numerator[mask] / denominator[mask]
    return result


def precision_recall_fscore_support(y_true, y_pred, *, labels=None,
                                    average: str | None = None,
                                    beta: float = 1.0):
    """Per-class or averaged precision, recall, F-beta and support."""

    if average not in _AVERAGES:
        raise ValidationError(f"average must be one of {_AVERAGES}, got {average!r}")
    check_consistent_length(y_true, y_pred)
    labels = _unique_labels(y_true, y_pred, labels)
    tp, fp, fn, support = _per_class_counts(y_true, y_pred, labels)

    precision = _safe_divide(tp, tp + fp)
    recall = _safe_divide(tp, tp + fn)
    beta2 = beta * beta
    fscore = _safe_divide((1 + beta2) * precision * recall,
                          beta2 * precision + recall)

    if average is None:
        return precision, recall, fscore, support

    if average == "micro":
        total_tp, total_fp, total_fn = tp.sum(), fp.sum(), fn.sum()
        micro_p = total_tp / (total_tp + total_fp) if total_tp + total_fp else 0.0
        micro_r = total_tp / (total_tp + total_fn) if total_tp + total_fn else 0.0
        denom = beta2 * micro_p + micro_r
        micro_f = (1 + beta2) * micro_p * micro_r / denom if denom else 0.0
        return float(micro_p), float(micro_r), float(micro_f), int(support.sum())

    if average == "macro":
        return (float(precision.mean()), float(recall.mean()),
                float(fscore.mean()), int(support.sum()))

    # weighted
    total = support.sum()
    if total == 0:
        return 0.0, 0.0, 0.0, 0
    weights = support / total
    return (float(np.sum(precision * weights)), float(np.sum(recall * weights)),
            float(np.sum(fscore * weights)), int(total))


def precision_score(y_true, y_pred, *, average: str = "macro", labels=None) -> float:
    """Averaged precision (see module docstring for averaging modes)."""

    value, _, _, _ = precision_recall_fscore_support(
        y_true, y_pred, labels=labels, average=average)
    return float(value)


def recall_score(y_true, y_pred, *, average: str = "macro", labels=None) -> float:
    """Averaged recall."""

    _, value, _, _ = precision_recall_fscore_support(
        y_true, y_pred, labels=labels, average=average)
    return float(value)


def f1_score(y_true, y_pred, *, average: str = "macro", labels=None) -> float:
    """Averaged f1 (harmonic mean of precision and recall, Eq. 2)."""

    _, _, value, _ = precision_recall_fscore_support(
        y_true, y_pred, labels=labels, average=average)
    return float(value)


@dataclass(frozen=True)
class ClassMetrics:
    """Metrics of a single class inside a classification report."""

    label: object
    precision: float
    recall: float
    f1: float
    support: int


@dataclass
class ClassificationReport:
    """Structured classification report (Table 4 of the paper).

    ``as_text()`` renders the familiar scikit-learn layout;
    ``as_dict()`` mirrors ``classification_report(output_dict=True)``.
    """

    per_class: list[ClassMetrics]
    micro: tuple[float, float, float, int]
    macro: tuple[float, float, float, int]
    weighted: tuple[float, float, float, int]

    def as_dict(self) -> dict:
        report: dict = {}
        for row in self.per_class:
            report[str(row.label)] = {
                "precision": row.precision, "recall": row.recall,
                "f1-score": row.f1, "support": row.support,
            }
        for name, values in (("micro avg", self.micro), ("macro avg", self.macro),
                             ("weighted avg", self.weighted)):
            report[name] = {
                "precision": values[0], "recall": values[1],
                "f1-score": values[2], "support": values[3],
            }
        return report

    def as_text(self, digits: int = 2) -> str:
        width = max([len(str(row.label)) for row in self.per_class] + [len("weighted avg")])
        header = (f"{'':>{width}}  {'precision':>9} {'recall':>9} "
                  f"{'f1-score':>9} {'support':>9}")
        lines = [header, ""]
        fmt = f"{{label:>{width}}}  {{p:>9.{digits}f}} {{r:>9.{digits}f}} " \
              f"{{f:>9.{digits}f}} {{s:>9d}}"
        for row in self.per_class:
            lines.append(fmt.format(label=str(row.label), p=row.precision,
                                    r=row.recall, f=row.f1, s=row.support))
        lines.append("")
        for name, values in (("micro avg", self.micro), ("macro avg", self.macro),
                             ("weighted avg", self.weighted)):
            lines.append(fmt.format(label=name, p=values[0], r=values[1],
                                    f=values[2], s=values[3]))
        return "\n".join(lines)

    @property
    def macro_f1(self) -> float:
        return self.macro[2]

    @property
    def micro_f1(self) -> float:
        return self.micro[2]

    @property
    def weighted_f1(self) -> float:
        return self.weighted[2]


def classification_report(y_true, y_pred, *, labels=None,
                          output: str = "object"):
    """Build a classification report.

    Parameters
    ----------
    output:
        ``"object"`` (default) returns a :class:`ClassificationReport`;
        ``"text"`` returns the rendered table; ``"dict"`` returns the
        nested-dict form.
    """

    labels = _unique_labels(y_true, y_pred, labels)
    precision, recall, fscore, support = precision_recall_fscore_support(
        y_true, y_pred, labels=labels, average=None)
    per_class = [
        ClassMetrics(label=label, precision=float(p), recall=float(r),
                     f1=float(f), support=int(s))
        for label, p, r, f, s in zip(labels.tolist(), precision, recall,
                                     fscore, support)
    ]
    micro = precision_recall_fscore_support(y_true, y_pred, labels=labels,
                                            average="micro")
    macro = precision_recall_fscore_support(y_true, y_pred, labels=labels,
                                            average="macro")
    weighted = precision_recall_fscore_support(y_true, y_pred, labels=labels,
                                               average="weighted")
    report = ClassificationReport(per_class=per_class, micro=micro, macro=macro,
                                  weighted=weighted)
    if output == "object":
        return report
    if output == "text":
        return report.as_text()
    if output == "dict":
        return report.as_dict()
    raise ValidationError(f"output must be 'object', 'text' or 'dict', got {output!r}")
