"""Random Forest classifier.

Bootstrap-aggregated CART trees with random feature subsampling, the
model behind the paper's Fuzzy Hash Classifier.  The paper motivates
the choice with two properties (Section 3), both reproduced here:

* **non-linearity** — each tree partitions the abstract fuzzy-hash
  similarity space with axis-aligned thresholds, and the ensemble
  averages their probability estimates;
* **feature importance** — Gini importances are averaged over trees
  and exposed as ``feature_importances_`` (Table 5 of the paper is the
  per-hash-type aggregation of these).

Trees can be fitted in parallel worker processes (``n_jobs``); each
worker receives a batch of tree seeds to amortise the cost of shipping
the training matrix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import (
    check_array_1d,
    check_array_2d,
    check_consistent_length,
    check_positive_int,
    check_random_state,
)
from ..exceptions import ValidationError
from ..parallel import effective_n_jobs, parallel_map, partition_evenly
from .base import BaseEstimator, ClassifierMixin, check_is_fitted
from .class_weight import compute_sample_weight
from .encoding import LabelEncoder
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


def _fit_tree_batch(args) -> list[DecisionTreeClassifier]:
    """Fit a batch of trees (module-level so it can cross process
    boundaries)."""

    (tree_params, X, y, sample_weight, seeds, bootstrap) = args
    n_samples = X.shape[0]
    trees: list[DecisionTreeClassifier] = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        tree = DecisionTreeClassifier(random_state=int(rng.integers(0, 2**31 - 1)),
                                      **tree_params)
        if bootstrap:
            indices = rng.integers(0, n_samples, size=n_samples)
            tree.fit(X[indices], y[indices],
                     sample_weight=None if sample_weight is None
                     else sample_weight[indices])
        else:
            tree.fit(X, y, sample_weight=sample_weight)
        trees.append(tree)
    return trees


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bootstrap-aggregated decision-tree classifier.

    Parameters mirror scikit-learn's ``RandomForestClassifier`` for the
    subset the paper tunes (``n_estimators``, ``criterion``,
    ``max_depth``, ``min_samples_split``, ``min_samples_leaf``,
    ``max_features``) plus ``class_weight`` and ``n_jobs``.
    """

    def __init__(self, n_estimators: int = 100, *, criterion: str = "gini",
                 max_depth: int | None = None, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features="sqrt",
                 bootstrap: bool = True, class_weight=None,
                 random_state=None, n_jobs: int = 1) -> None:
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.class_weight = class_weight
        self.random_state = random_state
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------ fit
    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        X = check_array_2d(X, "X")
        y = check_array_1d(y, "y")
        check_consistent_length(X, y)
        check_positive_int(self.n_estimators, "n_estimators")

        encoder = LabelEncoder()
        y_encoded = encoder.fit_transform(y)
        self.classes_ = encoder.classes_
        self._encoder = encoder
        self.n_features_in_ = X.shape[1]

        weights = None
        if sample_weight is not None:
            weights = np.asarray(sample_weight, dtype=np.float64)
            check_consistent_length(X, weights)
        if self.class_weight is not None:
            class_sample_weight = compute_sample_weight(self.class_weight, y)
            weights = class_sample_weight if weights is None \
                else weights * class_sample_weight

        tree_params = dict(
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
        )

        rng = check_random_state(self.random_state)
        seeds = [int(s) for s in rng.integers(0, 2**63 - 1, size=self.n_estimators)]

        workers = effective_n_jobs(self.n_jobs)
        # Encode y as integers for the trees so every tree shares the same
        # class indexing as the forest.
        y_for_trees = y_encoded
        if workers <= 1 or self.n_estimators < 2 * workers:
            self.estimators_ = _fit_tree_batch(
                (tree_params, X, y_for_trees, weights, seeds, self.bootstrap))
        else:
            batches = [batch for batch in partition_evenly(seeds, workers) if batch]
            tasks = [(tree_params, X, y_for_trees, weights, batch, self.bootstrap)
                     for batch in batches]
            results = parallel_map(_fit_tree_batch, tasks, n_jobs=workers,
                                   chunksize=1, min_items_per_worker=1)
            self.estimators_ = [tree for batch in results for tree in batch]

        self.feature_importances_ = self._aggregate_importances()
        self.__dict__.pop("_stacked_nodes", None)   # rebuilt lazily on predict
        return self

    # ------------------------------------------------------------- predict
    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array_2d(X, "X")
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}")
        if not hasattr(self, "_stacked_nodes"):
            self._stack_estimators()
        feature, threshold, left, right, roots, leaf_proba = self._stacked_nodes
        n_trees = len(self.estimators_)
        n_samples = X.shape[0]

        # Advance every (tree, sample) walker together: the loop runs
        # max-tree-depth times on one big array instead of per tree, so
        # NumPy dispatch overhead no longer scales with forest size.
        nodes = np.broadcast_to(roots[:, None], (n_trees, n_samples)).copy()
        sample_idx = np.broadcast_to(np.arange(n_samples, dtype=np.int64),
                                     (n_trees, n_samples))
        active = feature[nodes] >= 0
        while np.any(active):
            current = nodes[active]
            go_left = X[sample_idx[active], feature[current]] <= threshold[current]
            nodes[active] = np.where(go_left, left[current], right[current])
            active = feature[nodes] >= 0

        # Summing the per-tree leaf distributions in tree order keeps the
        # result bit-identical to the per-tree accumulation loop (absent
        # classes contribute exact zeros).  Accumulating tree by tree
        # caps the transient at one (n_samples, n_classes) gather instead
        # of materialising the full (n_trees, n_samples, n_classes) cube.
        total = np.zeros((n_samples, len(self.classes_)), dtype=np.float64)
        for t in range(n_trees):
            total += leaf_proba[nodes[t]]
        total /= n_trees
        return total

    def _stack_estimators(self) -> None:
        """Concatenate all tree node tables for the batched predict.

        Child pointers are rebased to global node ids (leaf sentinels
        stay negative); each node's class distribution is scattered into
        the forest's class columns so leaves from different trees sum
        directly.
        """

        n_classes = len(self.classes_)
        features, thresholds, lefts, rights, probas = [], [], [], [], []
        roots = np.zeros(len(self.estimators_), dtype=np.int64)
        offset = 0
        for t, tree in enumerate(self.estimators_):
            n_nodes = len(tree._node_feature)
            roots[t] = offset
            features.append(tree._node_feature)
            thresholds.append(tree._node_threshold)
            # Rebase internal children; keep -1 leaf sentinels as-is.
            lefts.append(np.where(tree._node_left >= 0,
                                  tree._node_left + offset, tree._node_left))
            rights.append(np.where(tree._node_right >= 0,
                                   tree._node_right + offset, tree._node_right))
            padded = np.zeros((n_nodes, n_classes), dtype=np.float64)
            padded[:, tree.classes_.astype(np.int64)] = tree._leaf_proba
            probas.append(padded)
            offset += n_nodes
        self._stacked_nodes = (
            np.concatenate(features),
            np.concatenate(thresholds),
            np.concatenate(lefts),
            np.concatenate(rights),
            roots,
            np.vstack(probas),
        )

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        encoded = np.argmax(probabilities, axis=1)
        return self.classes_[encoded]

    # ---------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """Serialisable snapshot of the fitted forest (model artifacts).

        Tree node tables are exported through
        :meth:`~repro.ml.tree.DecisionTreeClassifier.get_state`; the
        forest adds its class index and aggregated importances.  A forest
        restored with :meth:`set_state` predicts bit-identically.
        """

        check_is_fitted(self, "estimators_")
        return {
            "classes": np.asarray(self.classes_).copy(),
            "n_features_in": int(self.n_features_in_),
            "feature_importances": np.asarray(self.feature_importances_,
                                              dtype=np.float64).copy(),
            "trees": [tree.get_state() for tree in self.estimators_],
        }

    def set_state(self, state: dict) -> "RandomForestClassifier":
        """Restore a snapshot produced by :meth:`get_state`."""

        try:
            classes = np.asarray(state["classes"])
            n_features_in = int(state["n_features_in"])
            importances = np.asarray(state["feature_importances"],
                                     dtype=np.float64)
            tree_states = list(state["trees"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"invalid random-forest state: {exc}") from exc
        if not tree_states:
            raise ValidationError("random-forest state holds no trees")
        tree_params = dict(
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
        )
        estimators = []
        n_classes = len(classes)
        for tree_state in tree_states:
            tree = DecisionTreeClassifier(**tree_params).set_state(tree_state)
            # Trees carry integer-encoded class indices into the forest's
            # class table; reject pointers outside it.
            tree_classes = np.asarray(tree.classes_)
            if tree_classes.size and (not np.issubdtype(tree_classes.dtype,
                                                        np.integer)
                                      or tree_classes.min() < 0
                                      or tree_classes.max() >= n_classes):
                raise ValidationError(
                    "random-forest state has a tree whose classes fall "
                    "outside the forest's class table")
            if tree.n_features_in_ != n_features_in:
                raise ValidationError(
                    "random-forest state has a tree with a mismatched "
                    "feature count")
            estimators.append(tree)
        self.estimators_ = estimators
        self.classes_ = classes
        self.n_features_in_ = n_features_in
        self.feature_importances_ = importances
        self._encoder = LabelEncoder().set_state({"classes": classes.tolist()})
        self.__dict__.pop("_stacked_nodes", None)   # rebuilt lazily on predict
        return self

    # ----------------------------------------------------------- internals
    def _aggregate_importances(self) -> np.ndarray:
        importances = np.zeros(self.n_features_in_, dtype=np.float64)
        for tree in self.estimators_:
            importances += tree.feature_importances_
        importances /= max(len(self.estimators_), 1)
        total = importances.sum()
        return importances / total if total > 0 else importances
