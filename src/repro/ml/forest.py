"""Random Forest classifier.

Bootstrap-aggregated CART trees with random feature subsampling, the
model behind the paper's Fuzzy Hash Classifier.  The paper motivates
the choice with two properties (Section 3), both reproduced here:

* **non-linearity** — each tree partitions the abstract fuzzy-hash
  similarity space with axis-aligned thresholds, and the ensemble
  averages their probability estimates;
* **feature importance** — Gini importances are averaged over trees
  and exposed as ``feature_importances_`` (Table 5 of the paper is the
  per-hash-type aggregation of these).

Trees can be fitted in parallel worker processes (``n_jobs``); each
worker receives a batch of tree seeds to amortise the cost of shipping
the training matrix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import (
    check_array_1d,
    check_array_2d,
    check_consistent_length,
    check_positive_int,
    check_random_state,
)
from ..exceptions import ValidationError
from ..parallel import effective_n_jobs, parallel_map, partition_evenly
from .base import BaseEstimator, ClassifierMixin, check_is_fitted
from .class_weight import compute_sample_weight
from .encoding import LabelEncoder
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


def _fit_tree_batch(args) -> list[DecisionTreeClassifier]:
    """Fit a batch of trees (module-level so it can cross process
    boundaries)."""

    (tree_params, X, y, sample_weight, seeds, bootstrap) = args
    n_samples = X.shape[0]
    trees: list[DecisionTreeClassifier] = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        tree = DecisionTreeClassifier(random_state=int(rng.integers(0, 2**31 - 1)),
                                      **tree_params)
        if bootstrap:
            indices = rng.integers(0, n_samples, size=n_samples)
            tree.fit(X[indices], y[indices],
                     sample_weight=None if sample_weight is None
                     else sample_weight[indices])
        else:
            tree.fit(X, y, sample_weight=sample_weight)
        trees.append(tree)
    return trees


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bootstrap-aggregated decision-tree classifier.

    Parameters mirror scikit-learn's ``RandomForestClassifier`` for the
    subset the paper tunes (``n_estimators``, ``criterion``,
    ``max_depth``, ``min_samples_split``, ``min_samples_leaf``,
    ``max_features``) plus ``class_weight`` and ``n_jobs``.
    """

    def __init__(self, n_estimators: int = 100, *, criterion: str = "gini",
                 max_depth: int | None = None, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features="sqrt",
                 bootstrap: bool = True, class_weight=None,
                 random_state=None, n_jobs: int = 1) -> None:
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.class_weight = class_weight
        self.random_state = random_state
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------ fit
    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        X = check_array_2d(X, "X")
        y = check_array_1d(y, "y")
        check_consistent_length(X, y)
        check_positive_int(self.n_estimators, "n_estimators")

        encoder = LabelEncoder()
        y_encoded = encoder.fit_transform(y)
        self.classes_ = encoder.classes_
        self._encoder = encoder
        self.n_features_in_ = X.shape[1]

        weights = None
        if sample_weight is not None:
            weights = np.asarray(sample_weight, dtype=np.float64)
            check_consistent_length(X, weights)
        if self.class_weight is not None:
            class_sample_weight = compute_sample_weight(self.class_weight, y)
            weights = class_sample_weight if weights is None \
                else weights * class_sample_weight

        tree_params = dict(
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
        )

        rng = check_random_state(self.random_state)
        seeds = [int(s) for s in rng.integers(0, 2**63 - 1, size=self.n_estimators)]

        workers = effective_n_jobs(self.n_jobs)
        # Encode y as integers for the trees so every tree shares the same
        # class indexing as the forest.
        y_for_trees = y_encoded
        if workers <= 1 or self.n_estimators < 2 * workers:
            self.estimators_ = _fit_tree_batch(
                (tree_params, X, y_for_trees, weights, seeds, self.bootstrap))
        else:
            batches = [batch for batch in partition_evenly(seeds, workers) if batch]
            tasks = [(tree_params, X, y_for_trees, weights, batch, self.bootstrap)
                     for batch in batches]
            results = parallel_map(_fit_tree_batch, tasks, n_jobs=workers,
                                   chunksize=1, min_items_per_worker=1)
            self.estimators_ = [tree for batch in results for tree in batch]

        self.feature_importances_ = self._aggregate_importances()
        return self

    # ------------------------------------------------------------- predict
    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array_2d(X, "X")
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}")
        n_classes = len(self.classes_)
        total = np.zeros((X.shape[0], n_classes), dtype=np.float64)
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # Trees were fitted on integer-encoded labels; align their class
            # index (a subset when a bootstrap misses a class) to the forest's.
            tree_classes = tree.classes_.astype(np.int64)
            total[:, tree_classes] += proba
        total /= len(self.estimators_)
        return total

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        encoded = np.argmax(probabilities, axis=1)
        return self.classes_[encoded]

    # ----------------------------------------------------------- internals
    def _aggregate_importances(self) -> np.ndarray:
        importances = np.zeros(self.n_features_in_, dtype=np.float64)
        for tree in self.estimators_:
            importances += tree.feature_importances_
        importances /= max(len(self.estimators_), 1)
        total = importances.sum()
        return importances / total if total > 0 else importances
