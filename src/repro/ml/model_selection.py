"""Train/test splitting, cross-validation and grid search.

Implements the subset of scikit-learn's model-selection toolbox the
paper's methodology needs:

* :func:`train_test_split` with optional stratification (the paper's
  stratified 60/40 sample split of known classes),
* :class:`StratifiedKFold` for cross-validated grid search,
* :class:`ParameterGrid` and :class:`GridSearchCV` ("we optimize the
  performance ... with hyperparameter tuning through grid search only
  within the training set").

The grid search can evaluate parameter combinations in worker
processes (``n_jobs``) using :mod:`repro.parallel`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .._validation import check_random_state
from ..exceptions import ValidationError
from .base import BaseEstimator, clone
from .metrics import accuracy_score, f1_score

__all__ = ["train_test_split", "StratifiedKFold", "KFold", "ParameterGrid",
           "GridSearchCV", "cross_val_score"]


# ---------------------------------------------------------------------------
# splitting
# ---------------------------------------------------------------------------
def _stratified_assignment(y: np.ndarray, test_size: float,
                           rng: np.random.Generator) -> np.ndarray:
    """Boolean mask marking test samples, stratified per class."""

    test_mask = np.zeros(len(y), dtype=bool)
    for label in np.unique(y):
        indices = np.flatnonzero(y == label)
        rng.shuffle(indices)
        n_test = int(round(len(indices) * test_size))
        # Keep at least one sample on each side when the class allows it.
        if len(indices) >= 2:
            n_test = min(max(n_test, 1), len(indices) - 1)
        test_mask[indices[:n_test]] = True
    return test_mask


def train_test_split(*arrays, test_size: float = 0.25, train_size: float | None = None,
                     stratify=None, shuffle: bool = True, random_state=None):
    """Split arrays into train/test subsets (optionally stratified).

    Returns ``train_a1, test_a1, train_a2, test_a2, ...`` in the same
    interleaved order scikit-learn uses.
    """

    if not arrays:
        raise ValidationError("train_test_split needs at least one array")
    length = len(arrays[0])
    for array in arrays:
        if len(array) != length:
            raise ValidationError("all arrays must have the same length")
    if train_size is not None:
        if not (0.0 < train_size < 1.0):
            raise ValidationError(f"train_size must be in (0, 1), got {train_size}")
        test_size = 1.0 - train_size
    if not (0.0 < test_size < 1.0):
        raise ValidationError(f"test_size must be in (0, 1), got {test_size}")
    if not shuffle and stratify is not None:
        raise ValidationError("stratified splitting requires shuffle=True")

    rng = check_random_state(random_state)
    if stratify is not None:
        y = np.asarray(stratify)
        if len(y) != length:
            raise ValidationError("stratify must have the same length as the arrays")
        test_mask = _stratified_assignment(y, test_size, rng)
    else:
        indices = np.arange(length)
        if shuffle:
            rng.shuffle(indices)
        n_test = int(round(length * test_size))
        n_test = min(max(n_test, 1), length - 1)
        test_mask = np.zeros(length, dtype=bool)
        test_mask[indices[:n_test]] = True

    train_idx = np.flatnonzero(~test_mask)
    test_idx = np.flatnonzero(test_mask)
    if shuffle:
        rng.shuffle(train_idx)
        rng.shuffle(test_idx)

    result = []
    for array in arrays:
        array = np.asarray(array)
        result.append(array[train_idx])
        result.append(array[test_idx])
    return result


class KFold:
    """Plain K-fold cross-validation splitter."""

    def __init__(self, n_splits: int = 5, *, shuffle: bool = False,
                 random_state=None) -> None:
        if n_splits < 2:
            raise ValidationError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(X)
        if n < self.n_splits:
            raise ValidationError(
                f"cannot split {n} samples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            check_random_state(self.random_state).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield np.sort(train_idx), np.sort(test_idx)

    def get_n_splits(self, X=None, y=None) -> int:
        return self.n_splits


class StratifiedKFold:
    """K-fold splitter preserving per-class proportions in every fold."""

    def __init__(self, n_splits: int = 5, *, shuffle: bool = False,
                 random_state=None) -> None:
        if n_splits < 2:
            raise ValidationError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, X, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        if len(y) != len(X):
            raise ValidationError("X and y must have the same length")
        rng = check_random_state(self.random_state)

        # Assign each sample a fold id, round-robin per class.
        fold_of = np.zeros(len(y), dtype=np.int64)
        for label in np.unique(y):
            indices = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(indices)
            fold_of[indices] = np.arange(len(indices)) % self.n_splits
        for fold in range(self.n_splits):
            test_idx = np.flatnonzero(fold_of == fold)
            train_idx = np.flatnonzero(fold_of != fold)
            if len(test_idx) == 0 or len(train_idx) == 0:
                raise ValidationError(
                    "StratifiedKFold produced an empty fold; reduce n_splits")
            yield train_idx, test_idx

    def get_n_splits(self, X=None, y=None) -> int:
        return self.n_splits


# ---------------------------------------------------------------------------
# grid search
# ---------------------------------------------------------------------------
class ParameterGrid:
    """Iterate over the cartesian product of a parameter grid.

    Accepts a dict of ``{param: [values...]}`` or a list of such dicts
    (each expanded independently, like scikit-learn).
    """

    def __init__(self, grid: Mapping[str, Sequence[Any]] | Sequence[Mapping[str, Sequence[Any]]]) -> None:
        if isinstance(grid, Mapping):
            grid = [grid]
        self.grid = []
        for entry in grid:
            if not isinstance(entry, Mapping):
                raise ValidationError("parameter grid entries must be mappings")
            normalized = {}
            for key, values in entry.items():
                if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
                    values = [values]
                values = list(values)
                if not values:
                    raise ValidationError(f"parameter {key!r} has an empty value list")
                normalized[str(key)] = values
            self.grid.append(normalized)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for entry in self.grid:
            keys = sorted(entry)
            for combo in itertools.product(*(entry[k] for k in keys)):
                yield dict(zip(keys, combo))

    def __len__(self) -> int:
        total = 0
        for entry in self.grid:
            count = 1
            for values in entry.values():
                count *= len(values)
            total += count
        return total


@dataclass
class _GridResult:
    params: dict[str, Any]
    mean_score: float
    scores: list[float] = field(default_factory=list)


def _default_scorer(estimator, X, y) -> float:
    """Default scoring: macro f1 (the paper's headline metric)."""

    return f1_score(y, estimator.predict(X), average="macro")


_SCORERS: dict[str, Callable] = {
    "accuracy": lambda est, X, y: accuracy_score(y, est.predict(X)),
    "f1_macro": lambda est, X, y: f1_score(y, est.predict(X), average="macro"),
    "f1_micro": lambda est, X, y: f1_score(y, est.predict(X), average="micro"),
    "f1_weighted": lambda est, X, y: f1_score(y, est.predict(X), average="weighted"),
}


def _resolve_scorer(scoring) -> Callable:
    if scoring is None:
        return _default_scorer
    if callable(scoring):
        return scoring
    if scoring in _SCORERS:
        return _SCORERS[scoring]
    raise ValidationError(
        f"Unknown scoring {scoring!r}; expected a callable or one of {sorted(_SCORERS)}")


def _evaluate_candidate(args) -> _GridResult:
    """Fit/score one parameter combination on every CV fold."""

    estimator, params, X, y, folds, scorer = args
    scores: list[float] = []
    for train_idx, test_idx in folds:
        model = clone(estimator)
        model.set_params(**params)
        model.fit(X[train_idx], y[train_idx])
        scores.append(float(scorer(model, X[test_idx], y[test_idx])))
    return _GridResult(params=params, mean_score=float(np.mean(scores)), scores=scores)


def cross_val_score(estimator, X, y, *, cv: int | StratifiedKFold = 5,
                    scoring=None) -> np.ndarray:
    """Score an estimator with cross-validation; returns per-fold scores."""

    X = np.asarray(X)
    y = np.asarray(y)
    splitter = StratifiedKFold(cv) if isinstance(cv, int) else cv
    scorer = _resolve_scorer(scoring)
    folds = list(splitter.split(X, y))
    result = _evaluate_candidate((estimator, {}, X, y, folds, scorer))
    return np.array(result.scores)


class GridSearchCV(BaseEstimator):
    """Exhaustive grid search with cross-validation.

    Parameters
    ----------
    estimator:
        Prototype estimator; cloned for every fit.
    param_grid:
        Dict (or list of dicts) mapping parameter names to value lists.
    scoring:
        ``None`` (macro f1), a name from ``accuracy``/``f1_macro``/
        ``f1_micro``/``f1_weighted``, or a callable
        ``scorer(estimator, X, y) -> float``.
    cv:
        Number of stratified folds, or a splitter instance.
    n_jobs:
        Worker processes used to evaluate parameter combinations.
    refit:
        Refit the best parameter combination on the full data (default).
    """

    def __init__(self, estimator=None, param_grid=None, *, scoring=None,
                 cv: int | StratifiedKFold = 3, n_jobs: int = 1,
                 refit: bool = True) -> None:
        self.estimator = estimator
        self.param_grid = param_grid
        self.scoring = scoring
        self.cv = cv
        self.n_jobs = n_jobs
        self.refit = refit

    def fit(self, X, y) -> "GridSearchCV":
        if self.estimator is None or self.param_grid is None:
            raise ValidationError("GridSearchCV requires an estimator and a param_grid")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        splitter = StratifiedKFold(self.cv) if isinstance(self.cv, int) else self.cv
        folds = list(splitter.split(X, y))
        scorer = _resolve_scorer(self.scoring)

        candidates = list(ParameterGrid(self.param_grid))
        if not candidates:
            raise ValidationError("param_grid expands to zero candidates")
        tasks = [(self.estimator, params, X, y, folds, scorer) for params in candidates]

        if self.n_jobs and self.n_jobs != 1 and len(tasks) > 1:
            from ..parallel import parallel_map
            results = parallel_map(_evaluate_candidate, tasks, n_jobs=self.n_jobs)
        else:
            results = [_evaluate_candidate(task) for task in tasks]

        results.sort(key=lambda r: r.mean_score, reverse=True)
        self.cv_results_ = {
            "params": [r.params for r in results],
            "mean_test_score": np.array([r.mean_score for r in results]),
            "split_test_scores": [r.scores for r in results],
        }
        self.best_params_ = results[0].params
        self.best_score_ = results[0].mean_score
        if self.refit:
            self.best_estimator_ = clone(self.estimator)
            self.best_estimator_.set_params(**self.best_params_)
            self.best_estimator_.fit(X, y)
        return self

    def predict(self, X):
        if not hasattr(self, "best_estimator_"):
            raise ValidationError("GridSearchCV is not fitted (or refit=False)")
        return self.best_estimator_.predict(X)

    def predict_proba(self, X):
        if not hasattr(self, "best_estimator_"):
            raise ValidationError("GridSearchCV is not fitted (or refit=False)")
        return self.best_estimator_.predict_proba(X)
