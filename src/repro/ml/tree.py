"""CART decision-tree classifier.

A NumPy-vectorised implementation of the classification tree used
inside the Random Forest:

* binary splits on ``feature <= threshold``,
* Gini impurity (default) or entropy,
* per-sample weights (used to implement balanced class weights),
* random feature subsampling per split (``max_features``), which is
  what de-correlates the trees of a forest,
* Gini-importance accumulation per feature.

The split search is vectorised over split positions: for every
candidate feature the samples of the node are sorted once and the
class-weight histograms of all possible left/right partitions are
obtained from a single cumulative sum, so no Python loop runs over
samples (see the optimisation guides' "vectorise the inner loop"
advice — the only Python-level loops left are over tree nodes and
candidate features).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import (
    check_array_1d,
    check_array_2d,
    check_consistent_length,
    check_random_state,
)
from ..exceptions import ValidationError
from .base import BaseEstimator, ClassifierMixin, check_is_fitted
from .class_weight import compute_sample_weight
from .encoding import LabelEncoder

__all__ = ["DecisionTreeClassifier"]

_CRITERIA = ("gini", "entropy")


@dataclass
class _Split:
    """Best split found for one node."""

    feature: int
    threshold: float
    impurity_decrease: float
    left_mask: np.ndarray


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """Classification tree with the scikit-learn-style interface.

    Parameters
    ----------
    criterion:
        ``"gini"`` or ``"entropy"``.
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or too
        small to split.
    min_samples_split:
        Minimum number of samples a node must have to be considered for
        splitting.
    min_samples_leaf:
        Minimum number of samples required in each child.
    max_features:
        Number of features examined per split: ``None`` (all),
        ``"sqrt"``, ``"log2"``, an int, or a float fraction.
    class_weight:
        ``None``, ``"balanced"`` or a mapping; converted to sample
        weights at ``fit`` time (multiplied with any explicit
        ``sample_weight``).
    random_state:
        Seed controlling feature subsampling.
    """

    def __init__(self, *, criterion: str = "gini", max_depth: int | None = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_features=None, class_weight=None, random_state=None) -> None:
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.class_weight = class_weight
        self.random_state = random_state

    # ------------------------------------------------------------------ fit
    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        X = check_array_2d(X, "X")
        y = check_array_1d(y, "y")
        check_consistent_length(X, y)
        if self.criterion not in _CRITERIA:
            raise ValidationError(
                f"criterion must be one of {_CRITERIA}, got {self.criterion!r}")
        if self.min_samples_split < 2:
            raise ValidationError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValidationError("min_samples_leaf must be >= 1")
        if X.shape[0] == 0:
            raise ValidationError("cannot fit a tree on an empty data set")

        encoder = LabelEncoder()
        y_encoded = encoder.fit_transform(y)
        self.classes_ = encoder.classes_
        self._encoder = encoder
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        self.n_features_in_ = n_features

        weights = np.ones(n_samples, dtype=np.float64)
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
            check_consistent_length(X, sample_weight)
            if np.any(sample_weight < 0):
                raise ValidationError("sample_weight must be non-negative")
            weights *= sample_weight
        if self.class_weight is not None:
            weights *= compute_sample_weight(self.class_weight, y)

        rng = check_random_state(self.random_state)
        max_features = self._resolve_max_features(n_features)

        # Pre-computed weighted one-hot label matrix (n_samples, n_classes):
        # every split evaluation reduces to cumulative sums over its rows.
        weighted_onehot = np.zeros((n_samples, n_classes), dtype=np.float64)
        weighted_onehot[np.arange(n_samples), y_encoded] = weights

        # Flat node storage (grown dynamically).
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[np.ndarray] = []
        self._n_node_samples: list[int] = []
        self._importances = np.zeros(n_features, dtype=np.float64)

        total_weight = float(weights.sum())
        stack: list[tuple[np.ndarray, int, int]] = []  # (indices, depth, parent slot)
        root_indices = np.arange(n_samples)
        self._build(X, weighted_onehot, weights, root_indices, depth=0,
                    rng=rng, max_features=max_features, total_weight=total_weight)

        self.feature_importances_ = self._normalized_importances()
        self.tree_node_count_ = len(self._feature)
        self._finalize_nodes()
        return self

    # ------------------------------------------------------------- predict
    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "classes_")
        X = check_array_2d(X, "X")
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}")
        return self._predict_proba_raw(X)

    def _predict_proba_raw(self, X: np.ndarray) -> np.ndarray:
        """Probabilities for pre-validated input (forest hot path)."""

        return self._leaf_proba[self._apply(X)]

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def apply(self, X) -> np.ndarray:
        """Return the leaf node index reached by each sample."""

        check_is_fitted(self, "classes_")
        X = check_array_2d(X, "X")
        return self._apply(X)

    @property
    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""

        check_is_fitted(self, "classes_")
        return len(self._feature)

    def get_depth(self) -> int:
        """Depth of the fitted tree (root = depth 0)."""

        check_is_fitted(self, "classes_")
        depths = {0: 0}
        max_depth = 0
        for node in range(len(self._feature)):
            depth = depths[node]
            left, right = self._left[node], self._right[node]
            if left >= 0:
                depths[left] = depth + 1
                depths[right] = depth + 1
                max_depth = max(max_depth, depth + 1)
        return max_depth

    # ---------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """Arrays describing the fitted tree (for model artifacts).

        The snapshot holds exactly what prediction needs — the flat node
        arrays, the class index and the per-feature importances — so a
        tree restored with :meth:`set_state` predicts bit-identically.
        """

        check_is_fitted(self, "classes_")
        n_classes = len(self.classes_)
        values = (np.vstack(self._value) if self._value
                  else np.zeros((0, n_classes), dtype=np.float64))
        return {
            "feature": np.asarray(self._feature, dtype=np.int64),
            "threshold": np.asarray(self._threshold, dtype=np.float64),
            "left": np.asarray(self._left, dtype=np.int64),
            "right": np.asarray(self._right, dtype=np.int64),
            "values": values.astype(np.float64, copy=True),
            "n_node_samples": np.asarray(self._n_node_samples, dtype=np.int64),
            "classes": np.asarray(self.classes_).copy(),
            "n_features_in": int(self.n_features_in_),
            "feature_importances": np.asarray(self.feature_importances_,
                                              dtype=np.float64).copy(),
        }

    def set_state(self, state: dict) -> "DecisionTreeClassifier":
        """Restore a snapshot produced by :meth:`get_state`."""

        try:
            feature = np.asarray(state["feature"], dtype=np.int64)
            threshold = np.asarray(state["threshold"], dtype=np.float64)
            left = np.asarray(state["left"], dtype=np.int64)
            right = np.asarray(state["right"], dtype=np.int64)
            values = np.asarray(state["values"], dtype=np.float64)
            n_node_samples = np.asarray(state["n_node_samples"], dtype=np.int64)
            classes = np.asarray(state["classes"])
            n_features_in = int(state["n_features_in"])
            importances = np.asarray(state["feature_importances"],
                                     dtype=np.float64)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"invalid decision-tree state: {exc}") from exc
        n_nodes = len(feature)
        if not (len(threshold) == len(left) == len(right)
                == len(n_node_samples) == n_nodes) \
                or values.ndim != 2 or values.shape[0] != n_nodes \
                or values.shape[1] != len(classes):
            raise ValidationError("decision-tree state arrays are inconsistent")
        if n_nodes == 0:
            raise ValidationError("decision-tree state has no nodes")
        # Child pointers must stay inside the node table (leaves use -1,
        # leaf feature slots use -2): a corrupt artifact must fail here,
        # not crash inside the vectorised predict loop.
        internal = feature >= 0
        if np.any(feature >= n_features_in) or np.any(feature < -2):
            raise ValidationError("decision-tree state references an invalid feature")
        for child in (left[internal], right[internal]):
            if child.size and (child.min() < 0 or child.max() >= n_nodes):
                raise ValidationError(
                    "decision-tree state has out-of-range child pointers")
        self._feature = feature.tolist()
        self._threshold = threshold.tolist()
        self._left = left.tolist()
        self._right = right.tolist()
        self._value = [values[i] for i in range(n_nodes)]
        self._n_node_samples = n_node_samples.tolist()
        self.classes_ = classes
        self.n_features_in_ = n_features_in
        self.feature_importances_ = importances
        self._importances = importances.copy()
        self.tree_node_count_ = n_nodes
        encoder = LabelEncoder()
        encoder.set_state({"classes": classes.tolist()})
        self._encoder = encoder
        self._finalize_nodes()
        return self

    # ----------------------------------------------------------- internals
    def _resolve_max_features(self, n_features: int) -> int:
        value = self.max_features
        if value is None:
            return n_features
        if value == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if value == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
            if value < 1:
                raise ValidationError("max_features as an int must be >= 1")
            return min(int(value), n_features)
        if isinstance(value, float):
            if not 0.0 < value <= 1.0:
                raise ValidationError("max_features as a float must be in (0, 1]")
            return max(1, int(value * n_features))
        raise ValidationError(f"invalid max_features: {value!r}")

    def _impurity(self, class_weights: np.ndarray) -> np.ndarray:
        """Impurity of one or more weighted class histograms.

        ``class_weights`` has the class axis last; returns an array with
        that axis reduced.
        """

        totals = class_weights.sum(axis=-1, keepdims=True)
        safe_totals = np.where(totals > 0, totals, 1.0)
        proportions = class_weights / safe_totals
        if self.criterion == "gini":
            impurity = 1.0 - np.sum(proportions ** 2, axis=-1)
        else:  # entropy
            with np.errstate(divide="ignore", invalid="ignore"):
                logs = np.where(proportions > 0, np.log2(proportions), 0.0)
            impurity = -np.sum(proportions * logs, axis=-1)
        return np.where(totals.squeeze(-1) > 0, impurity, 0.0)

    def _new_node(self, value: np.ndarray, n_samples: int) -> int:
        node_id = len(self._feature)
        self._feature.append(-2)       # -2 marks a leaf
        self._threshold.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._value.append(value)
        self._n_node_samples.append(n_samples)
        return node_id

    def _build(self, X: np.ndarray, weighted_onehot: np.ndarray,
               weights: np.ndarray, indices: np.ndarray, depth: int,
               rng: np.random.Generator, max_features: int,
               total_weight: float) -> int:
        """Grow the subtree for ``indices``; returns its root node id."""

        node_value = weighted_onehot[indices].sum(axis=0)
        node_id = self._new_node(node_value, len(indices))

        if self._should_stop(indices, node_value, depth):
            return node_id

        split = self._best_split(X, weighted_onehot, indices, rng, max_features)
        if split is None:
            return node_id

        self._feature[node_id] = split.feature
        self._threshold[node_id] = split.threshold
        self._importances[split.feature] += split.impurity_decrease / max(total_weight, 1e-12)

        left_indices = indices[split.left_mask]
        right_indices = indices[~split.left_mask]
        left_id = self._build(X, weighted_onehot, weights, left_indices,
                              depth + 1, rng, max_features, total_weight)
        right_id = self._build(X, weighted_onehot, weights, right_indices,
                               depth + 1, rng, max_features, total_weight)
        self._left[node_id] = left_id
        self._right[node_id] = right_id
        return node_id

    def _should_stop(self, indices: np.ndarray, node_value: np.ndarray,
                     depth: int) -> bool:
        if len(indices) < self.min_samples_split:
            return True
        if self.max_depth is not None and depth >= self.max_depth:
            return True
        # Pure node: all weight concentrated in one class.
        return np.count_nonzero(node_value > 0) <= 1

    def _best_split(self, X: np.ndarray, weighted_onehot: np.ndarray,
                    indices: np.ndarray, rng: np.random.Generator,
                    max_features: int) -> _Split | None:
        n_features = X.shape[1]
        candidate_features = rng.permutation(n_features)
        node_onehot = weighted_onehot[indices]
        node_total = node_onehot.sum(axis=0)
        node_weight = float(node_total.sum())
        parent_impurity = float(self._impurity(node_total))

        best: _Split | None = None
        best_score = -np.inf
        examined = 0
        min_leaf = self.min_samples_leaf

        for feature in candidate_features:
            if examined >= max_features and best is not None:
                break
            examined += 1
            values = X[indices, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            if sorted_values[0] == sorted_values[-1]:
                continue  # constant feature in this node

            cumulative = np.cumsum(node_onehot[order], axis=0)
            n_node = len(indices)
            positions = np.arange(1, n_node)
            # A split is only valid between two distinct consecutive values
            # and if both children satisfy min_samples_leaf.
            distinct = sorted_values[1:] != sorted_values[:-1]
            size_ok = (positions >= min_leaf) & ((n_node - positions) >= min_leaf)
            valid = distinct & size_ok
            if not np.any(valid):
                continue

            left_counts = cumulative[:-1][valid]
            right_counts = node_total[None, :] - left_counts
            left_weight = left_counts.sum(axis=1)
            right_weight = right_counts.sum(axis=1)
            left_impurity = self._impurity(left_counts)
            right_impurity = self._impurity(right_counts)
            weighted_child = (left_weight * left_impurity +
                              right_weight * right_impurity) / max(node_weight, 1e-12)
            gains = parent_impurity - weighted_child

            best_local = int(np.argmax(gains))
            if gains[best_local] <= 1e-12:
                continue
            if gains[best_local] > best_score:
                valid_positions = positions[valid]
                split_position = int(valid_positions[best_local])
                threshold = float((sorted_values[split_position - 1] +
                                   sorted_values[split_position]) / 2.0)
                left_mask = values <= threshold
                # Guard against degenerate thresholds caused by float
                # rounding (all samples on one side).
                if not left_mask.any() or left_mask.all():
                    continue
                best_score = float(gains[best_local])
                best = _Split(
                    feature=int(feature),
                    threshold=threshold,
                    impurity_decrease=node_weight * float(gains[best_local]),
                    left_mask=left_mask,
                )
        return best

    def _finalize_nodes(self) -> None:
        """Freeze the grown node lists into the arrays prediction uses.

        Called once at the end of ``fit``/``set_state``; prediction then
        never converts Python lists again.  ``_leaf_proba`` holds each
        node's normalised class distribution, so ``predict_proba`` is a
        single fancy-index after the leaf walk.
        """

        self._node_feature = np.array(self._feature, dtype=np.int64)
        self._node_threshold = np.array(self._threshold, dtype=np.float64)
        self._node_left = np.array(self._left, dtype=np.int64)
        self._node_right = np.array(self._right, dtype=np.int64)
        values = np.vstack(self._value)
        sums = values.sum(axis=1, keepdims=True)
        sums[sums == 0] = 1.0
        self._leaf_proba = values / sums

    def _apply(self, X: np.ndarray) -> np.ndarray:
        """Vectorised leaf lookup: advance all samples one level at a time."""

        feature = self._node_feature
        threshold = self._node_threshold
        left = self._node_left
        right = self._node_right

        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = feature[nodes] >= 0
        while np.any(active):
            idx = np.flatnonzero(active)
            current = nodes[idx]
            go_left = X[idx, feature[current]] <= threshold[current]
            nodes[idx] = np.where(go_left, left[current], right[current])
            active = feature[nodes] >= 0
        return nodes

    def _normalized_importances(self) -> np.ndarray:
        total = self._importances.sum()
        if total <= 0:
            return np.zeros_like(self._importances)
        return self._importances / total
