"""Balanced class weights.

The paper "address[es] class imbalance through assigning balanced
weights to classes inversely proportional to class frequencies"
(Section 3).  This is scikit-learn's ``class_weight="balanced"``
heuristic:  ``weight(c) = n_samples / (n_classes * count(c))``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..exceptions import ValidationError

__all__ = ["compute_class_weight", "compute_sample_weight"]


def compute_class_weight(class_weight, classes, y) -> np.ndarray:
    """Per-class weights aligned with ``classes``.

    Parameters
    ----------
    class_weight:
        ``None`` (uniform), ``"balanced"``, or a mapping
        ``{class_label: weight}``.
    classes:
        Array of the distinct class labels (the output order).
    y:
        Training labels (used for the balanced heuristic).
    """

    classes = np.asarray(classes)
    y = np.asarray(y)
    if class_weight is None:
        return np.ones(len(classes), dtype=np.float64)

    if isinstance(class_weight, Mapping):
        weights = np.ones(len(classes), dtype=np.float64)
        for index, label in enumerate(classes.tolist()):
            if label in class_weight:
                weights[index] = float(class_weight[label])
        return weights

    if class_weight == "balanced":
        counts = np.array([(y == label).sum() for label in classes], dtype=np.float64)
        if np.any(counts == 0):
            missing = [label for label, count in zip(classes.tolist(), counts) if count == 0]
            raise ValidationError(
                f"classes {missing!r} have no samples in y; cannot balance weights"
            )
        return len(y) / (len(classes) * counts)

    raise ValidationError(
        f"class_weight must be None, 'balanced' or a mapping, got {class_weight!r}"
    )


def compute_sample_weight(class_weight, y, classes=None) -> np.ndarray:
    """Expand class weights into a per-sample weight vector."""

    y = np.asarray(y)
    if classes is None:
        classes = np.array(sorted(set(y.tolist())))
    else:
        classes = np.asarray(classes)
    class_weights = compute_class_weight(class_weight, classes, y)
    lookup = {label: weight for label, weight in zip(classes.tolist(), class_weights)}
    return np.array([lookup[label] for label in y.tolist()], dtype=np.float64)
