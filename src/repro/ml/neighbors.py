"""K-nearest-neighbours classifier.

Listed by the paper as a future-work comparator ("Other machine
learning models can also be explored and compared, such as Support
Vector Machines and K-Nearest Neighbors"); implemented here so the
baseline benchmark can include it.  Distances are computed with a
fully vectorised (blocked) Euclidean/Manhattan kernel.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    check_array_1d,
    check_array_2d,
    check_consistent_length,
    check_positive_int,
)
from ..exceptions import ValidationError
from .base import BaseEstimator, ClassifierMixin, check_is_fitted
from .encoding import LabelEncoder

__all__ = ["KNeighborsClassifier"]

_METRICS = ("euclidean", "manhattan")
_WEIGHTS = ("uniform", "distance")


class KNeighborsClassifier(BaseEstimator, ClassifierMixin):
    """Classic KNN with uniform or distance weighting.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours considered.
    weights:
        ``"uniform"`` (majority vote) or ``"distance"`` (inverse
        distance weighted vote).
    metric:
        ``"euclidean"`` or ``"manhattan"``.
    block_size:
        Number of query samples whose distance matrix is held in memory
        at once (keeps memory bounded for large test sets).
    """

    def __init__(self, n_neighbors: int = 5, *, weights: str = "uniform",
                 metric: str = "euclidean", block_size: int = 512) -> None:
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.metric = metric
        self.block_size = block_size

    def fit(self, X, y) -> "KNeighborsClassifier":
        X = check_array_2d(X, "X")
        y = check_array_1d(y, "y")
        check_consistent_length(X, y)
        check_positive_int(self.n_neighbors, "n_neighbors")
        if self.weights not in _WEIGHTS:
            raise ValidationError(f"weights must be one of {_WEIGHTS}")
        if self.metric not in _METRICS:
            raise ValidationError(f"metric must be one of {_METRICS}")
        if self.n_neighbors > X.shape[0]:
            raise ValidationError(
                f"n_neighbors={self.n_neighbors} exceeds the {X.shape[0]} training samples")

        self._X = X
        encoder = LabelEncoder()
        self._y = encoder.fit_transform(y)
        self.classes_ = encoder.classes_
        self.n_features_in_ = X.shape[1]
        return self

    # ------------------------------------------------------------- predict
    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "classes_")
        X = check_array_2d(X, "X")
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}")
        n_classes = len(self.classes_)
        proba = np.zeros((X.shape[0], n_classes), dtype=np.float64)

        for start in range(0, X.shape[0], self.block_size):
            stop = min(start + self.block_size, X.shape[0])
            block = X[start:stop]
            distances = self._pairwise_distances(block)
            neighbor_idx = np.argpartition(distances, self.n_neighbors - 1,
                                           axis=1)[:, :self.n_neighbors]
            row_indices = np.arange(block.shape[0])[:, None]
            neighbor_dist = distances[row_indices, neighbor_idx]
            neighbor_labels = self._y[neighbor_idx]

            if self.weights == "uniform":
                vote_weights = np.ones_like(neighbor_dist)
            else:
                vote_weights = 1.0 / np.maximum(neighbor_dist, 1e-12)

            for class_index in range(n_classes):
                mask = neighbor_labels == class_index
                proba[start:stop, class_index] = np.sum(vote_weights * mask, axis=1)

        sums = proba.sum(axis=1, keepdims=True)
        sums[sums == 0] = 1.0
        return proba / sums

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def kneighbors(self, X, n_neighbors: int | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, indices)`` of the nearest training samples."""

        check_is_fitted(self, "classes_")
        X = check_array_2d(X, "X")
        k = n_neighbors or self.n_neighbors
        distances = self._pairwise_distances(X)
        order = np.argsort(distances, axis=1)[:, :k]
        row = np.arange(X.shape[0])[:, None]
        return distances[row, order], order

    # ----------------------------------------------------------- internals
    def _pairwise_distances(self, block: np.ndarray) -> np.ndarray:
        if self.metric == "euclidean":
            # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b  (clipped for rounding).
            a2 = np.sum(block ** 2, axis=1)[:, None]
            b2 = np.sum(self._X ** 2, axis=1)[None, :]
            squared = a2 + b2 - 2.0 * block @ self._X.T
            return np.sqrt(np.clip(squared, 0.0, None))
        # manhattan
        return np.sum(np.abs(block[:, None, :] - self._X[None, :, :]), axis=2)
