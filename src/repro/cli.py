"""Command-line interface: ``repro-classify``.

Three sub-commands cover the library's main entry points:

``generate``
    Materialise a synthetic sciCORE-like software tree on disk.
``experiment``
    Run the end-to-end experiment (the paper's evaluation) at a chosen
    scale and print the classification report, feature importances and
    threshold sweep.
``classify``
    Train on a software tree and classify a directory of executables
    (the envisioned production workflow of Figure 1).
"""

from __future__ import annotations

import argparse
import sys

from .config import default_config
from .logging_utils import configure_logging
from .version_info import describe_environment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-classify",
        description="Fuzzy Hash Classifier for HPC application classification "
                    "(reproduction of Jakobsche & Ciorba, SC 2024)")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="enable INFO logging")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic software tree")
    generate.add_argument("output", help="directory to create the tree in")
    generate.add_argument("--scale", default=None,
                          choices=["small", "medium", "full"],
                          help="corpus scale preset (default: REPRO_SCALE or medium)")
    generate.add_argument("--seed", type=int, default=None, help="corpus seed")

    experiment = sub.add_parser("experiment", help="run the end-to-end evaluation")
    experiment.add_argument("--scale", default=None,
                            choices=["small", "medium", "full"])
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument("--split", default="paper", choices=["paper", "random"],
                            help="how the unknown classes are chosen")
    experiment.add_argument("--no-grid-search", action="store_true",
                            help="skip hyper-parameter tuning (use defaults)")
    experiment.add_argument("--jobs", type=int, default=1,
                            help="worker processes for extraction/training")

    classify = sub.add_parser("classify", help="train on a software tree and "
                                               "classify a directory of executables")
    classify.add_argument("train_tree", help="software tree with <Class>/<version>/<exe> layout")
    classify.add_argument("target", help="directory of executables to classify")
    classify.add_argument("--threshold", type=float, default=0.5,
                          help="confidence threshold for the unknown label")
    classify.add_argument("--allowed", nargs="*", default=None,
                          help="application classes allowed for this allocation")

    info = sub.add_parser("info", help="print version and environment information")

    return parser


def _cmd_generate(args) -> int:
    from .corpus.builder import CorpusBuilder

    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = default_config(args.scale, **overrides)
    dataset = CorpusBuilder(config=config).materialize_tree(args.output)
    print(dataset.summary())
    return 0


def _cmd_experiment(args) -> int:
    from .core.evaluation import ExperimentRunner
    from .core.reporting import (classification_report_table,
                                 feature_importance_table,
                                 threshold_sweep_table, unknown_class_table)

    overrides = {"n_jobs": args.jobs}
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = default_config(args.scale, **overrides)
    runner = ExperimentRunner(config, split_mode=args.split,
                              run_grid_search=not args.no_grid_search)
    result = runner.run()
    print(result.summary())
    print()
    print(unknown_class_table(result.split))
    print()
    print(classification_report_table(result.report))
    print()
    print(feature_importance_table(result.grouped_importance))
    if result.threshold_sweep is not None:
        print()
        print(threshold_sweep_table(result.threshold_sweep))
    return 0


def _cmd_classify(args) -> int:
    from .core.classifier import FuzzyHashClassifier
    from .core.workflow import ClassificationWorkflow
    from .corpus.scanner import CorpusScanner
    from .features.pipeline import FeatureExtractionPipeline

    scan = CorpusScanner(args.train_tree).scan()
    features = FeatureExtractionPipeline().extract_dataset(scan.dataset)
    classifier = FuzzyHashClassifier(confidence_threshold=args.threshold)
    classifier.fit(features)
    workflow = ClassificationWorkflow(classifier, allowed_classes=args.allowed)
    classifications = workflow.classify_directory(args.target)
    print(workflow.report(classifications))
    flagged = sum(1 for c in classifications if c.is_suspicious())
    print(f"\n{len(classifications)} executables classified, {flagged} flagged")
    return 0


def _cmd_info(_args) -> int:
    print(describe_environment())
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "experiment": _cmd_experiment,
    "classify": _cmd_classify,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging("INFO")
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
