"""Command-line interface: ``repro-classify``.

The sub-commands cover the library's main entry points:

``generate``
    Materialise a synthetic sciCORE-like software tree on disk.
``experiment``
    Run the end-to-end experiment (the paper's evaluation) at a chosen
    scale and print the classification report, feature importances and
    threshold sweep.
``train``
    Train the Fuzzy Hash Classifier on a software tree (or an exported
    features JSON) and persist it as a versioned model artifact
    (``--out model.rpm``) for later no-retrain classification.
``classify``
    Classify a directory of executables (the envisioned production
    workflow of Figure 1) — either retraining from a software tree
    (``classify TREE TARGET``) or, for fast cold starts, loading a
    saved artifact (``classify --model model.rpm TARGET``).
    ``--save-index`` persists the fitted anchor index; ``--index``
    reuses a saved one while retraining.
``serve``
    Run the long-running classification server: load a model artifact
    once, then answer ``POST /classify`` over HTTP with request
    coalescing, backpressure, ``/metrics``, an optional JSONL decision
    log and zero-downtime model hot-reload (see
    :mod:`repro.serving`).  ``--ingest`` additionally enables online
    corpus ingestion (``POST /ingest`` / ``DELETE /samples/<id>``) with
    age-off, per-class caps and periodic atomic republish
    (``--max-age``, ``--max-class-members``, ``--republish-interval``).
``ingest``
    Thin client for an ingest-enabled server: submit labelled
    executables (``ingest --class NAME file...``) or purge a sample
    (``ingest --purge ID``).
``model inspect | validate``
    Inspect a model artifact's header, or fully restore it to prove it
    will serve.
``index build | query | stats | compact | merge``
    Manage persistent similarity indexes: build one from a software
    tree (or an exported features JSON) — single-file by default, a
    sharded directory with ``--shards N`` — run top-k queries against
    either layout, inspect statistics (``--json`` adds a per-shard
    breakdown), reclaim tombstoned members (``compact``) and convert
    between the two layouts in both directions (``merge``).

Global ``--jobs N`` / ``--executor SPEC`` (before the sub-command)
select the parallelism every sub-command fans out with: ``--executor``
accepts ``serial``, ``thread[:N]`` or ``process[:N]``.

Errors raised by the library (:class:`~repro.exceptions.ReproError`)
print a one-line message to stderr and exit with status 2 — no
tracebacks for operator-facing failures like a missing or corrupt index
or model file.
"""

from __future__ import annotations

import argparse
import sys

from .config import default_config
from .exceptions import ReproError
from .logging_utils import configure_logging
from .version_info import describe_environment, version_string

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-classify",
        description="Fuzzy Hash Classifier for HPC application classification "
                    "(reproduction of Jakobsche & Ciorba, SC 2024)")
    parser.add_argument("--version", action="version", version=version_string())
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="enable INFO logging")
    parser.add_argument("--jobs", type=int, default=None, dest="global_jobs",
                        metavar="N",
                        help="default worker count for any sub-command that "
                             "parallelises (sub-command --jobs wins)")
    parser.add_argument("--executor", default=None, metavar="SPEC",
                        help="execution backend: serial, thread[:N] or "
                             "process[:N] (takes precedence over --jobs)")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic software tree")
    generate.add_argument("output", help="directory to create the tree in")
    generate.add_argument("--scale", default=None,
                          choices=["small", "medium", "full"],
                          help="corpus scale preset (default: REPRO_SCALE or medium)")
    generate.add_argument("--seed", type=int, default=None, help="corpus seed")

    experiment = sub.add_parser("experiment", help="run the end-to-end evaluation")
    experiment.add_argument("--scale", default=None,
                            choices=["small", "medium", "full"])
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument("--split", default="paper", choices=["paper", "random"],
                            help="how the unknown classes are chosen")
    experiment.add_argument("--no-grid-search", action="store_true",
                            help="skip hyper-parameter tuning (use defaults)")
    experiment.add_argument("--jobs", type=int, default=None,
                            help="worker processes for extraction/training "
                                 "(default: the global --jobs, else 1)")

    train = sub.add_parser("train", help="train and save a model artifact "
                                         "for no-retrain classification")
    train.add_argument("source",
                       help="software tree with <Class>/<version>/<exe> "
                            "layout, or a features JSON exported by the "
                            "library (skips the hashing pass)")
    train.add_argument("--out", "-o", required=True, metavar="FILE",
                       help="model artifact file to write (e.g. model.rpm)")
    train.add_argument("--threshold", type=float, default=0.5,
                       help="confidence threshold for the unknown label")
    train.add_argument("--estimators", type=int, default=100,
                       help="number of trees in the Random Forest")
    train.add_argument("--seed", type=int, default=None,
                       help="random seed for the forest")
    train.add_argument("--types", nargs="+", default=None, metavar="TYPE",
                       help="fuzzy-hash feature types "
                            "(default: the paper's three types)")
    train.add_argument("--family", default="ctph",
                       choices=["ctph", "vector", "both"],
                       help="hash family per feature type: the paper's "
                            "CTPH digests, the fixed-length vector "
                            "digests, or both side by side (default ctph)")
    train.add_argument("--jobs", type=int, default=None,
                       help="worker processes for extraction/training "
                            "(default: the global --jobs, else 1)")
    train.add_argument("--no-index", action="store_true",
                       help="write a headless artifact without the anchor "
                            "index (smaller; classify will need --index)")

    classify = sub.add_parser(
        "classify",
        help="classify a directory of executables, retraining from a "
             "software tree or loading a saved model artifact")
    classify.add_argument("source",
                          help="software tree (or features JSON) to train on; "
                               "with --model this is the directory of "
                               "executables to classify instead")
    classify.add_argument("target", nargs="?", default=None,
                          help="directory of executables to classify "
                               "(omitted when --model is used)")
    classify.add_argument("--model", default=None, metavar="FILE",
                          help="load a saved model artifact instead of "
                               "retraining (fast cold start)")
    classify.add_argument("--threshold", type=float, default=None,
                          help="confidence threshold for the unknown label "
                               "(default 0.5, or the saved model's threshold)")
    classify.add_argument("--allowed", nargs="*", default=None,
                          help="application classes allowed for this allocation")
    classify.add_argument("--estimators", type=int, default=100,
                          help="number of trees when retraining")
    classify.add_argument("--seed", type=int, default=None,
                          help="random seed when retraining")
    classify.add_argument("--family", default=None,
                          choices=["ctph", "vector", "both"],
                          help="hash family when retraining (default ctph; "
                               "a --model artifact carries its own family)")
    classify.add_argument("--index", default=None, metavar="FILE",
                          help="similarity index reused while retraining, or "
                               "supplying the anchors of a headless --model "
                               "artifact")
    classify.add_argument("--save-index", default=None, metavar="FILE",
                          help="persist the fitted similarity index to FILE")
    classify.add_argument("--save-model", default=None, metavar="FILE",
                          help="persist the fitted model artifact to FILE "
                               "after training")
    classify.add_argument("--jsonl", action="store_true",
                          help="stream one JSON decision per line to stdout "
                               "instead of the report table (pipeable)")

    serve = sub.add_parser(
        "serve",
        help="run the long-running classification server from a saved "
             "model artifact (coalescing, backpressure, /metrics, "
             "hot reload)")
    serve.add_argument("--model", required=True, metavar="FILE",
                       help="model artifact to serve; replacing the file "
                            "atomically hot-reloads it without downtime")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (default 8080; 0 picks a free port)")
    serve.add_argument("--allowed", nargs="*", default=None,
                       help="application classes allowed for this allocation")
    serve.add_argument("--workers", type=int, default=2,
                       help="batch worker threads draining the request "
                            "queue (default 2)")
    serve.add_argument("--mmap", action="store_true",
                       help="memory-map the model artifact instead of "
                            "copying it into the heap: O(header) cold "
                            "start, and every process serving the same "
                            "file shares its pages through the OS page "
                            "cache (v4 artifacts; older files fall back "
                            "to the copying load). /healthz and /metrics "
                            "report the active mode as load_mode")
    serve.add_argument("--score-workers", type=int, default=0, metavar="N",
                       help="fork N scoring worker processes and dispatch "
                            "coalesced micro-batches across them (default "
                            "0 = score in-process). Decisions are bit-"
                            "identical to in-process scoring; combine "
                            "with --mmap so the workers share one copy "
                            "of the model. /metrics reports per-worker "
                            "batch counters under scoring_workers, "
                            "alongside the incomparable_comparisons "
                            "digest-comparability counters. Incompatible "
                            "with --ingest")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="items coalesced into one classify pass "
                            "(default 32)")
    serve.add_argument("--queue-depth", type=int, default=256,
                       help="queued items admitted before requests are "
                            "rejected with 503 (default 256)")
    serve.add_argument("--max-item-bytes", type=int, default=None,
                       help="per-executable payload cap in bytes "
                            "(default 32 MiB)")
    serve.add_argument("--reload-interval", type=float, default=2.0,
                       help="seconds between model-artifact change polls "
                            "(0 disables hot reload; default 2)")
    serve.add_argument("--decision-log", default=None, metavar="FILE",
                       help="append every decision to this JSONL file "
                            "(size-rotated)")
    serve.add_argument("--decision-log-max-bytes", type=int,
                       default=None,
                       help="rotate the decision log past this size "
                            "(default 32 MiB)")
    serve.add_argument("--cache-size", type=int, default=None,
                       help="digest-cache capacity of the served model "
                            "(default 1024; 0 disables)")
    serve.add_argument("--ingest", action="store_true",
                       help="enable online ingestion: POST /ingest adds "
                            "labelled samples to the live corpus and "
                            "DELETE /samples/<id> purges them")
    serve.add_argument("--ingest-shards", type=int, default=4,
                       help="shard count when the artifact's index must be "
                            "converted for mutation (default 4)")
    serve.add_argument("--max-ingest-items", type=int, default=None,
                       help="per-request ingest sample cap (default 32)")
    serve.add_argument("--wal-dir", default=None, metavar="DIR",
                       help="write-ahead-log directory (with --ingest): "
                            "every corpus mutation is fsynced there "
                            "before it is acknowledged, and the log's "
                            "tail is replayed over the artifact on "
                            "startup, so acked ingests survive a crash")
    serve.add_argument("--wal-repair", action="store_true",
                       help="permit startup recovery to truncate the "
                            "write-ahead log at mid-log corruption, "
                            "discarding every later record (a torn "
                            "final record is always truncated; earlier "
                            "damage otherwise refuses to start)")
    serve.add_argument("--max-age", type=float, default=None, metavar="SECS",
                       help="age-off horizon for online-ingested samples "
                            "(default: never)")
    serve.add_argument("--max-class-members", type=int, default=None,
                       metavar="N",
                       help="cap on corpus members per class; online "
                            "samples are evicted oldest-first past it")
    serve.add_argument("--compact-ratio", type=float, default=0.25,
                       help="tombstone fraction that triggers index "
                            "compaction (default 0.25)")
    serve.add_argument("--republish-interval", type=float, default=None,
                       metavar="SECS",
                       help="seconds between atomic republishes of the "
                            "grown corpus (default: never)")
    serve.add_argument("--republish-path", default=None, metavar="FILE",
                       help="republish target (default: the served --model "
                            "path itself)")
    serve.add_argument("--lifecycle-interval", type=float, default=5.0,
                       metavar="SECS",
                       help="seconds between lifecycle policy sweeps "
                            "(default 5)")
    serve.add_argument("--trace-sample", type=float, default=1.0,
                       metavar="RATE",
                       help="fraction of requests to trace into "
                            "/debug/trace and the per-stage histograms "
                            "(0 disables tracing; default 1.0)")
    serve.add_argument("--slow-request-ms", type=float, default=1000.0,
                       metavar="MS",
                       help="traced requests at least this slow land in "
                            "the slow ring and emit a structured "
                            "slow-request log line (0 disables; "
                            "default 1000)")
    serve.add_argument("--trace-ring", type=int, default=128, metavar="N",
                       help="how many recent traces /debug/trace keeps "
                            "(default 128)")
    serve.add_argument("--enable-profiling", action="store_true",
                       help="allow GET /debug/profile?seconds=N (cProfile "
                            "over the coalescer workers; costs throughput "
                            "while a window is open — see the README's "
                            "security caveats)")

    ingest = sub.add_parser(
        "ingest",
        help="submit labelled samples to (or purge them from) a running "
             "ingest-enabled server")
    ingest.add_argument("files", nargs="*",
                        help="executable files to submit (base64, inline)")
    ingest.add_argument("--server", default="http://127.0.0.1:8080",
                        metavar="URL",
                        help="server base URL (default "
                             "http://127.0.0.1:8080)")
    ingest.add_argument("--class", dest="class_name", default=None,
                        metavar="NAME",
                        help="application class label for every submitted "
                             "file (required unless --purge)")
    ingest.add_argument("--purge", default=None, metavar="SAMPLE_ID",
                        help="purge this sample id instead of submitting "
                             "files")
    ingest.add_argument("--timeout", type=float, default=60.0,
                        help="request timeout in seconds (default 60)")

    model = sub.add_parser("model", help="inspect and validate saved model "
                                         "artifacts")
    model_sub = model.add_subparsers(dest="model_command", required=True)
    model_inspect = model_sub.add_parser(
        "inspect", help="print a model artifact's header summary")
    model_inspect.add_argument("model_file", help="artifact written by "
                                                  "'train --out' or save_model")
    model_validate = model_sub.add_parser(
        "validate", help="fully restore an artifact to prove it will serve")
    model_validate.add_argument("model_file", help="artifact to validate")
    model_validate.add_argument("--index", default=None, metavar="FILE",
                                help="anchor index for headless artifacts")

    index = sub.add_parser("index", help="build, query and inspect persistent "
                                         "similarity indexes")
    index_sub = index.add_subparsers(dest="index_command", required=True)

    index_build = index_sub.add_parser(
        "build", help="build an index from a software tree or features JSON")
    index_build.add_argument("source",
                             help="software tree directory "
                                  "(<Class>/<version>/<exe>) or a features "
                                  "JSON file exported by the library")
    index_build.add_argument("--output", "-o", required=True,
                             help="index file to write")
    index_build.add_argument("--types", nargs="+", default=None,
                             metavar="TYPE",
                             help="fuzzy-hash feature types to index "
                                  "(default: the paper's three types)")
    index_build.add_argument("--family", default="ctph",
                             choices=["ctph", "vector", "both"],
                             help="hash family per feature type "
                                  "(default ctph)")
    index_build.add_argument("--shards", type=int, default=None, metavar="N",
                             help="build a sharded index directory with N "
                                  "shards instead of a single file")

    index_query = index_sub.add_parser(
        "query", help="top-k similarity query against a saved index")
    index_query.add_argument("index_file", help="index file written by "
                                                "'index build' or --save-index")
    index_query.add_argument("target",
                             help="executable to hash and query, or a raw "
                                  "SSDeep digest string with --digest")
    index_query.add_argument("--digest", action="store_true",
                             help="treat TARGET as a digest string instead "
                                  "of a file path")
    index_query.add_argument("--type", dest="feature_type", default=None,
                             help="restrict scoring to one feature type")
    index_query.add_argument("-k", type=int, default=10,
                             help="number of results (default 10)")
    index_query.add_argument("--min-score", type=int, default=1,
                             help="drop matches scoring below this (default 1)")

    index_stats = index_sub.add_parser(
        "stats", help="print statistics of a saved index")
    index_stats.add_argument("index_file", help="index file or sharded "
                                                "directory to inspect")
    index_stats.add_argument("--json", action="store_true",
                             help="machine-readable output, with a per-shard "
                                  "breakdown for sharded indexes")

    index_compact = index_sub.add_parser(
        "compact", help="rebuild a sharded index without its tombstoned "
                        "members, reclaiming space")
    index_compact.add_argument("index_dir", help="sharded index directory "
                                                 "written by 'index build "
                                                 "--shards' or 'index merge'")

    index_merge = index_sub.add_parser(
        "merge", help="convert between single-file and sharded layouts "
                      "(both directions)")
    index_merge.add_argument("source", help="index file or sharded directory "
                                            "to convert")
    index_merge.add_argument("--output", "-o", required=True,
                             help="destination: a sharded directory with "
                                  "--shards, else a single index file")
    index_merge.add_argument("--shards", type=int, default=None, metavar="N",
                             help="write a sharded directory with N shards "
                                  "(default: merge into one single-file "
                                  "index)")

    info = sub.add_parser("info", help="print version and environment information")

    return parser


def _cmd_generate(args) -> int:
    from .corpus.builder import CorpusBuilder

    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = default_config(args.scale, **overrides)
    dataset = CorpusBuilder(config=config).materialize_tree(args.output)
    print(dataset.summary())
    return 0


def _effective_jobs(args, default: int = 1) -> int:
    """Sub-command ``--jobs`` wins over the global one, else ``default``."""

    jobs = getattr(args, "jobs", None)
    if jobs is None:
        jobs = getattr(args, "global_jobs", None)
    return default if jobs is None else jobs


def _cmd_experiment(args) -> int:
    from .core.evaluation import ExperimentRunner
    from .core.reporting import (classification_report_table,
                                 feature_importance_table,
                                 threshold_sweep_table, unknown_class_table)

    overrides = {"n_jobs": _effective_jobs(args)}
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = default_config(args.scale, **overrides)
    runner = ExperimentRunner(config, split_mode=args.split,
                              run_grid_search=not args.no_grid_search)
    result = runner.run()
    print(result.summary())
    print()
    print(unknown_class_table(result.split))
    print()
    print(classification_report_table(result.report))
    print()
    print(feature_importance_table(result.grouped_importance))
    if result.threshold_sweep is not None:
        print()
        print(threshold_sweep_table(result.threshold_sweep))
    return 0


def _cmd_train(args) -> int:
    from .api.service import ClassificationService
    from .features.extractors import (FEATURE_TYPES,
                                      resolve_family_feature_types)

    feature_types = tuple(args.types) if args.types else FEATURE_TYPES
    # Extraction must cover the family-expanded types (family="both"
    # needs the vector siblings alongside the CTPH digests).
    active_types = resolve_family_feature_types(feature_types, args.family)
    features = _index_features(args.source, active_types,
                               executor=args.executor)
    service = ClassificationService.train(
        features, feature_types=feature_types, family=args.family,
        confidence_threshold=args.threshold, n_estimators=args.estimators,
        random_state=args.seed, n_jobs=_effective_jobs(args),
        executor=args.executor)
    path = service.save(args.out, include_index=not args.no_index)
    print(f"trained on {len(features)} samples "
          f"({len(service.classes_)} classes) -> {path} "
          f"({path.stat().st_size} bytes)")
    return 0


def _cmd_classify(args) -> int:
    from .api.service import ClassificationService
    from .exceptions import ValidationError
    from .features.extractors import (FEATURE_TYPES,
                                      resolve_family_feature_types)
    from .index import load_index

    jobs = _effective_jobs(args)
    if args.model:
        if args.target is not None:
            raise ValidationError(
                "with --model, pass only the directory to classify "
                "(the model replaces the training source)")
        if args.save_model:
            raise ValidationError("--save-model requires training; it cannot "
                                  "be combined with --model")
        if args.family is not None:
            raise ValidationError("--family applies when retraining; a "
                                  "--model artifact carries its own family")
        target = args.source
        service = ClassificationService.load(args.model, index=args.index,
                                             allowed_classes=args.allowed,
                                             n_jobs=jobs,
                                             executor=args.executor)
        if args.threshold is not None:
            from ._validation import check_probability

            service.classifier.model_.confidence_threshold = \
                check_probability(args.threshold, "threshold")
    else:
        if args.target is None:
            raise ValidationError(
                "classify needs a training source and a target directory "
                "(or --model FILE plus a target directory)")
        target = args.target
        # Load the index first: a missing/corrupt file must fail fast, not
        # after the (potentially expensive) training feature pass.  Both
        # layouts work: a single .rpsi file or a sharded directory.
        index = load_index(args.index,
                           executor=args.executor) if args.index else None
        family = args.family or "ctph"
        active_types = resolve_family_feature_types(FEATURE_TYPES, family)
        features = _index_features(args.source, active_types,
                                   executor=args.executor)
        threshold = 0.5 if args.threshold is None else args.threshold
        service = ClassificationService.train(
            features, family=family, confidence_threshold=threshold,
            n_estimators=args.estimators, random_state=args.seed,
            allowed_classes=args.allowed, index=index, n_jobs=jobs,
            executor=args.executor)
        if args.save_model:
            print(f"model artifact saved to {service.save(args.save_model)}")
    if args.save_index:
        saved = service.similarity_index.save(args.save_index)
        print(f"similarity index saved to {saved}")
    if args.jsonl:
        return _stream_decisions_jsonl(service, target)
    decisions = service.classify_directory(target)
    from .api.service import render_report

    print(render_report(decisions))
    flagged = sum(1 for d in decisions if d.is_suspicious())
    print(f"\n{len(decisions)} executables classified, {flagged} flagged")
    return 0


def _stream_decisions_jsonl(service, target) -> int:
    """Stream one JSON decision per line (micro-batched, bounded memory)."""

    import json

    from .api.service import list_directory

    for decision in service.classify_stream(list_directory(target)):
        predicted = decision.predicted_class
        if not isinstance(predicted, (str, int, float)):
            predicted = str(predicted)
        print(json.dumps({
            "sample_id": decision.sample_id,
            "predicted_class": predicted,
            "confidence": round(decision.confidence, 6),
            "decision": decision.decision,
        }, sort_keys=True), flush=True)
    return 0


def _cmd_serve(args) -> int:
    from .logging_utils import configure_logging as _configure
    from .serving import (ClassificationServer, DecisionLog, LifecycleConfig,
                          LifecycleManager, MetricsRegistry, ModelManager,
                          ServerConfig)

    # A resident server is multi-threaded by construction: re-configure
    # logging with thread names even when --verbose already set it up.
    _configure("INFO" if args.verbose else "WARNING", include_thread=True)
    # One registry shared by every serving layer, so GET /metrics also
    # carries the manager's reload counters and the log's rotations.
    registry = MetricsRegistry()
    load_kwargs = {}
    if args.cache_size is not None:
        load_kwargs["cache_size"] = args.cache_size
    if args.mmap:
        load_kwargs["mmap"] = True
    if args.score_workers and args.ingest:
        from .exceptions import ValidationError

        raise ValidationError(
            "--score-workers cannot be combined with --ingest: scoring "
            "workers serve the artifact on disk and would miss "
            "unpublished corpus mutations")
    if args.wal_dir and not args.ingest:
        from .exceptions import ValidationError

        raise ValidationError(
            "--wal-dir requires --ingest: the write-ahead log records "
            "corpus mutations, which an immutable server never performs")
    # Failpoints (REPRO_FAULTS=site:action[@after],...) are armed here,
    # in the server process, so the crash-sweep harness can kill a live
    # subprocess at any registered site.  No-op without the env var.
    from .testing import arm_from_env

    arm_from_env()
    manager = ModelManager(args.model,
                           poll_interval=args.reload_interval,
                           metrics=registry,
                           allowed_classes=args.allowed,
                           n_jobs=_effective_jobs(args),
                           executor=args.executor,
                           mutable=args.ingest,
                           n_shards=args.ingest_shards,
                           score_workers=args.score_workers,
                           wal_dir=args.wal_dir,
                           wal_repair=args.wal_repair,
                           **load_kwargs)
    lifecycle = None
    if args.ingest:
        lifecycle = LifecycleManager(
            manager,
            LifecycleConfig(max_age_seconds=args.max_age,
                            max_members_per_class=args.max_class_members,
                            compact_ratio=args.compact_ratio,
                            republish_interval=args.republish_interval,
                            republish_path=args.republish_path,
                            sweep_interval=args.lifecycle_interval),
            metrics=registry)
    decision_log = None
    if args.decision_log:
        log_kwargs = {}
        if args.decision_log_max_bytes is not None:
            log_kwargs["max_bytes"] = args.decision_log_max_bytes
        decision_log = DecisionLog(args.decision_log, metrics=registry,
                                   **log_kwargs)
    config_kwargs = {}
    if args.max_item_bytes is not None:
        config_kwargs["max_item_bytes"] = args.max_item_bytes
    if args.max_ingest_items is not None:
        config_kwargs["max_ingest_items"] = args.max_ingest_items
    config = ServerConfig(
        host=args.host, port=args.port, workers=args.workers,
        max_batch=args.max_batch, queue_depth=args.queue_depth,
        enable_ingest=args.ingest,
        trace_sample=args.trace_sample,
        slow_request_ms=args.slow_request_ms,
        trace_ring=args.trace_ring,
        enable_profiling=args.enable_profiling,
        **config_kwargs)
    server = ClassificationServer(manager, config, metrics=registry,
                                  decision_log=decision_log,
                                  lifecycle=lifecycle)
    server.start()
    endpoints = "POST /classify, GET /healthz, GET /metrics, " \
                "GET /debug/trace"
    if args.enable_profiling:
        endpoints += ", GET /debug/profile"
    if args.ingest:
        endpoints += ", POST /ingest, DELETE /samples/<id>"
    mode = f"load={manager.load_mode}"
    if args.score_workers:
        mode += f", score_workers={args.score_workers}"
    if args.wal_dir:
        mode += f", wal={args.wal_dir}"
    print(f"serving {args.model} on http://{args.host}:{server.port} "
          f"({mode}; {endpoints}; Ctrl-C or SIGTERM drains and exits)",
          flush=True)
    return server.run_until_signalled()


def _cmd_ingest(args) -> int:
    import base64
    import json
    from urllib.parse import quote, urlsplit

    from .exceptions import ServingError, ValidationError

    split = urlsplit(args.server if "//" in args.server
                     else f"http://{args.server}")
    if split.scheme != "http" or not split.hostname:
        raise ValidationError(
            f"--server must be an http://host:port URL, got {args.server!r}")
    if args.purge is not None:
        if args.files or args.class_name:
            raise ValidationError(
                "--purge takes no files and no --class")
        method, path, body = ("DELETE",
                              "/samples/" + quote(args.purge, safe=""),
                              b"")
    else:
        if not args.files:
            raise ValidationError(
                "ingest needs executable files to submit (or --purge ID)")
        if not args.class_name:
            raise ValidationError(
                "ingest needs --class NAME (online samples must be "
                "labelled)")
        items = []
        for name in args.files:
            try:
                with open(name, "rb") as handle:
                    data = handle.read()
            except OSError as exc:
                raise ValidationError(f"cannot read {name}: {exc}") from exc
            items.append({"id": name, "class": args.class_name,
                          "data": base64.b64encode(data).decode("ascii")})
        method, path = "POST", "/ingest"
        body = json.dumps({"items": items}).encode("utf-8")
    status, payload = _http_json(split.hostname, split.port or 80, method,
                                 path, body, timeout=args.timeout)
    if status != 200:
        raise ServingError(
            f"server answered {status}: {payload.get('error', payload)}")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _http_json(host: str, port: int, method: str, path: str, body: bytes, *,
               timeout: float) -> tuple[int, dict]:
    import http.client
    import json

    from .exceptions import ServingError

    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
    except OSError as exc:
        raise ServingError(
            f"cannot reach server at {host}:{port}: {exc}") from exc
    finally:
        connection.close()
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServingError(
            f"server answered {response.status} with a non-JSON body: "
            f"{exc}") from exc
    return response.status, payload


def _cmd_model_inspect(args) -> int:
    from .api.artifact import inspect_model

    info = inspect_model(args.model_file)
    print(_format_model_info(info))
    return 0


def _cmd_model_validate(args) -> int:
    from .api.artifact import validate_model

    info = validate_model(args.model_file, index=args.index)
    print(f"{args.model_file}: OK")
    print(_format_model_info(info))
    return 0


def _format_model_info(info: dict) -> str:
    classes = ", ".join(info["classes"][:8])
    if info["n_classes"] > 8:
        classes += f", ... ({info['n_classes']} total)"
    if info["index_included"]:
        index_line = f"embedded, {info['index_members']} anchors"
        if info.get("index_sharded"):
            index_line += f" across {info['index_shards']} shards"
    else:
        index_line = "not included (headless)"
    family = info.get("family", "ctph")
    family_line = f"hash family: {family}"
    families = info.get("families") or {}
    vector_types = families.get("vector") or []
    if vector_types:
        family_line += (f" ({len(families.get('ctph') or [])} ctph + "
                        f"{len(vector_types)} vector active types)")
    return "\n".join([
        f"kind: {info['kind']} "
        f"(format v{info['format_version']}, "
        f"written by repro {info['library_version']})",
        f"file: {info['file_bytes']} bytes",
        f"feature types: {', '.join(info['feature_types'])}",
        family_line,
        f"classes ({info['n_classes']}): {classes}",
        f"forest: {info['n_trees']} trees over {info['n_features']} features, "
        f"confidence threshold {info['confidence_threshold']}",
        f"anchor strategy: {info['anchor_strategy']}",
        f"similarity index: {index_line}",
    ])


def _cmd_model(args) -> int:
    handler = {"inspect": _cmd_model_inspect,
               "validate": _cmd_model_validate}[args.model_command]
    return handler(args)


def _index_features(source: str, feature_types, *, executor=None):
    """Feature records for ``index build``: software tree or features JSON."""

    from pathlib import Path

    from .corpus.scanner import CorpusScanner
    from .exceptions import ValidationError
    from .features.pipeline import FeatureExtractionPipeline
    from .features.records import features_from_json

    path = Path(source)
    if path.is_dir():
        scan = CorpusScanner(path).scan()
        pipeline = FeatureExtractionPipeline(feature_types, executor=executor)
        return pipeline.extract_dataset(scan.dataset)
    if path.is_file():
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise ValidationError(
                f"{source} is not a readable features JSON file: {exc}") from exc
        return features_from_json(text)
    raise ValidationError(f"{source} is neither a software tree directory "
                          "nor a features JSON file")


def _cmd_index_build(args) -> int:
    from .exceptions import ValidationError
    from .features.extractors import (FEATURE_TYPES,
                                      resolve_family_feature_types)
    from .index import ShardedSimilarityIndex, SimilarityIndex

    feature_types = resolve_family_feature_types(
        tuple(args.types) if args.types else FEATURE_TYPES, args.family)
    features = _index_features(args.source, feature_types,
                               executor=args.executor)
    if features:
        available = set()
        for record in features:
            available.update(record.digests)
        missing = [ft for ft in feature_types if ft not in available]
        if missing:
            raise ValidationError(
                f"feature types {missing} appear in none of the "
                f"{len(features)} source records (available: "
                f"{sorted(available)})")
    if args.shards is not None:
        index = ShardedSimilarityIndex(feature_types, n_shards=args.shards,
                                       executor=args.executor)
    else:
        index = SimilarityIndex(feature_types)
    index.add_many(features)
    stats = index.stats()
    for feature_type, info in stats["feature_types"].items():
        populated = (info.get("members_with_digest", 0)
                     if info.get("family") == "vector"
                     else info.get("entries", 0))
        if index.n_members and populated == 0:
            print(f"warning: feature type {feature_type!r} produced no "
                  f"index entries (all digests empty or degenerate)",
                  file=sys.stderr)
    path = index.save(args.output)
    print(f"indexed {index.n_members} samples -> {path}")
    print(_format_stats(stats))
    return 0


def _cmd_index_query(args) -> int:
    from .features.extractors import FeatureExtractor
    from .index import load_index

    index = load_index(args.index_file, executor=args.executor)
    if args.digest:
        matches = index.top_k(args.target, args.k,
                              feature_type=args.feature_type,
                              min_score=args.min_score)
    else:
        types = ((args.feature_type,) if args.feature_type
                 else index.feature_types)
        sample = FeatureExtractor(types).extract_file(args.target)
        matches = index.top_k_digests(
            {ft: sample.digest(ft) for ft in types}, args.k,
            min_score=args.min_score)
    if not matches:
        print("no matches")
        return 0
    print(f"{'rank':>4} {'score':>5} {'class':<24} sample")
    for rank, match in enumerate(matches, start=1):
        print(f"{rank:>4} {match.score:>5} {match.class_name or '-':<24} "
              f"{match.sample_id}")
    return 0


def _cmd_index_stats(args) -> int:
    import json

    from .index import load_index

    index = load_index(args.index_file, executor=args.executor)
    stats = index.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        print(_format_stats(stats))
    return 0


def _cmd_index_compact(args) -> int:
    from pathlib import Path

    from .exceptions import ValidationError
    from .index import ShardedSimilarityIndex

    if Path(args.index_dir).is_file():
        raise ValidationError(
            f"{args.index_dir} is a single-file index; compact applies to "
            "sharded index directories (single-file indexes hold no "
            "tombstones)")
    index = ShardedSimilarityIndex.load(args.index_dir)
    dropped = index.compact()
    if dropped:
        index.save(args.index_dir)
    print(f"compacted {args.index_dir}: dropped {dropped} tombstoned "
          f"members, {index.n_members} remain")
    return 0


def _cmd_index_merge(args) -> int:
    from .index import ShardedSimilarityIndex, SimilarityIndex, load_index

    source = load_index(args.source, executor=args.executor)
    if args.shards is not None:
        merged = ShardedSimilarityIndex.from_index(source,
                                                   n_shards=args.shards,
                                                   executor=args.executor)
        path = merged.save(args.output)
        print(f"sharded {merged.n_members} members across "
              f"{merged.n_shards} shards -> {path}")
    else:
        if isinstance(source, ShardedSimilarityIndex):
            merged = source.merge_to_single()
        else:
            merged = source
        path = merged.save(args.output)
        print(f"merged {merged.n_members} members into a single-file "
              f"index -> {path}")
    return 0


def _format_stats(stats: dict) -> str:
    lines = [f"members: {stats['members']} "
             f"({stats['labelled_members']} labelled, "
             f"{stats['classes']} classes), "
             f"ngram length: {stats['ngram_length']}"]
    if "shards" in stats:
        lines[0] += (f", shards: {stats['n_shards']} "
                     f"({stats['routing']} routing), "
                     f"tombstones: {stats['tombstones']}")
    for feature_type, info in stats["feature_types"].items():
        if info.get("family") == "vector":
            lines.append(f"  {feature_type:<16} "
                         f"{info['members_with_digest']:>6} digests  "
                         f"{info['digest_bits']:>8} bits   packed matrix: "
                         f"{info['packed_matrix_bytes']} bytes")
            continue
        blocks = ",".join(str(b) for b in info["block_sizes"]) or "-"
        lines.append(f"  {feature_type:<16} {info['entries']:>6} entries  "
                     f"{info['postings']:>8} postings  block sizes: {blocks}")
    for shard in stats.get("shards", ()):
        lines.append(f"  shard {shard['shard']:>4}  {shard['members']:>6} "
                     f"members  {shard['tombstones']:>4} tombstones  "
                     f"{shard['postings']:>8} postings  "
                     f"~{shard['estimated_bytes']} bytes")
    return "\n".join(lines)


def _cmd_index(args) -> int:
    handler = {"build": _cmd_index_build,
               "query": _cmd_index_query,
               "stats": _cmd_index_stats,
               "compact": _cmd_index_compact,
               "merge": _cmd_index_merge}[args.index_command]
    return handler(args)


def _cmd_info(_args) -> int:
    print(describe_environment())
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "experiment": _cmd_experiment,
    "train": _cmd_train,
    "classify": _cmd_classify,
    "serve": _cmd_serve,
    "ingest": _cmd_ingest,
    "model": _cmd_model,
    "index": _cmd_index,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors surface as a one-line stderr message and exit
    status 2 instead of a traceback.
    """

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging("INFO")
    handler = _COMMANDS[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into something that exited early (e.g. head).
        # Detach stdout so the interpreter's shutdown flush cannot raise
        # again, and exit with the conventional SIGPIPE status.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
