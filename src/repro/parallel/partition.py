"""Work-partitioning helpers."""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from ..exceptions import ValidationError

__all__ = ["chunk_indices", "partition_evenly"]

T = TypeVar("T")


def chunk_indices(n_items: int, chunk_size: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into consecutive ``(start, stop)`` chunks."""

    if chunk_size < 1:
        raise ValidationError("chunk_size must be >= 1")
    if n_items < 0:
        raise ValidationError("n_items must be >= 0")
    return [(start, min(start + chunk_size, n_items))
            for start in range(0, n_items, chunk_size)]


def partition_evenly(items: Sequence[T], n_parts: int) -> list[list[T]]:
    """Split ``items`` into ``n_parts`` contiguous, near-equal parts.

    Parts differ in size by at most one item; empty parts are only
    produced when there are more parts than items.
    """

    if n_parts < 1:
        raise ValidationError("n_parts must be >= 1")
    boundaries = np.linspace(0, len(items), n_parts + 1).astype(int)
    return [list(items[boundaries[i]:boundaries[i + 1]]) for i in range(n_parts)]
