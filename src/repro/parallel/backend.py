"""Pluggable execution backends.

Every fan-out in the library — feature extraction over a corpus, shard
queries of the :class:`~repro.index.sharded.ShardedSimilarityIndex`,
batched classification — runs through one :class:`ExecutionBackend`:

* :class:`SerialBackend` — in-process, zero overhead (the default
  everywhere; library users only pay for parallelism they asked for);
* :class:`ThreadBackend` — a persistent :class:`ThreadPoolExecutor`;
  useful when the workload releases the GIL (NumPy inner loops, I/O);
* :class:`ProcessBackend` — a persistent :class:`ProcessPoolExecutor`
  for CPU-bound Python work; functions and items must be picklable.

Backends are selected by an *executor spec* string —
``"serial"``, ``"thread"``, ``"thread:4"``, ``"process"``,
``"process:8"`` — via :func:`resolve_backend`, which also accepts an
already-constructed backend (returned as-is) and ``None`` (serial).
A bare ``thread``/``process`` spec sizes the pool to the CPU count; an
explicit ``:N`` is honoured as requested.

Pools are created lazily on first :meth:`ExecutionBackend.map` and kept
alive until :meth:`ExecutionBackend.close` (backends are context
managers), so a long-lived owner — e.g. a sharded index answering many
queries — pays pool start-up once, not per call.

When a process pool cannot be created or dies (``OSError`` /
``RuntimeError``), :class:`ProcessBackend` falls back to serial
execution with a single user-visible :class:`RuntimeWarning` and stays
serial for its remaining lifetime; constructing it with ``strict=True``
raises :class:`~repro.exceptions.ParallelExecutionError` instead, for
callers that must not silently lose their parallelism.
"""

from __future__ import annotations

import os
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

from ..exceptions import ParallelExecutionError, ValidationError
from ..logging_utils import get_logger

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "BACKEND_NAMES",
]

_LOG = get_logger("parallel.backend")

T = TypeVar("T")
R = TypeVar("R")

#: Executor spec names understood by :func:`resolve_backend`.
BACKEND_NAMES = ("serial", "thread", "process")


class ExecutionBackend(ABC):
    """Ordered map over items, with a pluggable execution strategy."""

    #: Spec name of the backend family (``serial``/``thread``/``process``).
    name: str = "abstract"

    @property
    @abstractmethod
    def n_workers(self) -> int:
        """Concurrent workers this backend runs (1 for serial)."""

    @abstractmethod
    def map(self, func: Callable[[T], R], items: Iterable[T], *,
            chunksize: int | None = None) -> list[R]:
        """Apply ``func`` to every item, returning results in input order."""

    def close(self) -> None:
        """Release any pooled workers (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} workers={self.n_workers}>"


class SerialBackend(ExecutionBackend):
    """In-process execution; the default and the fallback."""

    name = "serial"

    @property
    def n_workers(self) -> int:
        return 1

    def map(self, func, items, *, chunksize=None):
        return [func(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """Persistent thread pool; best for GIL-releasing workloads."""

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        self._n_workers = _check_workers(max_workers)
        self._pool: ThreadPoolExecutor | None = None

    @property
    def n_workers(self) -> int:
        return self._n_workers

    def map(self, func, items, *, chunksize=None):
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._n_workers)
        return list(self._pool.map(func, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(ExecutionBackend):
    """Persistent process pool for CPU-bound, picklable work.

    Parameters
    ----------
    max_workers:
        Worker processes (default: the CPU count).
    strict:
        When the pool cannot be created or dies, raise
        :class:`~repro.exceptions.ParallelExecutionError` instead of
        falling back to serial execution with a warning.
    initializer / initargs:
        Forwarded to :class:`concurrent.futures.ProcessPoolExecutor`:
        ``initializer(*initargs)`` runs once in every worker process
        when it starts — the hook long-lived owners (the serving
        scoring pool) use to load shared state before the first task.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, *,
                 strict: bool = False,
                 initializer: Callable[..., None] | None = None,
                 initargs: tuple = ()) -> None:
        self._n_workers = _check_workers(max_workers)
        self.strict = bool(strict)
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._pool: ProcessPoolExecutor | None = None
        self._degraded = False

    @property
    def n_workers(self) -> int:
        return 1 if self._degraded else self._n_workers

    def map(self, func, items, *, chunksize=None):
        items = list(items)
        if self._degraded:
            return [func(item) for item in items]
        if chunksize is None:
            chunksize = max(1, len(items) // (self._n_workers * 4))
        try:
            if self._pool is None:
                kwargs = {}
                if self._initializer is not None:
                    kwargs["initializer"] = self._initializer
                    kwargs["initargs"] = self._initargs
                self._pool = ProcessPoolExecutor(
                    max_workers=self._n_workers, **kwargs)
            return list(self._pool.map(func, items, chunksize=chunksize))
        except (OSError, RuntimeError) as exc:
            self._abandon_pool()
            if self.strict:
                raise ParallelExecutionError(
                    f"process pool with {self._n_workers} workers is "
                    f"unavailable: {exc}") from exc
            # One visible warning per backend: after this the backend is
            # permanently degraded to serial, so the message cannot spam.
            self._degraded = True
            warnings.warn(
                f"process pool unavailable ({exc}); running "
                f"{len(items)} items serially instead of on "
                f"{self._n_workers} workers", RuntimeWarning, stacklevel=2)
            _LOG.warning("process pool unavailable (%s); degraded to serial",
                         exc)
            return [func(item) for item in items]

    def close(self) -> None:
        self._abandon_pool()

    def _abandon_pool(self) -> None:
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - shutdown is best-effort
                pass
            self._pool = None


def _check_workers(max_workers: int | None) -> int:
    if max_workers is None:
        return os.cpu_count() or 1
    workers = int(max_workers)
    if workers < 1:
        raise ValidationError(f"worker count must be >= 1, got {workers}")
    return workers


def resolve_backend(spec: "str | ExecutionBackend | None", *,
                    strict: bool = False) -> ExecutionBackend:
    """Resolve an executor spec to an :class:`ExecutionBackend`.

    ``None`` means serial; an existing backend instance is returned
    unchanged (its owner keeps responsibility for closing it); a string
    is parsed as ``name`` or ``name:N`` with ``name`` one of
    :data:`BACKEND_NAMES`.  ``strict`` is forwarded to
    :class:`ProcessBackend`.
    """

    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    if not isinstance(spec, str):
        raise ValidationError(
            f"executor must be a spec string, an ExecutionBackend or None, "
            f"got {type(spec).__name__}")
    name, _, count = spec.partition(":")
    name = name.strip().lower()
    workers: int | None = None
    if count:
        try:
            workers = int(count)
        except ValueError:
            raise ValidationError(
                f"invalid executor spec {spec!r}: worker count "
                f"{count!r} is not an integer") from None
    if name == "serial":
        if count:
            raise ValidationError(
                f"invalid executor spec {spec!r}: serial takes no "
                "worker count")
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(workers)
    if name == "process":
        return ProcessBackend(workers, strict=strict)
    raise ValidationError(
        f"unknown executor {name!r}; expected one of {list(BACKEND_NAMES)} "
        "(optionally with ':N' workers, e.g. 'process:4')")
