"""Ordered, fault-aware map — a thin wrapper over execution backends.

:func:`parallel_map` keeps the conservative semantics every internal
caller relies on:

* results are returned in input order regardless of completion order,
* ``n_jobs=1`` (the default everywhere) never spawns workers, so
  library users only pay for parallelism when they ask for it,
* workloads smaller than ``min_items_per_worker`` run serially — for
  small inputs worker start-up costs more than it saves (a point the
  scientific-Python optimisation guides make repeatedly: measure, and
  do not parallelise tiny work).

The execution strategy itself is pluggable
(:mod:`repro.parallel.backend`): ``executor=`` accepts a spec string
(``"serial"``, ``"thread:4"``, ``"process"``, ...) or a backend
instance and takes precedence over ``n_jobs``.  When a process pool
cannot be created the map falls back to serial execution with a single
user-visible :class:`RuntimeWarning`; ``strict=True`` raises
:class:`~repro.exceptions.ParallelExecutionError` instead.

Functions passed to a process backend must be picklable (module-level
functions), which every internal caller honours.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, TypeVar

from ..logging_utils import get_logger
from .backend import ExecutionBackend, ProcessBackend, resolve_backend

__all__ = ["effective_n_jobs", "parallel_map"]

_LOG = get_logger("parallel.pool")

T = TypeVar("T")
R = TypeVar("R")


def effective_n_jobs(n_jobs: int | None) -> int:
    """Resolve an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial execution; ``-1`` means one worker
    per available CPU; other negative values follow the joblib
    convention ``cpu_count + 1 + n_jobs``.
    """

    cpus = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0 or n_jobs == 1:
        return 1
    if n_jobs < 0:
        return max(1, cpus + 1 + n_jobs)
    return min(int(n_jobs), cpus)


def parallel_map(func: Callable[[T], R], items: Iterable[T], *,
                 n_jobs: int | None = 1, chunksize: int | None = None,
                 min_items_per_worker: int = 2, strict: bool = False,
                 executor: str | ExecutionBackend | None = None) -> list[R]:
    """Apply ``func`` to every item, preserving order.

    Parameters
    ----------
    func:
        A picklable callable (for process execution).
    items:
        The work items (materialised to a list).
    n_jobs:
        Worker processes; see :func:`effective_n_jobs`.  Ignored when
        ``executor`` is given.
    chunksize:
        Items sent to a worker per task; defaults to an even split.
    min_items_per_worker:
        Run serially unless every worker would receive at least this
        many items.
    strict:
        Raise :class:`~repro.exceptions.ParallelExecutionError` when the
        worker pool is unavailable instead of falling back to serial
        execution with a warning.
    executor:
        Backend spec string (``"serial"``, ``"thread[:N]"``,
        ``"process[:N]"``) or an :class:`ExecutionBackend` instance.
        A supplied instance is used as-is and not closed here.
    """

    items = list(items)
    if not items:
        return []
    if executor is not None:
        backend = resolve_backend(executor, strict=strict)
        owns_backend = not isinstance(executor, ExecutionBackend)
    else:
        workers = effective_n_jobs(n_jobs)
        if workers <= 1:
            return [func(item) for item in items]
        backend = ProcessBackend(workers, strict=strict)
        owns_backend = True
    try:
        if backend.n_workers <= 1 \
                or len(items) < backend.n_workers * min_items_per_worker:
            return [func(item) for item in items]
        _LOG.debug("parallel_map: %d items on %d %s workers", len(items),
                   backend.n_workers, backend.name)
        return backend.map(func, items, chunksize=chunksize)
    finally:
        if owns_backend:
            backend.close()
