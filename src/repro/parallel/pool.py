"""Ordered, fault-aware process-pool map.

The helpers here intentionally have conservative semantics:

* results are returned in input order regardless of completion order,
* ``n_jobs=1`` (the default everywhere) never spawns processes, so
  library users only pay for parallelism when they ask for it,
* workloads smaller than ``min_items_per_worker`` run serially — for
  small inputs process start-up costs more than it saves (a point the
  scientific-Python optimisation guides make repeatedly: measure, and
  do not parallelise tiny work).

Functions passed to :func:`parallel_map` must be picklable
(module-level functions), which every internal caller honours.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..logging_utils import get_logger

__all__ = ["effective_n_jobs", "parallel_map"]

_LOG = get_logger("parallel.pool")

T = TypeVar("T")
R = TypeVar("R")


def effective_n_jobs(n_jobs: int | None) -> int:
    """Resolve an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial execution; ``-1`` means one worker
    per available CPU; other negative values follow the joblib
    convention ``cpu_count + 1 + n_jobs``.
    """

    cpus = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0 or n_jobs == 1:
        return 1
    if n_jobs < 0:
        return max(1, cpus + 1 + n_jobs)
    return min(int(n_jobs), cpus)


def parallel_map(func: Callable[[T], R], items: Iterable[T], *,
                 n_jobs: int | None = 1, chunksize: int | None = None,
                 min_items_per_worker: int = 2) -> list[R]:
    """Apply ``func`` to every item, preserving order.

    Parameters
    ----------
    func:
        A picklable callable.
    items:
        The work items (materialised to a list).
    n_jobs:
        Worker processes; see :func:`effective_n_jobs`.
    chunksize:
        Items sent to a worker per task; defaults to an even split.
    min_items_per_worker:
        Run serially unless every worker would receive at least this
        many items.
    """

    items = list(items)
    if not items:
        return []
    workers = effective_n_jobs(n_jobs)
    if workers <= 1 or len(items) < workers * min_items_per_worker:
        return [func(item) for item in items]

    if chunksize is None:
        chunksize = max(1, len(items) // (workers * 4))
    _LOG.debug("parallel_map: %d items on %d workers (chunksize %d)",
               len(items), workers, chunksize)
    try:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            return list(executor.map(func, items, chunksize=chunksize))
    except (OSError, RuntimeError) as exc:  # pragma: no cover - depends on host
        _LOG.warning("process pool unavailable (%s); falling back to serial", exc)
        return [func(item) for item in items]
