"""Lightweight timing / throughput helpers used by benchmarks and the
workflow stage reporting."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "ThroughputReport"]


class Stopwatch:
    """Accumulating wall-clock stopwatch with named laps."""

    def __init__(self) -> None:
        self._laps: dict[str, float] = {}
        self._start: float | None = None
        self._current: str | None = None

    def start(self, name: str) -> "Stopwatch":
        """Start (or restart) timing the named lap."""

        self.stop()
        self._current = name
        self._start = time.perf_counter()
        return self

    def stop(self) -> None:
        """Stop the current lap, adding its duration to the total."""

        if self._current is not None and self._start is not None:
            elapsed = time.perf_counter() - self._start
            self._laps[self._current] = self._laps.get(self._current, 0.0) + elapsed
        self._current = None
        self._start = None

    @property
    def laps(self) -> dict[str, float]:
        """Accumulated seconds per lap name."""

        return dict(self._laps)

    def total(self) -> float:
        return sum(self._laps.values())

    def report(self) -> str:
        lines = [f"  {name:<28s} {seconds:8.3f} s"
                 for name, seconds in self._laps.items()]
        lines.append(f"  {'total':<28s} {self.total():8.3f} s")
        return "\n".join(lines)


@dataclass
class ThroughputReport:
    """Items-per-second summary for a processing stage."""

    stage: str
    n_items: int
    seconds: float
    n_workers: int = 1

    @property
    def items_per_second(self) -> float:
        return self.n_items / self.seconds if self.seconds > 0 else float("inf")

    def __str__(self) -> str:
        return (f"{self.stage}: {self.n_items} items in {self.seconds:.2f} s "
                f"({self.items_per_second:.1f}/s, {self.n_workers} worker(s))")
