"""Process-parallel execution helpers.

HPC-style throughput matters in two places of the pipeline: fuzzy-hash
feature extraction over thousands of executables and fitting the many
trees / grid-search candidates of the Random Forest.  Both are
embarrassingly parallel, so a small, dependency-free process pool
wrapper is enough:

* :func:`parallel_map` — ordered map over an iterable, optionally in
  worker processes (``n_jobs``), falling back to serial execution for
  ``n_jobs=1`` or tiny workloads,
* :func:`effective_n_jobs` — resolve ``n_jobs``/-1 semantics,
* :mod:`repro.parallel.partition` — chunking helpers,
* :mod:`repro.parallel.timing` — lightweight throughput timers used by
  the benchmarks.
"""

from .pool import effective_n_jobs, parallel_map
from .partition import chunk_indices, partition_evenly
from .timing import Stopwatch, ThroughputReport

__all__ = [
    "parallel_map",
    "effective_n_jobs",
    "chunk_indices",
    "partition_evenly",
    "Stopwatch",
    "ThroughputReport",
]
