"""Parallel execution helpers.

HPC-style throughput matters in several places of the pipeline:
fuzzy-hash feature extraction over thousands of executables, fitting
the many trees / grid-search candidates of the Random Forest, and
fanning similarity queries out across the shards of a
:class:`~repro.index.sharded.ShardedSimilarityIndex`.  All are
embarrassingly parallel, so a small, dependency-free execution layer is
enough:

* :mod:`repro.parallel.backend` — the pluggable
  :class:`~repro.parallel.backend.ExecutionBackend` abstraction
  (``serial`` / ``thread`` / ``process``, selected by an executor spec
  such as ``"process:4"`` via
  :func:`~repro.parallel.backend.resolve_backend`),
* :func:`parallel_map` — ordered map over an iterable, a thin wrapper
  selecting a backend from ``n_jobs`` or an ``executor=`` spec and
  falling back to serial execution for tiny workloads,
* :func:`effective_n_jobs` — resolve ``n_jobs``/-1 semantics,
* :mod:`repro.parallel.partition` — chunking helpers,
* :mod:`repro.parallel.timing` — lightweight throughput timers used by
  the benchmarks.
"""

from .backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from .partition import chunk_indices, partition_evenly
from .pool import effective_n_jobs, parallel_map
from .timing import Stopwatch, ThroughputReport

__all__ = [
    "parallel_map",
    "effective_n_jobs",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "BACKEND_NAMES",
    "chunk_indices",
    "partition_evenly",
    "Stopwatch",
    "ThroughputReport",
]
