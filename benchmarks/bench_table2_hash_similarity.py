"""Table 2 — SSDeep symbol-hash comparison of two OpenMalaria versions.

The paper's Table 2 shows the fuzzy hashes of the symbol tables of two
OpenMalaria versions (46.0-iomkl-2019.01 and 43.1-foss-2021a) and notes
that the two digests share long common substrings, i.e. a high SSDeep
similarity.  This benchmark regenerates two OpenMalaria versions,
extracts their symbol digests and scores them; the timed section is the
digest comparison itself.
"""

from __future__ import annotations

import pytest

from repro.core.reporting import hash_similarity_example
from repro.features.extractors import FeatureExtractor
from repro.hashing.compare import compare_digests


@pytest.mark.benchmark(group="table2")
def test_table2_openmalaria_symbol_hash_similarity(benchmark, full_catalog_builder,
                                                   emit_table):
    samples = full_catalog_builder.build_samples(class_names=["OpenMalaria"])
    assert len(samples) >= 2
    by_version: dict[str, object] = {}
    for sample in samples:
        by_version.setdefault(sample.version, sample)
    versions = sorted(by_version)[:2]
    extractor = FeatureExtractor()
    features = [extractor.extract(by_version[v].data, sample_id=v,
                                  class_name="OpenMalaria", version=v)
                for v in versions]
    digest_a = features[0].digest("ssdeep-symbols")
    digest_b = features[1].digest("ssdeep-symbols")

    score = benchmark(lambda: compare_digests(digest_a, digest_b))

    # Different versions of the same application share most global
    # symbols, so the similarity must be clearly positive (the paper's
    # Table 2 point) — and well below a different application, which
    # scores 0 against OpenMalaria.
    assert score > 40
    other = full_catalog_builder.build_samples(class_names=["Velvet"])[0]
    other_digest = extractor.extract(other.data, sample_id="velvet").digest("ssdeep-symbols")
    cross_score = compare_digests(digest_a, other_digest)
    assert cross_score < score

    table = hash_similarity_example(
        "OpenMalaria", [(v, f.digest("ssdeep-symbols")) for v, f in zip(versions, features)])
    table += (f"\n\ncross-application check: similarity(OpenMalaria vs Velvet) "
              f"= {cross_score}")
    table += "\npaper reference: two OpenMalaria versions share long common digest substrings"
    emit_table("table2_hash_similarity", table)
