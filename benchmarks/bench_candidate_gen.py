"""Benchmark: array-backed candidate generation vs the legacy dict walk.

The similarity index's n-gram gate — walking the inverted postings to
find which (query signature, member signature) pairs are even worth an
edit distance — used to be pure Python: ``dict[(block_size, gram)] ->
list[int]`` postings, nested loops, a per-query ``set`` and
``(str, str, int)`` de-duplication keys.  At corpus scale that walk,
not the vectorised DP, dominated ``top_k`` latency.  The index now
stores postings as sorted CSR arrays over FNV-64 hashed keys
(:mod:`repro.index.postings`) and generates candidates with one
``np.searchsorted`` + slab gather + ``np.unique`` sweep.

This benchmark re-implements the legacy walk as an in-file reference
(:class:`LegacyCandidateIndex` — a faithful port of the pre-columnar
``SimilarityIndex.collect_candidates``) and measures, on a synthetic
mutated-family corpus:

* **candidate generation** — legacy walk vs vectorised walk (the
  acceptance floor is 3x);
* **end-to-end ``top_k``** — legacy candidate walk + shared DP scoring
  vs the new index (floor 1.5x);
* **build memory** — tracemalloc resident and peak bytes of building
  the legacy postings vs the columnar index, measured on a same-size
  distinct-digest corpus (the general case, where per-key tuples and
  un-interned signatures cost the legacy layout the most);
* **bit-identical results** — ``top_k`` rankings, dense score matrices
  and the raw candidate-pair sets must agree exactly, on the single
  index and on a 4-shard :class:`~repro.index.ShardedSimilarityIndex`.

Run directly (``python benchmarks/bench_candidate_gen.py``, add
``--quick`` for the small CI configuration).  Exit status is non-zero
when any result diverges or a speedup floor is missed, so the script
doubles as a regression tripwire; a JSON trajectory is written to
``benchmarks/output/BENCH_candidate_gen.json`` for CI archiving.
``tests/test_candidate_bench_smoke.py`` runs the identity checks (and a
conservative speedup floor on multi-core machines) in tier 1.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
import tracemalloc
from collections import defaultdict
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.hashing.ssdeep import fuzzy_hash
from repro.index import ShardedSimilarityIndex, SimilarityIndex
from repro.index.core import IndexMatch, expand_digest, \
    score_signature_pairs, signature_grams

OUTPUT_DIR = Path(__file__).parent / "output"

FEATURE_TYPE = "ssdeep-file"


class LegacyCandidateIndex:
    """The pre-columnar candidate layer, kept as a timing reference.

    A faithful port of the first-generation ``SimilarityIndex``
    internals: one ``_Entry``-style tuple per comparable signature,
    ``dict[(block_size, gram)] -> list[int]`` postings, per-query
    ``set`` de-duplication and ``(str, str, int)`` pair keys.  Scoring
    reuses the shared :func:`repro.index.core.score_signature_pairs`,
    so any timing difference is purely the candidate walk.
    """

    def __init__(self, ngram_length: int = 7) -> None:
        self._ngram_length = ngram_length
        self._entries: list[tuple[int, int, str]] = []   # (member, block, sig)
        self._postings: dict[tuple[int, str], list[int]] = defaultdict(list)
        self._member_grams: dict[str, tuple[str, ...]] = {}
        self._sample_ids: list[str] = []
        self._class_names: list[str] = []

    def add(self, sample_id: str, digest: str, class_name: str = "") -> None:
        member = len(self._sample_ids)
        self._sample_ids.append(sample_id)
        self._class_names.append(class_name)
        for block_size, signature in expand_digest(digest):
            entry_id = len(self._entries)
            self._entries.append((member, block_size, signature))
            grams = self._member_grams.get(signature)
            if grams is None:
                grams = tuple(signature_grams(signature, self._ngram_length))
                self._member_grams[signature] = grams
            for gram in grams:
                self._postings[(block_size, gram)].append(entry_id)

    @property
    def n_members(self) -> int:
        return len(self._sample_ids)

    def collect_candidates(self, digests: list[str]):
        """The legacy walk: returns ``(left, right, blocks, scatter)``."""

        left: list[str] = []
        right: list[str] = []
        block_sizes: list[int] = []
        pair_key_to_slot: dict[tuple[str, str, int], int] = {}
        pair_queries: list[int] = []
        pair_members: list[int] = []
        pair_slots: list[int] = []
        entries = self._entries
        postings = self._postings
        query_signatures = [dict(expand_digest(d)) for d in digests]
        for query_index, sig_by_block in enumerate(query_signatures):
            seen: set[int] = set()
            for block_size, signature in sig_by_block.items():
                for gram in signature_grams(signature, self._ngram_length):
                    for entry_id in postings.get((block_size, gram), ()):
                        if entry_id in seen:
                            continue
                        seen.add(entry_id)
                        member, _block, member_sig = entries[entry_id]
                        key = (signature, member_sig, block_size)
                        slot = pair_key_to_slot.get(key)
                        if slot is None:
                            slot = len(left)
                            pair_key_to_slot[key] = slot
                            left.append(signature)
                            right.append(member_sig)
                            block_sizes.append(block_size)
                        pair_queries.append(query_index)
                        pair_members.append(member)
                        pair_slots.append(slot)
        return left, right, block_sizes, (pair_queries, pair_members,
                                          pair_slots)

    def score_matrix(self, digests: list[str]) -> np.ndarray:
        left, right, blocks, scatter = self.collect_candidates(digests)
        matrix = np.zeros((len(digests), self.n_members), dtype=np.float64)
        if left:
            scores = score_signature_pairs(left, right, blocks)
            pair_queries, pair_members, pair_slots = scatter
            np.maximum.at(matrix,
                          (np.asarray(pair_queries, dtype=np.int64),
                           np.asarray(pair_members, dtype=np.int64)),
                          scores[np.asarray(pair_slots, dtype=np.int64)])
        return matrix

    def top_k(self, digest: str, k: int = 10, min_score: int = 0
              ) -> list[IndexMatch]:
        best = self.score_matrix([digest])[0]
        order = np.argsort(-best, kind="stable")
        results: list[IndexMatch] = []
        for member in order:
            score = int(best[member])
            if score < min_score:
                break
            results.append(IndexMatch(member_index=int(member),
                                      sample_id=self._sample_ids[member],
                                      class_name=self._class_names[member],
                                      score=score))
            if len(results) == k:
                break
        return results


@dataclass(frozen=True)
class BenchResult:
    n_corpus: int
    n_queries: int
    n_candidate_pairs: int
    legacy_collect_seconds: float
    new_collect_seconds: float
    legacy_topk_seconds: float
    new_topk_seconds: float
    legacy_resident_bytes: int
    legacy_peak_bytes: int
    new_resident_bytes: int
    new_peak_bytes: int
    results_match: bool

    @property
    def collect_speedup(self) -> float:
        if self.new_collect_seconds <= 0:
            return float("inf")
        return self.legacy_collect_seconds / self.new_collect_seconds

    @property
    def topk_speedup(self) -> float:
        if self.new_topk_seconds <= 0:
            return float("inf")
        return self.legacy_topk_seconds / self.new_topk_seconds

    @property
    def peak_memory_ratio(self) -> float:
        if self.new_peak_bytes <= 0:
            return float("inf")
        return self.legacy_peak_bytes / self.new_peak_bytes

    @property
    def resident_memory_ratio(self) -> float:
        if self.new_resident_bytes <= 0:
            return float("inf")
        return self.legacy_resident_bytes / self.new_resident_bytes

    def table(self) -> str:
        lines = [
            f"corpus: {self.n_corpus} digests, {self.n_queries} queries, "
            f"{self.n_candidate_pairs} unique candidate pairs per batch",
            f"{'stage':<26} {'legacy (s)':>11} {'arrays (s)':>11} "
            f"{'speedup':>8}",
            f"{'candidate generation':<26} {self.legacy_collect_seconds:>11.3f} "
            f"{self.new_collect_seconds:>11.3f} {self.collect_speedup:>7.1f}x",
            f"{'end-to-end top_k':<26} {self.legacy_topk_seconds:>11.3f} "
            f"{self.new_topk_seconds:>11.3f} {self.topk_speedup:>7.1f}x",
            f"build memory (distinct-digest corpus, same size): "
            f"resident legacy {self.legacy_resident_bytes:,} B vs arrays "
            f"{self.new_resident_bytes:,} B "
            f"({self.resident_memory_ratio:.1f}x smaller); peak legacy "
            f"{self.legacy_peak_bytes:,} B vs arrays "
            f"{self.new_peak_bytes:,} B "
            f"({self.peak_memory_ratio:.1f}x smaller)",
            f"all results bit-identical (single + 4-shard): "
            f"{self.results_match}",
        ]
        return "\n".join(lines)


def make_corpus(n: int, seed: int = 20260729, n_families: int = 2,
                versions_per_family: int = 8
                ) -> list[tuple[str, dict[str, str], str]]:
    """Synthetic corpus: few families, few release versions, many installs.

    Mirrors the workload the postings rebuild targets (a production
    fleet runs a bounded set of application versions, each installed on
    many nodes): every member carries one of ``versions_per_family``
    lightly-mutated digests, so posting buckets grow with corpus size
    while the distinct-signature count — and therefore the DP work —
    stays fixed.  That is precisely the regime where the candidate walk,
    not the edit distance, dominates legacy ``top_k`` latency.
    """

    rnd = random.Random(seed)
    bases = [rnd.randbytes(7000 + rnd.randrange(2000))
             for _ in range(n_families)]
    version_pools = []
    for family in range(n_families):
        pool = []
        for _ in range(versions_per_family):
            blob = bytearray(bases[family])
            for _ in range(rnd.randrange(1, 4)):
                blob[rnd.randrange(len(blob))] = rnd.randrange(256)
            pool.append(fuzzy_hash(bytes(blob)))
        version_pools.append(pool)
    members = []
    for i in range(n):
        family = i % n_families
        members.append((f"sample-{i:05d}",
                        {FEATURE_TYPE: rnd.choice(version_pools[family])},
                        f"family-{family:02d}"))
    return members


def _candidate_pair_set(left, right, blocks, scatter) -> frozenset:
    pair_queries, pair_members, pair_slots = scatter
    return frozenset(
        (int(q), int(m), left[int(s)], right[int(s)], int(blocks[int(s)]))
        for q, m, s in zip(pair_queries, pair_members, pair_slots))


def make_diverse_corpus(n: int, seed: int = 7, n_families: int = 6
                        ) -> list[tuple[str, dict[str, str], str]]:
    """Every member gets a distinct digest (the general-case corpus).

    This is where the legacy layout's memory weakness lives: one
    ``(block_size, gram)`` tuple dict key per distinct gram and one
    entry record plus un-interned signature string per member.  The
    columnar layout holds the same content as flat arrays plus an
    interned pool, so this corpus is used for the memory comparison.
    """

    rnd = random.Random(seed)
    bases = [rnd.randbytes(4000 + rnd.randrange(2000))
             for _ in range(n_families)]
    members = []
    for i in range(n):
        blob = bytearray(bases[i % n_families])
        for _ in range(rnd.randrange(2, 25)):
            blob[rnd.randrange(len(blob))] = rnd.randrange(256)
        members.append((f"sample-{i:05d}",
                        {FEATURE_TYPE: fuzzy_hash(bytes(blob))},
                        f"family-{i % n_families:02d}"))
    return members


def _measure_build_memory(corpus) -> tuple[int, int, int, int]:
    """Tracemalloc ``(legacy resident, legacy peak, new resident, new
    peak)`` of building the legacy vs columnar structures."""

    tracemalloc.start()
    legacy = LegacyCandidateIndex()
    for sample_id, digests, class_name in corpus:
        legacy.add(sample_id, digests[FEATURE_TYPE], class_name)
    legacy_resident, legacy_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del legacy

    tracemalloc.start()
    index = SimilarityIndex([FEATURE_TYPE])
    index.add_many(corpus)
    index.seal()
    new_resident, new_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del index
    return legacy_resident, legacy_peak, new_resident, new_peak


def run(n_corpus: int, n_queries: int, *, k: int = 10) -> BenchResult:
    corpus = make_corpus(n_corpus)
    rnd = random.Random(97)
    queries = [rnd.choice(corpus)[1][FEATURE_TYPE] for _ in range(n_queries)]

    legacy = LegacyCandidateIndex()
    for sample_id, digests, class_name in corpus:
        legacy.add(sample_id, digests[FEATURE_TYPE], class_name)
    index = SimilarityIndex([FEATURE_TYPE])
    index.add_many(corpus)
    index.seal()
    sharded = ShardedSimilarityIndex([FEATURE_TYPE], n_shards=4,
                                     executor="serial")
    sharded.add_many(corpus)
    sharded.seal()

    # Identity first: rankings, matrices and raw candidate sets.
    results_match = True
    for query in queries:
        if index.top_k(query, k, min_score=0) \
                != legacy.top_k(query, k, min_score=0) \
                or sharded.top_k(query, k, min_score=0) \
                != legacy.top_k(query, k, min_score=0):
            results_match = False
    legacy_matrix = legacy.score_matrix(queries)
    new_matrix = index.score_matrix(FEATURE_TYPE, queries)
    sharded_matrix = sharded.score_matrix(FEATURE_TYPE, queries)
    if not (np.array_equal(legacy_matrix, new_matrix)
            and np.array_equal(legacy_matrix, sharded_matrix)):
        results_match = False
    legacy_pairs = _candidate_pair_set(*legacy.collect_candidates(queries))
    batch = index.collect_candidates({FEATURE_TYPE: queries})
    new_pairs = _candidate_pair_set(batch.left, batch.right,
                                    batch.block_sizes,
                                    batch.scatter[FEATURE_TYPE])
    if legacy_pairs != new_pairs:
        results_match = False
    n_candidate_pairs = len(batch.left)

    # Timing: per-query loops, the serving pattern (warmed caches);
    # best of three repeats so one scheduler hiccup cannot flake the
    # tripwire floors.
    def best_of(fn, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    legacy_collect_seconds = best_of(
        lambda: [legacy.collect_candidates([q]) for q in queries])
    new_collect_seconds = best_of(
        lambda: [index.collect_candidates({FEATURE_TYPE: [q]})
                 for q in queries])
    legacy_topk_seconds = best_of(
        lambda: [legacy.top_k(q, k, min_score=0) for q in queries])
    new_topk_seconds = best_of(
        lambda: [index.top_k(q, k, min_score=0) for q in queries])

    memory = _measure_build_memory(make_diverse_corpus(n_corpus))

    return BenchResult(
        n_corpus=n_corpus,
        n_queries=n_queries,
        n_candidate_pairs=n_candidate_pairs,
        legacy_collect_seconds=legacy_collect_seconds,
        new_collect_seconds=new_collect_seconds,
        legacy_topk_seconds=legacy_topk_seconds,
        new_topk_seconds=new_topk_seconds,
        legacy_resident_bytes=memory[0],
        legacy_peak_bytes=memory[1],
        new_resident_bytes=memory[2],
        new_peak_bytes=memory[3],
        results_match=results_match,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--corpus", type=int, default=None,
                        help="corpus size (default 8000, quick 1500)")
    parser.add_argument("--queries", type=int, default=None,
                        help="query count (default 30, quick 8)")
    parser.add_argument("--min-candidate-speedup", type=float, default=3.0,
                        help="fail (exit 1) when candidate generation is "
                             "not at least this much faster (0 disables)")
    parser.add_argument("--min-topk-speedup", type=float, default=1.5,
                        help="fail (exit 1) when end-to-end top_k is not "
                             "at least this much faster (0 disables)")
    args = parser.parse_args(argv)

    n_corpus = args.corpus if args.corpus else (1500 if args.quick else 8000)
    n_queries = args.queries if args.queries else (8 if args.quick else 30)
    result = run(n_corpus, n_queries)

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "bench_candidate_gen.txt"
    out.write_text(result.table() + "\n", encoding="utf-8")
    trajectory = dict(asdict(result),
                      collect_speedup=result.collect_speedup,
                      topk_speedup=result.topk_speedup,
                      peak_memory_ratio=result.peak_memory_ratio,
                      resident_memory_ratio=result.resident_memory_ratio)
    (OUTPUT_DIR / "BENCH_candidate_gen.json").write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(result.table())
    print(f"(written to {out} and BENCH_candidate_gen.json)")

    if not result.results_match:
        print("FAIL: array-backed results diverge from the legacy reference",
              file=sys.stderr)
        return 1
    if args.min_candidate_speedup \
            and result.collect_speedup < args.min_candidate_speedup:
        print(f"FAIL: candidate-generation speedup "
              f"{result.collect_speedup:.1f}x is below the "
              f"{args.min_candidate_speedup:.1f}x floor", file=sys.stderr)
        return 1
    if args.min_topk_speedup and result.topk_speedup < args.min_topk_speedup:
        print(f"FAIL: end-to-end top_k speedup {result.topk_speedup:.1f}x "
              f"is below the {args.min_topk_speedup:.1f}x floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
