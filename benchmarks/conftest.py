"""Shared fixtures for the benchmark/reproduction harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md for the mapping).  The expensive pipeline stages — corpus
generation, feature extraction, the similarity matrices and the grid
search — run once per session and are shared by all benchmarks.

Scale is controlled by the ``REPRO_SCALE`` environment variable
(``small`` / ``medium`` / ``full``); the default ``medium`` runs all 92
classes with per-class sample counts capped so the whole suite finishes
in a few minutes on a small machine.  ``full`` reproduces the paper's
5300-sample corpus (expect a long run).

Each benchmark writes its table to ``benchmarks/output/<name>.txt`` and
prints it (visible with ``pytest -s``); EXPERIMENTS.md summarises the
paper-vs-measured comparison.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.config import default_config
from repro.core.evaluation import ExperimentRunner
from repro.core.gridsearch import FuzzyHashGridSearch, default_param_grid
from repro.core.splits import two_phase_split
from repro.corpus.builder import CorpusBuilder
from repro.features.pipeline import FeatureExtractionPipeline
from repro.features.similarity import SimilarityFeatureBuilder
from repro.logging_utils import configure_logging

OUTPUT_DIR = Path(__file__).parent / "output"

#: Seed used by every benchmark so results are reproducible run to run.
BENCH_SEED = 20241127


def pytest_configure(config):
    configure_logging("WARNING")
    OUTPUT_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def bench_config():
    """Experiment configuration at the selected benchmark scale."""

    scale = os.environ.get("REPRO_SCALE", "medium")
    n_jobs = int(os.environ.get("REPRO_JOBS", str(min(2, os.cpu_count() or 1))))
    return default_config(scale, seed=BENCH_SEED, n_jobs=n_jobs)


@pytest.fixture(scope="session")
def corpus_builder(bench_config):
    return CorpusBuilder(config=bench_config)


@pytest.fixture(scope="session")
def full_catalog_builder(bench_config):
    """Builder over the full 92-class catalogue regardless of scale.

    Used by benches that need one specific application class (Velvet,
    OpenMalaria) which the ``small`` preset's class subset may not
    include; generating a single class is cheap at any scale.
    """

    from repro.corpus.catalog import default_catalog

    config = bench_config.with_scale("medium") if bench_config.scale.max_classes \
        else bench_config
    return CorpusBuilder(catalog=default_catalog(), config=config)


@pytest.fixture(scope="session")
def corpus_samples(corpus_builder):
    """In-memory synthetic corpus at benchmark scale."""

    return corpus_builder.build_samples()


@pytest.fixture(scope="session")
def corpus_labels(corpus_samples):
    return [s.class_name for s in corpus_samples]


@pytest.fixture(scope="session")
def corpus_features(bench_config, corpus_samples):
    pipeline = FeatureExtractionPipeline(bench_config.feature_types,
                                         n_jobs=bench_config.n_jobs)
    return pipeline.extract_generated(corpus_samples)


@pytest.fixture(scope="session")
def paper_split(bench_config, corpus_labels):
    """The paper's two-phase split with Table 3's classes held out."""

    return two_phase_split(
        corpus_labels,
        unknown_class_fraction=bench_config.unknown_class_fraction,
        test_sample_fraction=bench_config.test_sample_fraction,
        unknown_label=bench_config.unknown_label,
        mode="paper",
        random_state=bench_config.seed,
    )


@pytest.fixture(scope="session")
def similarity_matrices(bench_config, corpus_features, paper_split):
    """(builder, train matrix, test matrix) shared by the model benches."""

    train_features = [corpus_features[i] for i in paper_split.train_indices]
    test_features = [corpus_features[i] for i in paper_split.test_indices]
    builder = SimilarityFeatureBuilder(bench_config.feature_types,
                                       anchor_strategy=bench_config.anchor_strategy)
    train_matrix = builder.fit_transform(train_features, exclude_self=True)
    test_matrix = builder.transform(test_features)
    return builder, train_matrix, test_matrix


@pytest.fixture(scope="session")
def grid_outcome(bench_config, similarity_matrices, paper_split):
    """Joint Random-Forest / threshold grid search on the training set."""

    _, train_matrix, _ = similarity_matrices
    search = FuzzyHashGridSearch(
        param_grid=default_param_grid(budget=bench_config.scale.grid_search_budget,
                                      n_estimators=bench_config.scale.n_estimators),
        unknown_label=bench_config.unknown_label,
        random_state=bench_config.seed,
        n_jobs=bench_config.n_jobs,
    )
    return search.search(train_matrix.X, np.asarray(paper_split.train_labels,
                                                    dtype=object))


@pytest.fixture(scope="session")
def fitted_model(bench_config, similarity_matrices, paper_split, grid_outcome):
    """The final thresholded Random Forest fitted with the tuned parameters."""

    from repro.core.classifier import ThresholdRandomForest

    _, train_matrix, _ = similarity_matrices
    model = ThresholdRandomForest(
        confidence_threshold=grid_outcome.best_threshold,
        unknown_label=bench_config.unknown_label,
        random_state=bench_config.seed,
        class_weight="balanced",
        n_jobs=bench_config.n_jobs,
        **grid_outcome.best_params,
    )
    model.fit(train_matrix.X, np.asarray(paper_split.train_labels, dtype=object))
    return model


@pytest.fixture(scope="session")
def test_predictions(fitted_model, similarity_matrices):
    _, _, test_matrix = similarity_matrices
    return fitted_model.predict(test_matrix.X)


def emit(name: str, content: str) -> None:
    """Write a table to the output directory and echo it to stdout."""

    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    print(f"\n=== {name} (written to {path}) ===")
    print(content)


@pytest.fixture()
def emit_table():
    return emit
