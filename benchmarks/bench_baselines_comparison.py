"""Baselines — fuzzy hashing vs the alternatives the paper discusses.

* cryptographic-hash exact matching (the paper's main foil: "can only
  be used to find exact matches"),
* executable-name matching (the unreliable identifier from the
  introduction),
* KNN and a linear SVM on the same similarity features (the models the
  paper names as future-work comparators),
* the Random Forest of the Fuzzy Hash Classifier itself.

All run under the identical two-phase split and similarity features.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import run_baseline_comparison
from repro.core.reporting import render_table


@pytest.mark.benchmark(group="baselines")
def test_baseline_comparison(benchmark, bench_config, corpus_features, paper_split,
                             similarity_matrices, grid_outcome, emit_table):
    _, train_matrix, test_matrix = similarity_matrices
    train_features = [corpus_features[i] for i in paper_split.train_indices]
    test_features = [corpus_features[i] for i in paper_split.test_indices]

    outcomes = benchmark.pedantic(
        lambda: run_baseline_comparison(
            train_features, paper_split.train_labels,
            test_features, paper_split.expected_test_labels,
            train_matrix.X, test_matrix.X,
            confidence_threshold=grid_outcome.best_threshold,
            n_estimators=max(40, bench_config.scale.n_estimators // 2),
            random_state=bench_config.seed),
        rounds=1, iterations=1)

    by_name = {o.name: o for o in outcomes}
    forest = by_name["fuzzy-hash random forest"]
    crypto = by_name["crypto-hash exact match"]

    # The paper's core comparison: fuzzy hashing bridges version changes,
    # exact hashing does not.
    assert forest.macro_f1 > crypto.macro_f1 + 0.2
    assert forest.micro_f1 > crypto.micro_f1
    # The similarity-feature models are all far above the exact-match
    # baseline; the forest is competitive with the best of them (the paper
    # does not claim the forest strictly dominates KNN/SVM — they are
    # future-work comparators).
    best_macro = max(o.macro_f1 for o in outcomes)
    assert forest.macro_f1 >= best_macro - 0.2

    rows = [(o.name, f"{o.macro_f1:.3f}", f"{o.micro_f1:.3f}",
             f"{o.weighted_f1:.3f}",
             "n/a" if o.unknown_recall != o.unknown_recall else f"{o.unknown_recall:.3f}")
            for o in sorted(outcomes, key=lambda o: -o.macro_f1)]
    table = render_table(
        ["baseline", "macro f1", "micro f1", "weighted f1", "unknown recall"], rows,
        title="Baseline comparison under the paper's two-phase split")
    table += ("\npaper reference: cryptographic hashes 'fail to match application "
              "samples from the same application class when the samples differ'; "
              "SVM and KNN are listed as future-work comparators")
    emit_table("baselines_comparison", table)
