"""Ablation — the stripped-binary limitation.

The paper's limitations section notes that the approach "does not work
with executables that have been stripped of the symbol table".  This
benchmark strips a sample of test binaries, re-extracts their features
and compares classification quality against the unstripped versions of
the same binaries under the same trained model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.binfmt.strip import strip_symbols
from repro.core.reporting import render_table
from repro.features.extractors import FeatureExtractor
from repro.ml.metrics import accuracy_score


@pytest.mark.benchmark(group="ablation")
def test_ablation_stripped_binaries(benchmark, bench_config, corpus_samples,
                                    paper_split, similarity_matrices, fitted_model,
                                    emit_table):
    builder, _, _ = similarity_matrices
    known = set(paper_split.known_classes)

    # A deterministic sample of known-class test binaries.
    test_samples = [corpus_samples[i] for i in paper_split.test_indices
                    if corpus_samples[i].class_name in known]
    rng = np.random.default_rng(bench_config.seed)
    subset = [test_samples[i] for i in
              rng.choice(len(test_samples), size=min(150, len(test_samples)),
                         replace=False)]

    extractor = FeatureExtractor(bench_config.feature_types)

    def classify(strip: bool):
        features = []
        for sample in subset:
            data = strip_symbols(sample.data) if strip else sample.data
            features.append(extractor.extract(
                data, sample_id=sample.relative_path, class_name=sample.class_name,
                version=sample.version, executable=sample.executable))
        matrix = builder.transform(features)
        return fitted_model.predict(matrix.X)

    stripped_predictions = benchmark.pedantic(lambda: classify(strip=True),
                                              rounds=1, iterations=1)
    intact_predictions = classify(strip=False)

    labels = np.asarray([s.class_name for s in subset], dtype=object)
    intact_accuracy = accuracy_score(labels, intact_predictions)
    stripped_accuracy = accuracy_score(labels, stripped_predictions)
    stripped_unknown_rate = float(np.mean(stripped_predictions == -1))

    # Stripping removes the dominant feature, so accuracy must drop
    # noticeably and many binaries fall back to "unknown".
    assert intact_accuracy > stripped_accuracy
    assert intact_accuracy - stripped_accuracy > 0.1

    table = render_table(
        ["variant", "accuracy", "labelled unknown"],
        [("intact binaries", f"{intact_accuracy:.3f}",
          f"{float(np.mean(intact_predictions == -1)):.3f}"),
         ("stripped binaries", f"{stripped_accuracy:.3f}",
          f"{stripped_unknown_rate:.3f}")],
        title=f"Stripped-binary limitation ({len(subset)} known-class test binaries)")
    table += ("\npaper reference: 'our approach also does not work with executables "
              "that have been stripped of the symbol table'")
    emit_table("ablation_stripped_binaries", table)
