"""Figure 2 — number of samples per application class (log scale).

The paper's Figure 2 shows the heavily imbalanced per-class sample
counts across the 92 classes.  This benchmark reports the same
distribution for the synthetic corpus (at the selected scale) together
with summary statistics of the imbalance, and times the corpus
planning step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reporting import class_size_table, render_table


@pytest.mark.benchmark(group="figure2")
def test_figure2_class_size_distribution(benchmark, corpus_builder, corpus_samples,
                                         emit_table, bench_config):
    def plan_all_classes():
        return {spec.name: versions and len(versions) * n_exec
                for spec in corpus_builder.catalog
                for versions, n_exec in [corpus_builder.plan_class(spec)]}

    planned = benchmark(plan_all_classes)

    counts: dict[str, int] = {}
    for sample in corpus_samples:
        counts[sample.class_name] = counts.get(sample.class_name, 0) + 1
    sizes = np.array(sorted(counts.values(), reverse=True))

    assert len(counts) == len(corpus_builder.catalog)
    assert sizes.max() > sizes.min(), "the class sizes must be imbalanced"

    stats = render_table(
        ["statistic", "value"],
        [("number of classes", len(counts)),
         ("total samples", int(sizes.sum())),
         ("largest class", int(sizes.max())),
         ("smallest class", int(sizes.min())),
         ("median class size", float(np.median(sizes))),
         ("imbalance ratio (max/min)", round(float(sizes.max() / sizes.min()), 1)),
         ("paper reference", "92 classes, 5333 samples, max 880, min 3")],
        title="Figure 2 summary statistics")
    emit_table("figure2_class_sizes",
               stats + "\n\n" + class_size_table(counts))

    # At full scale the distribution matches the paper's headline numbers.
    if bench_config.scale.name == "full":
        assert 5000 <= int(sizes.sum()) <= 5700
        assert sizes.min() >= 3
