"""Benchmark: online ingestion throughput while the server keeps serving.

The live-metastore claim is that corpus growth is an online operation:
``POST /ingest`` adds labelled samples to the in-process index through
the same admission-controlled queue as classification, without taking
the server down or starving classifiers.  This benchmark measures that
against a live :class:`~repro.serving.server.ClassificationServer`:

* **mixed phase** — ``--clients`` ingest threads push labelled samples
  (in small batches) while as many classify threads keep classifying a
  fixed probe set; the ingest rate (samples/s) and the classification
  requests served during the same window are both recorded;
* **accounting** — afterwards the corpus must have grown by exactly the
  number of ingested samples (nothing lost, nothing duplicated);
* **publish identity** — the grown corpus is exported with
  :meth:`ModelManager.publish` and re-loaded by a fresh
  :class:`ClassificationService`; its decisions over probes *and*
  ingested payloads must be bit-identical to the live server's.

Run directly (``python benchmarks/bench_ingest.py``); ``--quick``
shrinks the corpus and sample count for CI.  Exit status is non-zero
when the sustained ingest rate falls below ``--min-ingest-rate``
samples/s, when classification starves (zero requests served during the
mixed phase), or when any decision diverges — so the script doubles as
a regression tripwire; ``tests/test_ingest_bench_smoke.py`` runs it as
part of tier 1 and a JSON trajectory is written to
``benchmarks/output/BENCH_ingest.json`` for CI archiving.
"""

from __future__ import annotations

import argparse
import base64
import json
import random
import sys
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from http.client import HTTPConnection
from pathlib import Path

from repro.api.service import ClassificationService
from repro.config import default_config
from repro.corpus.builder import CorpusBuilder
from repro.features.pipeline import FeatureExtractionPipeline
from repro.serving import ClassificationServer, ServerConfig
from repro.serving.model_manager import ModelManager
from repro.serving.protocol import decision_to_dict

OUTPUT_DIR = Path(__file__).parent / "output"

PAYLOAD_BYTES = 4096
INGEST_BATCH = 4                    # samples per /ingest request


@dataclass(frozen=True)
class BenchResult:
    n_train: int
    n_ingested: int
    n_clients: int
    n_estimators: int
    ingest_seconds: float
    classify_requests_during_ingest: int
    members_before: int
    members_after: int
    publish_seconds: float
    reloaded_members: int
    decisions_match: bool

    @property
    def ingest_rate(self) -> float:
        if self.ingest_seconds <= 0:
            return float("inf")
        return self.n_ingested / self.ingest_seconds

    @property
    def corpus_accounted(self) -> bool:
        return (self.members_after == self.members_before + self.n_ingested
                and self.reloaded_members == self.members_after)

    def table(self) -> str:
        lines = [
            f"model: {self.n_train} training samples, "
            f"{self.n_estimators} trees; {self.n_ingested} samples of "
            f"{PAYLOAD_BYTES} bytes ingested in {INGEST_BATCH}-sample "
            f"batches by {self.n_clients} clients",
            f"sustained ingest rate: {self.ingest_rate:.1f} samples/s "
            f"({self.ingest_seconds:.3f} s total)",
            f"classification stayed live: "
            f"{self.classify_requests_during_ingest} requests served "
            f"during the ingest window",
            f"corpus accounting: {self.members_before} -> "
            f"{self.members_after} members "
            f"(publish+reload saw {self.reloaded_members})",
            f"publish of the grown corpus took {self.publish_seconds:.3f} s",
            f"served decisions identical to reloaded artifact: "
            f"{self.decisions_match}",
        ]
        return "\n".join(lines)


def _make_payloads(count: int, seed: int,
                   tag: str = "bench") -> list[tuple[str, bytes]]:
    """Distinct, mutually dissimilar pseudo-executables."""

    return [(f"{tag}-{n}",
             random.Random(f"{seed}/{tag}-{n}").randbytes(PAYLOAD_BYTES))
            for n in range(count)]


def _request(connection: HTTPConnection, method: str, path: str,
             payload: dict) -> dict:
    connection.request(method, path, json.dumps(payload),
                       {"Content-Type": "application/json"})
    response = connection.getresponse()
    body = json.loads(response.read())
    if response.status != 200:
        raise RuntimeError(f"{method} {path} failed: {response.status} "
                           f"{body}")
    return body


def _classify_item(sample_id: str, data: bytes) -> dict:
    return {"id": sample_id, "data": base64.b64encode(data).decode("ascii")}


def _get_json(port: int, path: str) -> dict:
    connection = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def run(n_estimators: int, n_ingest: int, n_clients: int,
        seed: int = 11) -> BenchResult:
    config = default_config("small", seed=seed)

    # Setup (untimed): train in memory, publish the artifact once.
    samples = CorpusBuilder(config=config).build_samples()
    features = FeatureExtractionPipeline().extract_generated(samples)
    service = ClassificationService.train(
        features, n_estimators=n_estimators, random_state=seed,
        confidence_threshold=0.5)
    classes = sorted(str(name) for name in service.classes_)
    to_ingest = _make_payloads(n_ingest, seed, tag="online")
    labelled = [(sid, data, classes[n % len(classes)])
                for n, (sid, data) in enumerate(to_ingest)]
    probes = _make_payloads(max(8, n_clients), seed, tag="probe")

    with tempfile.TemporaryDirectory(prefix="repro-bench-ingest-") as tmp:
        model_path = Path(tmp) / "model.rpm"
        service.save(model_path)
        manager = ModelManager(model_path, poll_interval=0, cache_size=0,
                               mutable=True)
        server = ClassificationServer(
            manager,
            ServerConfig(port=0, workers=2, max_batch=max(32, n_clients),
                         queue_depth=4096, enable_ingest=True)).start()
        try:
            port = server.port
            members_before = manager.corpus_info()["members"]

            # Warmup (untimed lazy init on both verbs).
            warm = HTTPConnection("127.0.0.1", port, timeout=60)
            _request(warm, "POST", "/classify",
                     {"items": [_classify_item(*probes[0])]})
            warm.close()

            # Mixed phase: ingest fan-out with concurrent classify load.
            shares = [labelled[i::n_clients] for i in range(n_clients)]
            ingest_done = threading.Event()
            errors: list = []
            classify_count = [0]
            lock = threading.Lock()

            def ingest_client(share):
                try:
                    mine = HTTPConnection("127.0.0.1", port, timeout=120)
                    for start in range(0, len(share), INGEST_BATCH):
                        batch = share[start:start + INGEST_BATCH]
                        while True:
                            mine.request(
                                "POST", "/ingest",
                                json.dumps({"items": [
                                    {"id": sid, "class": cls,
                                     "data": base64.b64encode(
                                         data).decode("ascii")}
                                    for sid, data, cls in batch]}),
                                {"Content-Type": "application/json"})
                            response = mine.getresponse()
                            body = response.read()
                            if response.status == 200:
                                break
                            if response.status == 503:
                                time.sleep(0.02)   # honour backpressure
                                continue
                            raise RuntimeError(
                                f"ingest failed: {response.status} {body!r}")
                    mine.close()
                except Exception as exc:  # noqa: BLE001 — report, don't hang
                    with lock:
                        errors.append(exc)

            def classify_client(probe):
                try:
                    mine = HTTPConnection("127.0.0.1", port, timeout=120)
                    served = 0
                    while not ingest_done.is_set():
                        _request(mine, "POST", "/classify",
                                 {"items": [_classify_item(*probe)]})
                        served += 1
                    mine.close()
                    with lock:
                        classify_count[0] += served
                except Exception as exc:  # noqa: BLE001 — report, don't hang
                    with lock:
                        errors.append(exc)

            ingesters = [threading.Thread(target=ingest_client, args=(s,))
                         for s in shares]
            classifiers = [threading.Thread(target=classify_client,
                                            args=(probes[i % len(probes)],))
                           for i in range(n_clients)]
            start = time.perf_counter()
            for thread in classifiers + ingesters:
                thread.start()
            for thread in ingesters:
                thread.join()
            ingest_seconds = time.perf_counter() - start
            ingest_done.set()
            for thread in classifiers:
                thread.join()
            if errors:
                raise RuntimeError(f"mixed phase failed: {errors[0]}")

            members_after = manager.corpus_info()["members"]

            # Publish the grown corpus and reload it cold.
            start = time.perf_counter()
            published = manager.publish()
            publish_seconds = time.perf_counter() - start
            fresh = ClassificationService.load(published, cache_size=0)
            reloaded_members = fresh.corpus_info()["members"]

            # Identity: live answers over probes AND ingested payloads
            # must equal the reloaded artifact's direct decisions.
            check = probes + [(sid, data) for sid, data, _ in labelled]
            expected = [decision_to_dict(d)
                        for d in fresh.classify_bytes(check)]
            connection = HTTPConnection("127.0.0.1", port, timeout=120)
            served: list[dict] = []
            for chunk_start in range(0, len(check), 16):
                chunk = check[chunk_start:chunk_start + 16]
                body = _request(
                    connection, "POST", "/classify",
                    {"items": [_classify_item(sid, data)
                               for sid, data in chunk]})
                served.extend(body["decisions"])
            connection.close()
            decisions_match = served == expected
        finally:
            server.shutdown()

    return BenchResult(
        n_train=len(features),
        n_ingested=n_ingest,
        n_clients=n_clients,
        n_estimators=n_estimators,
        ingest_seconds=ingest_seconds,
        classify_requests_during_ingest=classify_count[0],
        members_before=members_before,
        members_after=members_after,
        publish_seconds=publish_seconds,
        reloaded_members=reloaded_members,
        decisions_match=decisions_match,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--estimators", type=int, default=60,
                        help="forest size (default 60)")
    parser.add_argument("--samples", type=int, default=None,
                        help="samples to ingest (default 96, quick 32)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent ingest clients, matched by as "
                             "many classify clients (default 8)")
    parser.add_argument("--min-ingest-rate", type=float, default=10.0,
                        help="fail (exit 1) below this sustained ingest "
                             "rate in samples/s (0 disables)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sample count for CI smoke runs")
    args = parser.parse_args(argv)

    n_ingest = (args.samples if args.samples
                else (32 if args.quick else 96))
    result = run(args.estimators, n_ingest, args.clients)

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "bench_ingest.txt"
    out.write_text(result.table() + "\n", encoding="utf-8")
    trajectory = dict(asdict(result),
                      ingest_rate=result.ingest_rate,
                      corpus_accounted=result.corpus_accounted)
    (OUTPUT_DIR / "BENCH_ingest.json").write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(result.table())
    print(f"(written to {out} and BENCH_ingest.json)")

    if not result.corpus_accounted:
        print(f"FAIL: corpus accounting broke: {result.members_before} + "
              f"{result.n_ingested} ingested != {result.members_after} "
              f"live / {result.reloaded_members} reloaded", file=sys.stderr)
        return 1
    if not result.decisions_match:
        print("FAIL: live decisions diverge from the published artifact",
              file=sys.stderr)
        return 1
    if result.classify_requests_during_ingest < 1:
        print("FAIL: classification starved during the ingest window",
              file=sys.stderr)
        return 1
    if args.min_ingest_rate and result.ingest_rate < args.min_ingest_rate:
        print(f"FAIL: ingest rate {result.ingest_rate:.1f} samples/s is "
              f"below the {args.min_ingest_rate:.1f} floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
