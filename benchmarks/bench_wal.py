"""Benchmark: write-ahead-log group commit and acked-ingest durability.

The durability design acks an ingest batch only after its WAL record is
fsynced, and amortises that fsync over the whole coalesced batch
(**group commit**).  This benchmark quantifies what that buys and
proves the guarantee it pays for:

* **group-commit speedup** — the same stream of ingest-shaped records
  is appended to a :class:`~repro.serving.wal.WriteAheadLog` twice:
  once fsyncing after every record (the naive durable baseline) and
  once fsyncing per ``--batch``-record group (what the serving tier
  does).  The sustained records/s of each and their ratio are
  recorded; the run fails below ``--min-speedup`` (default 3x);
* **crash-after-ack durability** (``--crash-after-ack``) — a real
  ``repro-classify serve --ingest --wal-dir`` subprocess ingests
  labelled samples over HTTP, and the moment the last batch is
  acknowledged the process is SIGKILLed.  A fresh manager then recovers
  from the same artifact + WAL and every acknowledged sample must be
  present exactly once — the ack-implies-durable contract, end to end.

Run directly (``python benchmarks/bench_wal.py``); ``--quick`` shrinks
the record counts for CI.  A JSON trajectory is written to
``benchmarks/output/BENCH_wal.json`` for CI archiving;
``tests/test_wal_bench_smoke.py`` runs the quick profile as tier 1.
"""

from __future__ import annotations

import argparse
import base64
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from http.client import HTTPConnection
from pathlib import Path

from repro.serving.wal import WriteAheadLog

OUTPUT_DIR = Path(__file__).parent / "output"
SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

PAYLOAD_BYTES = 2048
INGEST_BATCH = 4                      # samples per /ingest request


@dataclass(frozen=True)
class BenchResult:
    n_records: int
    batch_size: int
    per_record_seconds: float
    group_seconds: float
    crash_checked: bool
    crash_acked: int
    crash_recovered: int
    crash_duplicates: int

    @property
    def per_record_rate(self) -> float:
        return self.n_records / self.per_record_seconds

    @property
    def group_rate(self) -> float:
        return self.n_records / self.group_seconds

    @property
    def speedup(self) -> float:
        if self.per_record_rate <= 0:
            return float("inf")
        return self.group_rate / self.per_record_rate

    @property
    def crash_durable(self) -> bool:
        if not self.crash_checked:
            return True
        return (self.crash_recovered == self.crash_acked
                and self.crash_duplicates == 0)

    def table(self) -> str:
        lines = [
            f"{self.n_records} ingest-shaped records, group size "
            f"{self.batch_size}",
            f"fsync per record:  {self.per_record_rate:10.0f} records/s "
            f"({self.per_record_seconds:.3f} s)",
            f"group commit:      {self.group_rate:10.0f} records/s "
            f"({self.group_seconds:.3f} s)",
            f"group-commit speedup: {self.speedup:.1f}x",
        ]
        if self.crash_checked:
            lines.append(
                f"crash after ack: {self.crash_acked} acked, "
                f"{self.crash_recovered} recovered, "
                f"{self.crash_duplicates} duplicated -> "
                f"{'DURABLE' if self.crash_durable else 'LOST DATA'}")
        return "\n".join(lines)


def _ingest_payload(n: int) -> dict:
    """One record payload the size and shape the manager really logs."""

    blob = base64.b64encode(
        bytes((n * 31 + k) % 256 for k in range(PAYLOAD_BYTES))).decode()
    return {"items": [[f"wal-bench-{n}", blob, "class-a"]]}


def run_append_phases(n_records: int, batch_size: int,
                      directory: str) -> tuple[float, float]:
    """Time per-record-fsync vs group-commit appends of one stream."""

    payloads = [_ingest_payload(n) for n in range(n_records)]

    per_dir = Path(directory) / "per-record"
    wal = WriteAheadLog(per_dir)
    wal.recover()
    start = time.perf_counter()
    for payload in payloads:
        wal.append("ingest", payload, sync=True)
    per_record_seconds = time.perf_counter() - start
    wal.close()

    group_dir = Path(directory) / "group"
    wal = WriteAheadLog(group_dir)
    wal.recover()
    start = time.perf_counter()
    for base in range(0, n_records, batch_size):
        for payload in payloads[base:base + batch_size]:
            wal.append("ingest", payload, sync=False)
        wal.sync()
    group_seconds = time.perf_counter() - start
    wal.close()
    return per_record_seconds, group_seconds


# ----------------------------------------------------- crash-after-ack
def _train_artifact(path: Path, seed: int) -> list[str]:
    from repro.api.service import ClassificationService
    from repro.config import default_config
    from repro.corpus.builder import CorpusBuilder
    from repro.features.pipeline import FeatureExtractionPipeline

    config = default_config("small", seed=seed)
    samples = CorpusBuilder(config=config).build_samples()
    features = FeatureExtractionPipeline().extract_generated(samples)
    service = ClassificationService.train(
        features, n_estimators=10, random_state=seed,
        confidence_threshold=0.5)
    service.save(path)
    return sorted(str(name) for name in service.classes_)


def _start_server(model: Path, wal_dir: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--model", str(model),
         "--port", "0", "--ingest", "--wal-dir", str(wal_dir),
         "--reload-interval", "0", "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"server died during startup (rc={proc.returncode})")
            time.sleep(0.05)
            continue
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise RuntimeError("server never announced a port")


def run_crash_after_ack(n_batches: int, directory: str,
                        seed: int = 11) -> tuple[int, int, int]:
    """Ingest, SIGKILL on the last ack, recover; returns
    ``(acked, recovered, duplicates)`` over the acked sample ids."""

    from repro.serving.model_manager import ModelManager

    base = Path(directory)
    model = base / "model.rpm"
    wal_dir = base / "wal"
    classes = _train_artifact(model, seed)

    import random

    batches = []
    for b in range(n_batches):
        batches.append([
            (f"crash-ack-{b}-{i}",
             random.Random(f"{seed}/{b}/{i}").randbytes(PAYLOAD_BYTES),
             classes[b % len(classes)])
            for i in range(INGEST_BATCH)])

    proc, port = _start_server(model, wal_dir)
    acked: list[str] = []
    try:
        connection = HTTPConnection("127.0.0.1", port, timeout=120)
        for batch in batches:
            connection.request(
                "POST", "/ingest",
                json.dumps({"items": [
                    {"id": sid, "class": cls,
                     "data": base64.b64encode(data).decode("ascii")}
                    for sid, data, cls in batch]}),
                {"Content-Type": "application/json"})
            response = connection.getresponse()
            body = json.loads(response.read())
            if response.status != 200:
                raise RuntimeError(f"ingest failed: {response.status} "
                                   f"{body}")
            if not body.get("durable"):
                raise RuntimeError("server did not report durable acks; "
                                   "is the WAL active?")
            acked.extend(sid for sid, _, _ in batch)
        connection.close()
    finally:
        # The point of the exercise: no drain, no flush, no goodbye.
        proc.kill()
        proc.wait(timeout=60)

    manager = ModelManager(model, poll_interval=0, mutable=True,
                           wal_dir=wal_dir, cache_size=0)
    try:
        present = list(manager.service.similarity_index.sample_ids)
    finally:
        manager.stop()
    recovered = sum(1 for sid in acked if sid in present)
    duplicates = sum(1 for sid in acked if present.count(sid) > 1)
    return len(acked), recovered, duplicates


def run(n_records: int, batch_size: int, crash_batches: int,
        crash_after_ack: bool) -> BenchResult:
    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as tmp:
        per_record_seconds, group_seconds = run_append_phases(
            n_records, batch_size, tmp)
        crash_acked = crash_recovered = crash_duplicates = 0
        if crash_after_ack:
            crash_acked, crash_recovered, crash_duplicates = \
                run_crash_after_ack(crash_batches, tmp)
    return BenchResult(
        n_records=n_records,
        batch_size=batch_size,
        per_record_seconds=per_record_seconds,
        group_seconds=group_seconds,
        crash_checked=crash_after_ack,
        crash_acked=crash_acked,
        crash_recovered=crash_recovered,
        crash_duplicates=crash_duplicates,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=None,
                        help="records per append phase (default 768, "
                             "quick 256)")
    parser.add_argument("--batch", type=int, default=16,
                        help="records per group-commit fsync (default 16, "
                             "the server's default coalesce size order)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail (exit 1) when group commit is not at "
                             "least this many times faster than per-record "
                             "fsync (0 disables; default 3)")
    parser.add_argument("--crash-after-ack", action="store_true",
                        help="also run the live-server SIGKILL durability "
                             "check: every acked ingest must survive "
                             "recovery exactly once")
    parser.add_argument("--crash-batches", type=int, default=4,
                        help="ingest batches acked before the SIGKILL "
                             "(default 4)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller record count for CI smoke runs")
    args = parser.parse_args(argv)

    n_records = (args.records if args.records
                 else (256 if args.quick else 768))
    result = run(n_records, args.batch, args.crash_batches,
                 args.crash_after_ack)

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "bench_wal.txt"
    out.write_text(result.table() + "\n", encoding="utf-8")
    trajectory = dict(asdict(result),
                      per_record_rate=result.per_record_rate,
                      group_rate=result.group_rate,
                      speedup=result.speedup,
                      crash_durable=result.crash_durable)
    (OUTPUT_DIR / "BENCH_wal.json").write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(result.table())
    print(f"(written to {out} and BENCH_wal.json)")

    if not result.crash_durable:
        print(f"FAIL: crash after ack lost or duplicated ingests "
              f"({result.crash_acked} acked, {result.crash_recovered} "
              f"recovered, {result.crash_duplicates} duplicated)",
              file=sys.stderr)
        return 1
    if args.min_speedup and result.speedup < args.min_speedup:
        print(f"FAIL: group-commit speedup {result.speedup:.1f}x is below "
              f"the {args.min_speedup:.1f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
