"""Table 1 — versions and executables of the Velvet application class.

The paper's Table 1 shows that the Velvet class consists of three
version directories, each containing the ``velveth`` and ``velvetg``
executables.  This benchmark regenerates exactly that structure from
the synthetic corpus and times how long generating one such application
class takes.
"""

from __future__ import annotations

import pytest

from repro.core.reporting import render_table, velvet_style_table
from repro.corpus.dataset import CorpusDataset


@pytest.mark.benchmark(group="table1")
def test_table1_velvet_structure(benchmark, full_catalog_builder, emit_table):
    samples = benchmark(lambda: full_catalog_builder.build_samples(class_names=["Velvet"]))

    records = [s.record(sample_id=s.relative_path) for s in samples]
    dataset = CorpusDataset(records)
    table = velvet_style_table(dataset, class_name="Velvet")

    by_version: dict[str, list[str]] = {}
    for sample in samples:
        by_version.setdefault(sample.version, []).append(sample.executable)

    # Structural assertions that mirror the paper's Table 1.
    assert len(by_version) == 3, "Velvet must have exactly three versions"
    for executables in by_version.values():
        assert sorted(executables) == ["velvetg", "velveth"]

    paper_reference = render_table(
        ["Class", "Application Version", "Samples"],
        [("Velvet", "1.2.10-GCC-10.3.0-mt-kmer 191", "velveth, velvetg"),
         ("", "1.2.10-goolf-1.4.10", "velveth, velvetg"),
         ("", "1.2.10-goolf-1.7.20", "velveth, velvetg")],
        title="Paper Table 1 (reference)")
    emit_table("table1_velvet_structure", table + "\n\n" + paper_reference)
