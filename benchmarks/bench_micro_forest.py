"""Micro-benchmarks of the from-scratch Random Forest.

Training dominates the grid search's cost, prediction dominates the
production workflow's cost; both are measured here on the real
similarity feature matrix of the benchmark corpus.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


@pytest.mark.benchmark(group="micro-forest")
def test_single_tree_fit(benchmark, similarity_matrices, paper_split):
    _, train_matrix, _ = similarity_matrices
    y = np.asarray(paper_split.train_labels, dtype=object)

    def fit():
        return DecisionTreeClassifier(max_features="sqrt", class_weight="balanced",
                                      random_state=0).fit(train_matrix.X, y)

    tree = benchmark.pedantic(fit, rounds=2, iterations=1)
    assert tree.node_count > 10


@pytest.mark.benchmark(group="micro-forest")
def test_forest_fit_40_trees(benchmark, similarity_matrices, paper_split, bench_config):
    _, train_matrix, _ = similarity_matrices
    y = np.asarray(paper_split.train_labels, dtype=object)

    def fit():
        return RandomForestClassifier(
            n_estimators=40, max_features="sqrt", class_weight="balanced",
            random_state=0, n_jobs=bench_config.n_jobs).fit(train_matrix.X, y)

    forest = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert len(forest.estimators_) == 40


@pytest.mark.benchmark(group="micro-forest")
def test_forest_predict_throughput(benchmark, fitted_model, similarity_matrices):
    _, _, test_matrix = similarity_matrices
    predictions = benchmark(lambda: fitted_model.predict(test_matrix.X))
    assert len(predictions) == test_matrix.n_samples


@pytest.mark.benchmark(group="micro-forest")
def test_forest_predict_proba_throughput(benchmark, fitted_model, similarity_matrices):
    _, _, test_matrix = similarity_matrices
    proba = benchmark(lambda: fitted_model.predict_proba(test_matrix.X))
    assert proba.shape[0] == test_matrix.n_samples
