"""Benchmark: vector-digest recall ablation and packed-Hamming throughput.

The second hash family (:mod:`repro.hashing.vector`) exists for the
regimes where CTPH breaks down: scattered point mutations destroy the
7-gram substring gate, while the vector digest's rank-quartile bucket
histogram moves only a few of its 256 bits.  This benchmark quantifies
that claim and guards the packed kNN sweep's speed:

* **recall ablation** — three mutation scenarios (scattered single-byte
  edits on small inputs, appended tails, inserted zero padding), each a
  multi-class corpus of mutated variants.  For every scenario the
  top-1-neighbour recall of the CTPH family, the vector family and the
  dual-family combination (per-member max over both score blocks, the
  same aggregation :class:`~repro.features.similarity.SimilarityFeatureBuilder`
  applies) is measured against held-out variants.  The tripwire is the
  ISSUE's acceptance rule: **dual-family recall >= CTPH-only recall in
  every scenario**, enforced unconditionally;
* **kNN throughput** — :meth:`repro.index.knn.VectorKNNIndex.top_k`
  (one XOR + popcount-LUT sweep over the packed ``(n, 4)`` ``uint64``
  matrix) against :func:`repro.index.knn.brute_force_top_k` (the
  per-pair Python loop).  Results must be bit-identical; the speedup
  floor is 5x by default (the packed sweep is typically two orders of
  magnitude faster — the floor is a tripwire, not a target).

Run directly (``python benchmarks/bench_vector_digest.py``, add
``--quick`` for the small CI configuration).  Exit status is non-zero
when results diverge, a recall ordering is violated or the speedup
floor is missed; a JSON trajectory is written to
``benchmarks/output/BENCH_vector_digest.json`` for CI archiving.
``tests/test_vector_bench_smoke.py`` runs the identity and recall
checks (plus a conservative speedup floor) in tier 1.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.hashing.ssdeep import fuzzy_hash
from repro.hashing.vector import vector_hash
from repro.index import SimilarityIndex, VectorKNNIndex, brute_force_top_k

OUTPUT_DIR = Path(__file__).parent / "output"

CTPH_TYPE = "ssdeep-file"
VECTOR_TYPE = "vector-file"

#: The recall scenarios: name -> mutation regime.
SCENARIOS = ("scattered", "appended", "padded")


def _mutate(rnd: random.Random, base: bytes, scenario: str) -> bytes:
    """One variant of ``base`` under the scenario's mutation regime."""

    if scenario == "scattered":
        # Point mutations dispersed across the whole blob: every edit
        # lands in a different CTPH chunk, so the 7-gram gate starves.
        blob = bytearray(base)
        for _ in range(rnd.randrange(8, 33)):
            blob[rnd.randrange(len(blob))] = rnd.randrange(256)
        return bytes(blob)
    if scenario == "appended":
        # A grown tail: the shared prefix keeps CTPH chunks intact.
        tail = rnd.randbytes(max(16, len(base) // rnd.randrange(7, 20)))
        return base + tail
    if scenario == "padded":
        # A zero block inserted at a random offset (section padding).
        offset = rnd.randrange(len(base))
        pad = b"\x00" * max(64, len(base) // 10)
        return base[:offset] + pad + base[offset:]
    raise ValueError(f"unknown scenario {scenario!r}")


def make_scenario_corpus(scenario: str, n_classes: int, n_variants: int,
                         *, blob_size: int = 6 * 1024, seed: int = 20260807
                         ) -> list[tuple[str, bytes]]:
    """``(class_name, blob)`` members: per class, mutated variants."""

    rnd = random.Random(f"{scenario}-{seed}")
    members = []
    for c in range(n_classes):
        base = rnd.randbytes(blob_size + rnd.randrange(blob_size // 2))
        for _ in range(n_variants):
            members.append((f"class-{c:02d}", _mutate(rnd, base, scenario)))
    return members


@dataclass(frozen=True)
class ScenarioRecall:
    scenario: str
    n_members: int
    n_queries: int
    ctph_recall: float
    vector_recall: float
    both_recall: float


@dataclass(frozen=True)
class BenchResult:
    scenarios: tuple[ScenarioRecall, ...]
    knn_members: int
    knn_queries: int
    loop_seconds: float
    packed_seconds: float
    results_match: bool

    @property
    def knn_speedup(self) -> float:
        if self.packed_seconds <= 0:
            return float("inf")
        return self.loop_seconds / self.packed_seconds

    @property
    def recall_ordering_holds(self) -> bool:
        return all(s.both_recall >= s.ctph_recall for s in self.scenarios)

    def table(self) -> str:
        lines = [
            f"{'scenario':<12} {'members':>7} {'queries':>7} "
            f"{'ctph@1':>7} {'vector@1':>8} {'both@1':>7}",
        ]
        for s in self.scenarios:
            lines.append(f"{s.scenario:<12} {s.n_members:>7} "
                         f"{s.n_queries:>7} {s.ctph_recall:>7.2f} "
                         f"{s.vector_recall:>8.2f} {s.both_recall:>7.2f}")
        lines += [
            f"dual-family recall >= ctph-only in every scenario: "
            f"{self.recall_ordering_holds}",
            f"kNN top-k over {self.knn_members} members, "
            f"{self.knn_queries} queries: per-pair loop "
            f"{self.loop_seconds:.3f} s vs packed sweep "
            f"{self.packed_seconds:.3f} s ({self.knn_speedup:.1f}x)",
            f"packed top-k bit-identical to the per-pair loop: "
            f"{self.results_match}",
        ]
        return "\n".join(lines)


def measure_recall(scenario: str, n_classes: int, n_variants: int,
                   *, blob_size: int = 6 * 1024) -> ScenarioRecall:
    """Top-1 recall of each family with one held-out query per class."""

    members = make_scenario_corpus(scenario, n_classes, n_variants,
                                   blob_size=blob_size)
    queries: list[tuple[str, bytes]] = []
    corpus: list[tuple[str, bytes]] = []
    seen: set[str] = set()
    for class_name, blob in members:
        if class_name not in seen:       # first variant of each class
            seen.add(class_name)
            queries.append((class_name, blob))
        else:
            corpus.append((class_name, blob))

    index = SimilarityIndex([CTPH_TYPE, VECTOR_TYPE])
    for i, (class_name, blob) in enumerate(corpus):
        index.add(f"{scenario}-{i:05d}",
                  {CTPH_TYPE: fuzzy_hash(blob),
                   VECTOR_TYPE: vector_hash(blob)},
                  class_name=class_name)
    index.seal()

    ctph_matrix = index.score_matrix(CTPH_TYPE,
                                     [fuzzy_hash(b) for _, b in queries])
    vector_matrix = index.score_matrix(VECTOR_TYPE,
                                       [vector_hash(b) for _, b in queries])
    both_matrix = np.maximum(ctph_matrix, vector_matrix)
    classes = np.asarray([c for c, _ in corpus], dtype=object)

    def recall(matrix: np.ndarray) -> float:
        hits = 0
        for q, (query_class, _) in enumerate(queries):
            row = matrix[q]
            best = int(np.argmax(row))
            if row[best] > 0 and classes[best] == query_class:
                hits += 1
        return hits / len(queries)

    return ScenarioRecall(scenario=scenario, n_members=len(corpus),
                          n_queries=len(queries),
                          ctph_recall=recall(ctph_matrix),
                          vector_recall=recall(vector_matrix),
                          both_recall=recall(both_matrix))


def measure_knn(n_members: int, n_queries: int, *, k: int = 10
                ) -> tuple[float, float, bool]:
    """(loop seconds, packed seconds, bit-identical) for top-k queries."""

    rnd = random.Random(1307)
    members = []
    for i in range(n_members):
        blob = rnd.randbytes(1024 + rnd.randrange(2048))
        members.append((f"member-{i:06d}", f"class-{i % 11:02d}",
                        vector_hash(blob)))
    queries = [members[rnd.randrange(n_members)][2]
               for _ in range(n_queries)]

    index = VectorKNNIndex()
    index.add_many(members)

    results_match = all(
        index.top_k(q, k, min_score=0) ==
        brute_force_top_k(members, q, k, min_score=0)
        for q in queries)

    def best_of(fn, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    loop_seconds = best_of(
        lambda: [brute_force_top_k(members, q, k, min_score=0)
                 for q in queries])
    packed_seconds = best_of(
        lambda: [index.top_k(q, k, min_score=0) for q in queries])
    return loop_seconds, packed_seconds, results_match


def run(n_classes: int, n_variants: int, knn_members: int, knn_queries: int,
        *, blob_size: int = 6 * 1024) -> BenchResult:
    scenarios = tuple(measure_recall(s, n_classes, n_variants,
                                     blob_size=blob_size)
                      for s in SCENARIOS)
    loop_seconds, packed_seconds, results_match = measure_knn(knn_members,
                                                              knn_queries)
    return BenchResult(scenarios=scenarios, knn_members=knn_members,
                       knn_queries=knn_queries, loop_seconds=loop_seconds,
                       packed_seconds=packed_seconds,
                       results_match=results_match)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--classes", type=int, default=None,
                        help="recall corpus classes (default 12, quick 6)")
    parser.add_argument("--variants", type=int, default=None,
                        help="variants per class (default 8, quick 5)")
    parser.add_argument("--knn-members", type=int, default=None,
                        help="kNN corpus size (default 4000, quick 1000)")
    parser.add_argument("--knn-queries", type=int, default=None,
                        help="kNN query count (default 25, quick 8)")
    parser.add_argument("--min-knn-speedup", type=float, default=5.0,
                        help="fail (exit 1) when the packed sweep is not "
                             "at least this much faster than the per-pair "
                             "loop (0 disables)")
    args = parser.parse_args(argv)

    n_classes = args.classes or (6 if args.quick else 12)
    n_variants = args.variants or (5 if args.quick else 8)
    knn_members = args.knn_members or (1000 if args.quick else 4000)
    knn_queries = args.knn_queries or (8 if args.quick else 25)
    blob_size = 3 * 1024 if args.quick else 6 * 1024
    result = run(n_classes, n_variants, knn_members, knn_queries,
                 blob_size=blob_size)

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "bench_vector_digest.txt"
    out.write_text(result.table() + "\n", encoding="utf-8")
    trajectory = dict(asdict(result),
                      knn_speedup=result.knn_speedup,
                      recall_ordering_holds=result.recall_ordering_holds)
    (OUTPUT_DIR / "BENCH_vector_digest.json").write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(result.table())
    print(f"(written to {out} and BENCH_vector_digest.json)")

    if not result.results_match:
        print("FAIL: packed top-k diverges from the per-pair reference",
              file=sys.stderr)
        return 1
    if not result.recall_ordering_holds:
        print("FAIL: dual-family recall fell below CTPH-only recall",
              file=sys.stderr)
        return 1
    if args.min_knn_speedup and result.knn_speedup < args.min_knn_speedup:
        print(f"FAIL: packed kNN speedup {result.knn_speedup:.1f}x is "
              f"below the {args.min_knn_speedup:.1f}x floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
