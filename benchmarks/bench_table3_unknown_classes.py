"""Table 3 — composition of the unknown class.

The paper holds out 19 whole application classes (852 samples) as the
"-1" unknown class.  This benchmark applies the same two-phase split to
the synthetic corpus with split mode "paper" (the identical class list)
and reports the per-class counts; the split itself is the timed
operation.
"""

from __future__ import annotations

import pytest

from repro.core.reporting import unknown_class_table
from repro.core.splits import two_phase_split
from repro.corpus.catalog import PAPER_UNKNOWN_CLASSES


@pytest.mark.benchmark(group="table3")
def test_table3_unknown_class_composition(benchmark, corpus_labels, bench_config,
                                          paper_split, emit_table):
    split = benchmark(lambda: two_phase_split(
        corpus_labels,
        unknown_class_fraction=bench_config.unknown_class_fraction,
        test_sample_fraction=bench_config.test_sample_fraction,
        mode="paper",
        random_state=bench_config.seed,
    ))

    counts = split.unknown_class_counts()
    # Exactly the paper's held-out classes (those present at this scale).
    assert set(counts) <= set(PAPER_UNKNOWN_CLASSES)
    assert len(counts) == len([c for c in PAPER_UNKNOWN_CLASSES
                               if c in set(corpus_labels)])
    # None of them appear in the training labels.
    assert not set(split.train_labels) & set(counts)

    table = unknown_class_table(split)
    table += ("\n\npaper reference: 19 classes, 852 unknown samples "
              "(Schrodinger 195, QuantumESPRESSO 178, SAMtools 108, ..., CHARMM 3)")
    table += f"\nmeasured: {len(counts)} classes, {sum(counts.values())} unknown samples"
    table += f"\nsplit: {split.summary()}"
    emit_table("table3_unknown_classes", table)

    if bench_config.scale.name == "full":
        assert 750 <= sum(counts.values()) <= 950
