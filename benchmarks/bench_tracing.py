"""Benchmark: request-tracing overhead at default sampling.

The tracing layer (PR 10) promises near-zero cost: request ids, the
contextvar span sink, per-stage histograms and the ``/debug/trace``
rings must not tax the serving hot path noticeably.  This benchmark
measures exactly that against two live
:class:`~repro.serving.server.ClassificationServer` instances over the
same artifact and payloads:

* **tracing off** — ``trace_sample=0.0``: request ids are still
  issued, but no request is sampled, so every ``span(...)`` call site
  takes the shared no-op path;
* **tracing on** — ``trace_sample=1.0`` (the default): every request
  carries a full :class:`RequestTrace` through parse, queue wait,
  batch assembly, the model pass and serialisation, feeding the
  labeled stage histogram and both trace rings.

The two modes run alternately for ``--repeats`` rounds and each mode's
*best* round is compared — alternation exposes both modes to the same
machine drift, and min-of-N suppresses scheduler noise on shared CI
runners.  The acceptance criterion is a throughput overhead of at most
``--max-overhead`` (default 5%).

Alongside the overhead gate, the run verifies tracing actually worked:
decisions from both modes are bit-identical to a direct
:meth:`ClassificationService.classify_bytes` call, every request was
sampled (``traces_sampled_total``), and every captured trace's stage
sum stays within its wall time while covering the canonical stages.

Run directly (``python benchmarks/bench_tracing.py``); ``--quick``
shrinks the workload for CI.  Exit status is non-zero on any failed
check, so the script doubles as a regression tripwire;
``tests/test_tracing_bench_smoke.py`` runs it as part of tier 1 and a
JSON trajectory is written to ``benchmarks/output/BENCH_tracing.json``
for CI archiving.
"""

from __future__ import annotations

import argparse
import base64
import json
import random
import sys
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field
from http.client import HTTPConnection
from pathlib import Path

from repro.api.service import ClassificationService
from repro.config import default_config
from repro.corpus.builder import CorpusBuilder
from repro.features.pipeline import FeatureExtractionPipeline
from repro.serving import ClassificationServer, ServerConfig
from repro.serving.model_manager import ModelManager
from repro.serving.protocol import decision_to_dict

OUTPUT_DIR = Path(__file__).parent / "output"

PAYLOAD_BYTES = 4096

#: Stages every fully-sampled classify trace must attribute.
REQUIRED_STAGES = ("parse", "queue_wait", "batch_assembly",
                   "extract_features", "candidate_gen", "dp_scoring",
                   "forest_predict", "serialize")


@dataclass(frozen=True)
class BenchResult:
    n_train: int
    n_requests: int
    n_clients: int
    n_estimators: int
    repeats: int
    off_seconds: float                 # best tracing-off round
    on_seconds: float                  # best tracing-on round
    off_rounds: list[float] = field(default_factory=list)
    on_rounds: list[float] = field(default_factory=list)
    traces_sampled: int = 0
    traces_in_ring: int = 0
    stages_observed: tuple[str, ...] = ()
    stage_sums_within_wall: bool = True
    decisions_match: bool = True

    @property
    def off_rps(self) -> float:
        return self.n_requests / self.off_seconds

    @property
    def on_rps(self) -> float:
        return self.n_requests / self.on_seconds

    @property
    def overhead(self) -> float:
        """Fractional throughput cost of tracing (negative = noise)."""

        if self.off_seconds <= 0:
            return 0.0
        return self.on_seconds / self.off_seconds - 1.0

    def table(self) -> str:
        rounds_off = ", ".join(f"{s:.3f}" for s in self.off_rounds)
        rounds_on = ", ".join(f"{s:.3f}" for s in self.on_rounds)
        return "\n".join([
            f"model: {self.n_train} training samples, "
            f"{self.n_estimators} trees; {self.n_requests} requests of one "
            f"{PAYLOAD_BYTES}-byte executable each, "
            f"{self.n_clients} concurrent clients, best of "
            f"{self.repeats} alternating rounds",
            f"{'tracing mode':<36} {'best (s)':>10} {'req/s':>8}",
            f"{'off (trace_sample=0.0)':<36} "
            f"{self.off_seconds:>10.3f} {self.off_rps:>8.1f}",
            f"{'on  (trace_sample=1.0, default)':<36} "
            f"{self.on_seconds:>10.3f} {self.on_rps:>8.1f}",
            f"tracing throughput overhead: {self.overhead * 100:+.2f}%",
            f"rounds off: [{rounds_off}]  on: [{rounds_on}]",
            f"traces sampled: {self.traces_sampled} "
            f"({self.traces_in_ring} in the /debug/trace ring)",
            f"stages observed: {', '.join(self.stages_observed)}",
            f"stage sums within wall time: {self.stage_sums_within_wall}",
            f"served decisions identical to direct classify_bytes: "
            f"{self.decisions_match}",
        ])


def _make_payloads(count: int, seed: int) -> list[tuple[str, bytes]]:
    rng = random.Random(seed)
    return [(f"bench-{n}", bytes(rng.getrandbits(8)
                                 for _ in range(PAYLOAD_BYTES)))
            for n in range(count)]


def _post(connection: HTTPConnection, sample_id: str, data: bytes) -> dict:
    body = json.dumps({"items": [
        {"id": sample_id, "data": base64.b64encode(data).decode("ascii")}]})
    connection.request("POST", "/classify", body,
                       {"Content-Type": "application/json"})
    response = connection.getresponse()
    payload = json.loads(response.read())
    if response.status != 200:
        raise RuntimeError(f"serving request failed: {response.status} "
                           f"{payload}")
    return payload["decisions"][0]


def _get_json(port: int, path: str) -> dict:
    connection = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def _client_run(port: int, payloads: list, n_clients: int
                ) -> tuple[dict, float]:
    results: dict[str, dict] = {}
    errors: list = []
    lock = threading.Lock()
    shares = [payloads[i::n_clients] for i in range(n_clients)]

    def client(share):
        try:
            mine = HTTPConnection("127.0.0.1", port, timeout=120)
            collected = {}
            for sample_id, data in share:
                collected[sample_id] = _post(mine, sample_id, data)
            mine.close()
            with lock:
                results.update(collected)
        except Exception as exc:  # noqa: BLE001 — report, don't hang
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(share,))
               for share in shares]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"client run failed: {errors[0]}")
    return results, seconds


def _measure_round(model_path: Path, payloads: list, n_clients: int,
                   trace_sample: float) -> tuple[dict, float, dict, dict]:
    """One fresh server at ``trace_sample``; returns results, seconds,
    the final metrics snapshot and the ``/debug/trace`` payload."""

    manager = ModelManager(model_path, poll_interval=0, cache_size=0)
    server = ClassificationServer(
        manager,
        ServerConfig(port=0, workers=2, max_batch=max(32, n_clients),
                     queue_depth=4096, trace_sample=trace_sample)).start()
    try:
        warm = HTTPConnection("127.0.0.1", server.port, timeout=60)
        _post(warm, "warmup-0", payloads[0][1])
        warm.close()
        results, seconds = _client_run(server.port, payloads, n_clients)
        metrics = _get_json(server.port, "/metrics")
        traces = _get_json(server.port, "/debug/trace")
    finally:
        server.shutdown()
    return results, seconds, metrics, traces


def run(n_estimators: int, n_requests: int, n_clients: int,
        repeats: int = 3, seed: int = 11) -> BenchResult:
    config = default_config("small", seed=seed)

    # Setup (untimed): train in memory, publish the artifact once.
    samples = CorpusBuilder(config=config).build_samples()
    features = FeatureExtractionPipeline().extract_generated(samples)
    service = ClassificationService.train(
        features, n_estimators=n_estimators, random_state=seed,
        confidence_threshold=0.5)
    payloads = _make_payloads(n_requests, seed)

    with tempfile.TemporaryDirectory(prefix="repro-bench-tracing-") as tmp:
        model_path = Path(tmp) / "model.rpm"
        service.save(model_path)
        reference = ClassificationService.load(model_path, cache_size=0)
        expected = {sid: decision_to_dict(d) for (sid, _), d in zip(
            payloads, reference.classify_bytes(payloads))}

        off_rounds: list[float] = []
        on_rounds: list[float] = []
        decisions_match = True
        traces_sampled = 0
        traces_in_ring = 0
        stages: set[str] = set()
        sums_ok = True
        # Alternate modes so machine drift hits both equally; keep each
        # mode's best round (min-of-N suppresses scheduler noise).
        for _ in range(max(1, repeats)):
            results, seconds, _, _ = _measure_round(
                model_path, payloads, n_clients, trace_sample=0.0)
            off_rounds.append(seconds)
            decisions_match &= (results == expected)

            results, seconds, metrics, traces = _measure_round(
                model_path, payloads, n_clients, trace_sample=1.0)
            on_rounds.append(seconds)
            decisions_match &= (results == expected)
            traces_sampled = max(traces_sampled,
                                 int(metrics["traces_sampled_total"]))
            traces_in_ring = max(traces_in_ring, len(traces["recent"]))
            for trace in traces["recent"]:
                stages.update(trace["stages"])
                stage_sum = sum(trace["stages"].values())
                if stage_sum > trace["wall_ms"] * 1.05 + 1.0:
                    sums_ok = False

    return BenchResult(
        n_train=len(features),
        n_requests=n_requests,
        n_clients=n_clients,
        n_estimators=n_estimators,
        repeats=max(1, repeats),
        off_seconds=min(off_rounds),
        on_seconds=min(on_rounds),
        off_rounds=off_rounds,
        on_rounds=on_rounds,
        traces_sampled=traces_sampled,
        traces_in_ring=traces_in_ring,
        stages_observed=tuple(sorted(stages)),
        stage_sums_within_wall=sums_ok,
        decisions_match=decisions_match,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--estimators", type=int, default=60,
                        help="forest size (default 60)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per round (default 96, quick 48)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent clients (default 8)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="alternating rounds per mode "
                             "(default 3, quick 2)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="fail (exit 1) when tracing costs more than "
                             "this fraction of throughput (default 0.05 "
                             "= 5%%, the acceptance criterion; 0 disables)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI smoke runs")
    args = parser.parse_args(argv)

    n_requests = (args.requests if args.requests
                  else (48 if args.quick else 96))
    repeats = args.repeats if args.repeats else (2 if args.quick else 3)
    result = run(args.estimators, n_requests, args.clients, repeats=repeats)

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "bench_tracing.txt"
    out.write_text(result.table() + "\n", encoding="utf-8")
    trajectory = dict(asdict(result),
                      off_rps=result.off_rps,
                      on_rps=result.on_rps,
                      overhead=result.overhead)
    (OUTPUT_DIR / "BENCH_tracing.json").write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(result.table())
    print(f"(written to {out} and BENCH_tracing.json)")

    if not result.decisions_match:
        print("FAIL: served decisions diverge from direct classify_bytes",
              file=sys.stderr)
        return 1
    if result.traces_sampled < n_requests:
        print(f"FAIL: only {result.traces_sampled} traces sampled for "
              f"{n_requests} requests at sample_rate=1.0", file=sys.stderr)
        return 1
    missing = [s for s in REQUIRED_STAGES if s not in result.stages_observed]
    if missing:
        print(f"FAIL: traces never attributed stages {missing}",
              file=sys.stderr)
        return 1
    if not result.stage_sums_within_wall:
        print("FAIL: a trace's stage sum exceeds its wall time "
              "(double-counted attribution)", file=sys.stderr)
        return 1
    if args.max_overhead and result.overhead > args.max_overhead:
        print(f"FAIL: tracing overhead {result.overhead * 100:.2f}% is "
              f"above the {args.max_overhead * 100:.1f}% ceiling",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
