"""Figure 1 — the envisioned workflow, measured stage by stage.

Figure 1 of the paper is an architecture diagram (collect fuzzy-hash
features from jobs → classify → let operators decide), not a results
plot.  The closest measurable artefact is the throughput of each stage
of that workflow, which is what this benchmark reports: corpus
collection, feature extraction, similarity matrix construction,
training and prediction.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.classifier import ThresholdRandomForest
from repro.core.reporting import render_table
from repro.features.pipeline import FeatureExtractionPipeline
from repro.features.similarity import SimilarityFeatureBuilder


@pytest.mark.benchmark(group="workflow")
def test_workflow_stage_throughput(benchmark, bench_config, corpus_samples,
                                   paper_split, grid_outcome, emit_table):
    stage_seconds: dict[str, float] = {}
    stage_items: dict[str, int] = {}

    def run_pipeline():
        timings = {}
        start = time.perf_counter()
        pipeline = FeatureExtractionPipeline(bench_config.feature_types,
                                             n_jobs=bench_config.n_jobs)
        features = pipeline.extract_generated(corpus_samples)
        timings["feature extraction"] = time.perf_counter() - start

        train_features = [features[i] for i in paper_split.train_indices]
        test_features = [features[i] for i in paper_split.test_indices]

        start = time.perf_counter()
        builder = SimilarityFeatureBuilder(bench_config.feature_types)
        train_matrix = builder.fit_transform(train_features, exclude_self=True)
        test_matrix = builder.transform(test_features)
        timings["similarity matrices"] = time.perf_counter() - start

        start = time.perf_counter()
        model = ThresholdRandomForest(
            confidence_threshold=grid_outcome.best_threshold,
            random_state=bench_config.seed, class_weight="balanced",
            n_jobs=bench_config.n_jobs, **grid_outcome.best_params)
        model.fit(train_matrix.X, np.asarray(paper_split.train_labels, dtype=object))
        timings["training"] = time.perf_counter() - start

        start = time.perf_counter()
        predictions = model.predict(test_matrix.X)
        timings["prediction"] = time.perf_counter() - start

        stage_seconds.update(timings)
        stage_items.update({
            "feature extraction": len(corpus_samples),
            "similarity matrices": len(train_features) + len(test_features),
            "training": len(train_features),
            "prediction": len(test_features),
        })
        return predictions

    predictions = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    assert len(predictions) == paper_split.n_test
    # Prediction must be much cheaper than training: the production
    # workflow classifies newly collected executables against an already
    # trained model.
    assert stage_seconds["prediction"] < stage_seconds["training"]

    rows = []
    for stage, seconds in stage_seconds.items():
        items = stage_items[stage]
        rate = items / seconds if seconds > 0 else float("inf")
        rows.append((stage, items, f"{seconds:.2f}", f"{rate:.1f}"))
    table = render_table(
        ["workflow stage", "items", "seconds", "items/s"], rows,
        title="Figure 1 workflow: per-stage throughput "
              f"(scale '{bench_config.scale.name}', {bench_config.n_jobs} worker(s))")
    emit_table("workflow_end_to_end", table)
