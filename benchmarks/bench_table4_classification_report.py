"""Table 4 — the classification report (the paper's headline result).

The paper reports macro f1 = 0.90, micro f1 = 0.89, weighted f1 = 0.90
over 2645 test samples (852 of them from completely unknown classes).
This benchmark runs the tuned Fuzzy Hash Classifier on the test split
and regenerates the per-class precision/recall/f1 report; the timed
section is the final fit + predict with the tuned hyper-parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import ThresholdRandomForest
from repro.core.reporting import classification_report_table
from repro.ml.metrics import classification_report


@pytest.mark.benchmark(group="table4")
def test_table4_classification_report(benchmark, bench_config, similarity_matrices,
                                      paper_split, grid_outcome, emit_table):
    _, train_matrix, test_matrix = similarity_matrices
    y_train = np.asarray(paper_split.train_labels, dtype=object)

    def fit_and_predict():
        model = ThresholdRandomForest(
            confidence_threshold=grid_outcome.best_threshold,
            unknown_label=bench_config.unknown_label,
            random_state=bench_config.seed,
            class_weight="balanced",
            n_jobs=bench_config.n_jobs,
            **grid_outcome.best_params,
        )
        model.fit(train_matrix.X, y_train)
        return model.predict(test_matrix.X)

    predictions = benchmark.pedantic(fit_and_predict, rounds=1, iterations=1)

    expected = paper_split.expected_test_labels
    report = classification_report(expected, predictions)

    # Shape of the paper's result: all three f1 averages in the same high
    # range, clearly above a majority-class / exact-match regime.
    assert report.macro_f1 > 0.75
    assert report.micro_f1 > 0.75
    assert report.weighted_f1 > 0.75

    # The unknown class behaves as in the paper: precision >= recall
    # ("our model confidently labels a sample as unknown and is usually
    # correct [but] fails to capture all cases").
    unknown_row = [row for row in report.per_class if row.label == -1][0]
    assert unknown_row.support == paper_split.n_unknown_test
    assert unknown_row.precision >= unknown_row.recall - 0.05

    table = classification_report_table(report)
    table += ("\n\npaper reference: micro avg 0.89 / macro avg 0.90 / weighted avg 0.90"
              f"\nmeasured:        micro {report.micro_f1:.2f} / macro {report.macro_f1:.2f}"
              f" / weighted {report.weighted_f1:.2f}"
              f"\nbest params: {grid_outcome.best_params}"
              f"\nconfidence threshold: {grid_outcome.best_threshold:.2f}"
              f"\ntest samples: {len(expected)} ({paper_split.n_unknown_test} unknown-class)")
    emit_table("table4_classification_report", table)
