"""Future-work extension — adding the ``ldd`` (shared-library) feature.

The paper's future work proposes "loading shared objects extracted
through the ldd command" as an additional fuzzy-hash feature.  This
benchmark evaluates exactly that: the classifier with the paper's three
features versus the classifier with the additional ``ssdeep-libs``
feature, under the identical split and threshold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import ThresholdRandomForest
from repro.core.reporting import render_table
from repro.features.extractors import EXTENDED_FEATURE_TYPES
from repro.features.pipeline import FeatureExtractionPipeline
from repro.features.similarity import SimilarityFeatureBuilder
from repro.ml.metrics import f1_score


@pytest.mark.benchmark(group="extension")
def test_extension_library_feature(benchmark, bench_config, corpus_samples,
                                   paper_split, grid_outcome, emit_table):
    pipeline = FeatureExtractionPipeline(EXTENDED_FEATURE_TYPES,
                                         n_jobs=bench_config.n_jobs)
    features = pipeline.extract_generated(corpus_samples)
    train_features = [features[i] for i in paper_split.train_indices]
    test_features = [features[i] for i in paper_split.test_indices]
    y_train = np.asarray(paper_split.train_labels, dtype=object)
    expected = paper_split.expected_test_labels
    n_estimators = max(40, bench_config.scale.n_estimators // 2)

    def evaluate(feature_types):
        builder = SimilarityFeatureBuilder(feature_types)
        train_matrix = builder.fit_transform(train_features, exclude_self=True)
        test_matrix = builder.transform(test_features)
        model = ThresholdRandomForest(
            n_estimators=n_estimators,
            confidence_threshold=grid_outcome.best_threshold,
            class_weight="balanced", random_state=bench_config.seed)
        model.fit(train_matrix.X, y_train)
        predictions = model.predict(test_matrix.X)
        return {
            "macro": f1_score(expected, predictions, average="macro"),
            "micro": f1_score(expected, predictions, average="micro"),
            "weighted": f1_score(expected, predictions, average="weighted"),
        }

    def run_both():
        return {
            "paper features (file, strings, symbols)": evaluate(
                ("ssdeep-file", "ssdeep-strings", "ssdeep-symbols")),
            "+ ssdeep-libs (ldd future work)": evaluate(EXTENDED_FEATURE_TYPES),
            "ssdeep-libs only": evaluate(("ssdeep-libs",)),
        }

    scores = benchmark.pedantic(run_both, rounds=1, iterations=1)

    baseline = scores["paper features (file, strings, symbols)"]
    extended = scores["+ ssdeep-libs (ldd future work)"]
    libs_only = scores["ssdeep-libs only"]

    # The library list alone cannot separate applications that link the
    # same stacks, so on its own it must be clearly weaker; added to the
    # paper's features it must not hurt substantially.
    assert libs_only["macro"] < baseline["macro"]
    assert extended["macro"] >= baseline["macro"] - 0.05

    rows = [(name, f"{s['macro']:.3f}", f"{s['micro']:.3f}", f"{s['weighted']:.3f}")
            for name, s in scores.items()]
    table = render_table(["feature set", "macro f1", "micro f1", "weighted f1"], rows,
                         title="Future-work extension: adding the ldd-based feature")
    table += ("\npaper reference (future work): 'Future work could study loading "
              "shared objects extracted through the ldd command'")
    emit_table("extension_library_feature", table)
