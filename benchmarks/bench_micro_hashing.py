"""Micro-benchmarks of the hashing substrate.

Not a paper table — these quantify the building blocks the pipeline's
throughput depends on: SSDeep digesting (with the vectorised rolling
hash), the scalar reference rolling hash, and digest comparison.
"""

from __future__ import annotations

import random

import pytest

from repro.features.extractors import FeatureExtractor
from repro.hashing.compare import compare_digests
from repro.hashing.rolling import RollingHash, rolling_hash_values
from repro.hashing.ssdeep import FuzzyHasher

_PAYLOAD_64K = random.Random(0).randbytes(64 * 1024)
_PAYLOAD_8K = random.Random(1).randbytes(8 * 1024)


@pytest.mark.benchmark(group="micro-hashing")
def test_fuzzy_hash_64k(benchmark):
    hasher = FuzzyHasher()
    digest = benchmark(lambda: hasher.hash(_PAYLOAD_64K))
    assert digest.chunk


@pytest.mark.benchmark(group="micro-hashing")
def test_fuzzy_hash_8k(benchmark):
    hasher = FuzzyHasher()
    digest = benchmark(lambda: hasher.hash(_PAYLOAD_8K))
    assert digest.chunk


@pytest.mark.benchmark(group="micro-hashing")
def test_rolling_hash_vectorised_64k(benchmark):
    values = benchmark(lambda: rolling_hash_values(_PAYLOAD_64K))
    assert values.shape == (len(_PAYLOAD_64K),)


@pytest.mark.benchmark(group="micro-hashing")
def test_rolling_hash_scalar_reference_8k(benchmark):
    def run():
        hasher = RollingHash()
        hasher.update_bytes(_PAYLOAD_8K)
        return hasher.value

    assert benchmark(run) >= 0


@pytest.mark.benchmark(group="micro-hashing")
def test_digest_comparison(benchmark):
    hasher = FuzzyHasher()
    a = str(hasher.hash(_PAYLOAD_64K))
    mutated = bytearray(_PAYLOAD_64K)
    mutated[1000:1100] = random.Random(2).randbytes(100)
    b = str(hasher.hash(bytes(mutated)))
    score = benchmark(lambda: compare_digests(a, b))
    assert score > 50


@pytest.mark.benchmark(group="micro-hashing")
def test_full_feature_extraction_one_binary(benchmark, corpus_samples):
    extractor = FeatureExtractor()
    sample = corpus_samples[0]
    features = benchmark(lambda: extractor.extract(sample.data, sample_id="x"))
    assert len(features.digests) == 3
