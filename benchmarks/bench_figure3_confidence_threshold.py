"""Figure 3 — f1-score over confidence threshold (grid search, training set).

The paper sweeps the confidence threshold during the grid search within
the training set and shows that the macro f1 decreases as the threshold
rises while the micro and weighted f1 stay high (because the many
unknown samples benefit from a stricter threshold, at the cost of every
other class).  This benchmark reproduces the sweep from the class-
holdout cross-validation used by the grid search, and additionally
verifies the same qualitative behaviour on the held-out test set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reporting import threshold_sweep_table
from repro.core.thresholds import DEFAULT_THRESHOLD_GRID, sweep_thresholds


@pytest.mark.benchmark(group="figure3")
def test_figure3_f1_over_confidence_threshold(benchmark, grid_outcome, fitted_model,
                                              similarity_matrices, paper_split,
                                              emit_table):
    # The sweep from the training-set grid search (what Figure 3 shows).
    training_sweep = grid_outcome.threshold_sweep

    # Re-evaluate the same sweep on the test set to check the behaviour
    # transfers; the timed part is one full sweep over the grid.
    _, _, test_matrix = similarity_matrices
    proba = fitted_model.predict_proba(test_matrix.X)
    expected = paper_split.expected_test_labels
    test_sweep = benchmark(lambda: sweep_thresholds(
        proba, fitted_model.classes_, expected,
        thresholds=DEFAULT_THRESHOLD_GRID))

    thresholds = [p.threshold for p in test_sweep.points]
    macro = np.array([p.macro_f1 for p in test_sweep.points])
    micro = np.array([p.micro_f1 for p in test_sweep.points])

    # Qualitative shape from the paper: beyond the selected threshold the
    # macro f1 falls off, while micro f1 stays comparatively high because
    # the large unknown class keeps being served well.
    top = macro.max()
    assert macro[-1] < top, "macro f1 must degrade at very high thresholds"
    assert micro[-1] >= macro[-1] - 0.05
    # A moderate threshold beats both extremes on the combined criterion.
    combined = [p.combined for p in test_sweep.points]
    best_index = int(np.argmax(combined))
    assert 0 < thresholds[best_index] < 0.95

    table = ("Training-set sweep (class-holdout CV, what the paper's Figure 3 shows):\n"
             + threshold_sweep_table(training_sweep)
             + "\n\nTest-set sweep (verification):\n"
             + threshold_sweep_table(test_sweep)
             + f"\n\nselected threshold (training set): {grid_outcome.best_threshold:.2f}"
             + "\npaper reference: macro f1 decreases with the threshold while micro and"
               " weighted f1 remain high; chosen threshold maximises their sum")
    emit_table("figure3_confidence_threshold", table)
