"""Benchmark: coalesced concurrent serving vs one-request-at-a-time.

The serving tier's performance claim is that request coalescing turns N
independent clients into shared micro-batches: one candidate-generation
sweep and one forest pass per batch instead of per request.  This
benchmark measures exactly that against a live
:class:`~repro.serving.server.ClassificationServer` over real HTTP:

* **sequential** — one client submits every payload as its own request,
  waiting for each response before sending the next (the
  no-coalescing-possible baseline: every request pays a full pass);
* **coalesced** — the same payloads split across ``--clients``
  concurrent threads (default 16), whose requests land in the bounded
  queue together and are drained as micro-batches;
* **multi-process scoring** (``--workers N``) — the same coalesced
  client load against a server whose :class:`ModelManager` runs
  ``score_workers=N`` forked scoring processes over a memory-mapped
  artifact (``mmap=True``): the coalescer's micro-batches are split
  into contiguous chunks and dispatched across the workers, which
  escapes the GIL for the CPU-bound scoring inner loop.  The
  acceptance criterion is >=2x the single-process coalesced
  throughput at ``--workers 4`` with 16 clients (on a machine with
  the cores to back it — see ``--min-worker-speedup``);
* decisions from **all** runs must be bit-identical to a direct
  :meth:`ClassificationService.classify_bytes` call on the same
  payloads (caches disabled everywhere, so nothing is served stale);
* the ``/metrics`` latency histogram is sanity-checked (complete
  counts, ordered quantiles).

Run directly (``python benchmarks/bench_serving.py``); ``--quick``
shrinks the corpus and request count for CI.  Exit status is non-zero
when the coalesced throughput falls below ``--min-speedup`` times the
sequential baseline (default 2x, the acceptance criterion at 16
clients), when ``--workers`` misses ``--min-worker-speedup``, or when
any decision diverges, so the script doubles as a regression tripwire;
``tests/test_serving_bench_smoke.py`` runs it as part of tier 1 and a
JSON trajectory is written to ``benchmarks/output/BENCH_serving.json``
for CI archiving.
"""

from __future__ import annotations

import argparse
import base64
import json
import random
import sys
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from http.client import HTTPConnection
from pathlib import Path

from repro.api.service import ClassificationService
from repro.config import default_config
from repro.corpus.builder import CorpusBuilder
from repro.features.pipeline import FeatureExtractionPipeline
from repro.serving import ClassificationServer, ServerConfig
from repro.serving.model_manager import ModelManager
from repro.serving.protocol import decision_to_dict

OUTPUT_DIR = Path(__file__).parent / "output"

PAYLOAD_BYTES = 4096


@dataclass(frozen=True)
class BenchResult:
    n_train: int
    n_requests: int
    n_clients: int
    n_estimators: int
    sequential_seconds: float
    coalesced_seconds: float
    batches_observed: int
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_count: int
    decisions_match: bool
    score_workers: int = 0
    worker_seconds: float = 0.0
    worker_batches: int = 0
    worker_decisions_match: bool = True

    @property
    def sequential_rps(self) -> float:
        return self.n_requests / self.sequential_seconds

    @property
    def coalesced_rps(self) -> float:
        return self.n_requests / self.coalesced_seconds

    @property
    def speedup(self) -> float:
        if self.coalesced_seconds <= 0:
            return float("inf")
        return self.sequential_seconds / self.coalesced_seconds

    @property
    def worker_rps(self) -> float:
        if self.worker_seconds <= 0:
            return 0.0
        return self.n_requests / self.worker_seconds

    @property
    def worker_speedup(self) -> float:
        """Multi-worker coalesced vs single-process coalesced."""

        if self.worker_seconds <= 0:
            return 0.0
        return self.coalesced_seconds / self.worker_seconds

    def table(self) -> str:
        lines = [
            f"model: {self.n_train} training samples, "
            f"{self.n_estimators} trees; {self.n_requests} requests of one "
            f"{PAYLOAD_BYTES}-byte executable each",
            f"{'serving mode':<44} {'total (s)':>10} {'req/s':>8}",
            f"{'sequential (1 client, no coalescing)':<44} "
            f"{self.sequential_seconds:>10.3f} {self.sequential_rps:>8.1f}",
            f"{f'coalesced ({self.n_clients} concurrent clients)':<44} "
            f"{self.coalesced_seconds:>10.3f} {self.coalesced_rps:>8.1f}",
            f"coalesced throughput speedup: {self.speedup:.2f}x "
            f"({self.batches_observed} batches drained)",
            f"request latency: p50 {self.latency_p50 * 1e3:.1f} ms, "
            f"p95 {self.latency_p95 * 1e3:.1f} ms, "
            f"p99 {self.latency_p99 * 1e3:.1f} ms "
            f"over {self.latency_count} requests",
            f"served decisions identical to direct classify_bytes: "
            f"{self.decisions_match}",
        ]
        if self.score_workers:
            label = (f"multi-process ({self.score_workers} scoring workers, "
                     f"{self.n_clients} clients)")
            lines[4:4] = [
                f"{label:<44} "
                f"{self.worker_seconds:>10.3f} {self.worker_rps:>8.1f}",
            ]
            lines.extend([
                f"multi-worker vs single-process coalesced speedup: "
                f"{self.worker_speedup:.2f}x "
                f"({self.worker_batches} worker micro-batches)",
                f"worker decisions identical to direct classify_bytes: "
                f"{self.worker_decisions_match}",
            ])
        return "\n".join(lines)


def _make_payloads(count: int, seed: int) -> list[tuple[str, bytes]]:
    """Distinct deterministic pseudo-executables (distinct digests)."""

    rng = random.Random(seed)
    return [(f"bench-{n}", bytes(rng.getrandbits(8)
                                 for _ in range(PAYLOAD_BYTES)))
            for n in range(count)]


def _post(connection: HTTPConnection, sample_id: str, data: bytes) -> dict:
    body = json.dumps({"items": [
        {"id": sample_id, "data": base64.b64encode(data).decode("ascii")}]})
    connection.request("POST", "/classify", body,
                       {"Content-Type": "application/json"})
    response = connection.getresponse()
    payload = json.loads(response.read())
    if response.status != 200:
        raise RuntimeError(f"serving request failed: {response.status} "
                           f"{payload}")
    return payload["decisions"][0]


def _get_json(port: int, path: str) -> dict:
    connection = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def _coalesced_run(port: int, payloads: list, n_clients: int
                   ) -> tuple[dict, float]:
    """The same payloads from ``n_clients`` concurrent threads."""

    results: dict[str, dict] = {}
    errors: list = []
    lock = threading.Lock()
    shares = [payloads[i::n_clients] for i in range(n_clients)]

    def client(share):
        try:
            mine = HTTPConnection("127.0.0.1", port, timeout=120)
            collected = {}
            for sample_id, data in share:
                collected[sample_id] = _post(mine, sample_id, data)
            mine.close()
            with lock:
                results.update(collected)
        except Exception as exc:  # noqa: BLE001 — report, don't hang
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(share,))
               for share in shares]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"coalesced run failed: {errors[0]}")
    return results, seconds


def run(n_estimators: int, n_requests: int, n_clients: int,
        seed: int = 11, score_workers: int = 0) -> BenchResult:
    config = default_config("small", seed=seed)

    # Setup (untimed): train in memory, publish the artifact once —
    # the server cold start PRs 2-4 already optimised is not under test
    # here, the steady-state request path is.
    samples = CorpusBuilder(config=config).build_samples()
    features = FeatureExtractionPipeline().extract_generated(samples)
    service = ClassificationService.train(
        features, n_estimators=n_estimators, random_state=seed,
        confidence_threshold=0.5)
    payloads = _make_payloads(n_requests, seed)

    with tempfile.TemporaryDirectory(prefix="repro-bench-serving-") as tmp:
        model_path = Path(tmp) / "model.rpm"
        service.save(model_path)
        # Caches off on every path: each request must pay real scoring,
        # otherwise the LRU would serve the coalesced run from the
        # sequential run's work and inflate the speedup.
        reference = ClassificationService.load(model_path, cache_size=0)
        expected = {sid: decision_to_dict(d) for (sid, _), d in zip(
            payloads, reference.classify_bytes(payloads))}
        manager = ModelManager(model_path, poll_interval=0, cache_size=0)
        server = ClassificationServer(
            manager,
            ServerConfig(port=0, workers=2, max_batch=max(32, n_clients),
                         queue_depth=4096)).start()
        try:
            port = server.port

            # Warmup: first contact pays lazy per-process init (module
            # LRUs, thread spin-up) that neither mode should be charged.
            warm = HTTPConnection("127.0.0.1", port, timeout=60)
            _post(warm, "warmup-0", payloads[0][1])
            warm.close()

            # Sequential baseline: one client, one request at a time.
            sequential: dict[str, dict] = {}
            connection = HTTPConnection("127.0.0.1", port, timeout=120)
            start = time.perf_counter()
            for sample_id, data in payloads:
                sequential[sample_id] = _post(connection, sample_id, data)
            sequential_seconds = time.perf_counter() - start
            connection.close()

            # Coalesced: the same payloads from n_clients threads.
            coalesced, coalesced_seconds = _coalesced_run(
                port, payloads, n_clients)

            metrics = _get_json(port, "/metrics")
        finally:
            server.shutdown()

        # Multi-process scoring: the same coalesced load against a
        # fresh server whose manager forked score_workers scoring
        # processes over the memory-mapped artifact.
        worker_seconds = 0.0
        worker_batches = 0
        worker_decisions_match = True
        if score_workers:
            worker_manager = ModelManager(model_path, poll_interval=0,
                                          cache_size=0, mmap=True,
                                          score_workers=score_workers)
            worker_server = ClassificationServer(
                worker_manager,
                ServerConfig(port=0, workers=2,
                             max_batch=max(32, n_clients),
                             queue_depth=4096)).start()
            try:
                warm = HTTPConnection("127.0.0.1", worker_server.port,
                                      timeout=60)
                _post(warm, "warmup-1", payloads[0][1])
                warm.close()
                worker_results, worker_seconds = _coalesced_run(
                    worker_server.port, payloads, n_clients)
                worker_metrics = _get_json(worker_server.port, "/metrics")
                worker_batches = int(
                    worker_metrics["scoring_workers"]["batches_total"])
                worker_decisions_match = (worker_results == expected)
            finally:
                worker_server.shutdown()

    latency = metrics["request_latency_seconds"]
    decisions_match = (sequential == expected and coalesced == expected)
    return BenchResult(
        n_train=len(features),
        n_requests=n_requests,
        n_clients=n_clients,
        n_estimators=n_estimators,
        sequential_seconds=sequential_seconds,
        coalesced_seconds=coalesced_seconds,
        batches_observed=int(metrics["batches_total"]),
        latency_p50=float(latency["p50"]),
        latency_p95=float(latency["p95"]),
        latency_p99=float(latency["p99"]),
        latency_count=int(latency["count"]),
        decisions_match=decisions_match,
        score_workers=score_workers,
        worker_seconds=worker_seconds,
        worker_batches=worker_batches,
        worker_decisions_match=worker_decisions_match,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--estimators", type=int, default=60,
                        help="forest size (default 60)")
    parser.add_argument("--requests", type=int, default=None,
                        help="total requests per mode (default 96, quick 48)")
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent clients in the coalesced run "
                             "(default 16, the acceptance configuration)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail (exit 1) below this coalesced-vs-"
                             "sequential throughput speedup (0 disables)")
    parser.add_argument("--workers", type=int, default=0,
                        help="also measure score_workers=N multi-process "
                             "scoring over the mmap-loaded artifact "
                             "(0 disables; the acceptance configuration "
                             "is --workers 4 with 16 clients)")
    parser.add_argument("--min-worker-speedup", type=float, default=2.0,
                        help="with --workers, fail (exit 1) below this "
                             "multi-worker-vs-single-process coalesced "
                             "speedup (0 disables; needs the cores to "
                             "back it — scoring is CPU-bound, so a "
                             "1-core machine cannot clear any floor >1)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller request count for CI smoke runs")
    args = parser.parse_args(argv)

    n_requests = (args.requests if args.requests
                  else (48 if args.quick else 96))
    result = run(args.estimators, n_requests, args.clients,
                 score_workers=args.workers)

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "bench_serving.txt"
    out.write_text(result.table() + "\n", encoding="utf-8")
    trajectory = dict(asdict(result),
                      sequential_rps=result.sequential_rps,
                      coalesced_rps=result.coalesced_rps,
                      speedup=result.speedup,
                      worker_rps=result.worker_rps,
                      worker_speedup=result.worker_speedup)
    (OUTPUT_DIR / "BENCH_serving.json").write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(result.table())
    print(f"(written to {out} and BENCH_serving.json)")

    if not result.decisions_match:
        print("FAIL: served decisions diverge from direct classify_bytes",
              file=sys.stderr)
        return 1
    if result.latency_count < 2 * n_requests:
        print(f"FAIL: latency histogram saw {result.latency_count} requests, "
              f"expected at least {2 * n_requests}", file=sys.stderr)
        return 1
    if not (result.latency_p50 <= result.latency_p95 <= result.latency_p99):
        print("FAIL: latency quantiles are not ordered", file=sys.stderr)
        return 1
    if args.min_speedup and result.speedup < args.min_speedup:
        print(f"FAIL: coalesced speedup {result.speedup:.2f}x is below the "
              f"{args.min_speedup:.1f}x floor", file=sys.stderr)
        return 1
    if args.workers:
        if not result.worker_decisions_match:
            print("FAIL: multi-worker decisions diverge from direct "
                  "classify_bytes", file=sys.stderr)
            return 1
        if result.worker_batches < 1:
            print("FAIL: the scoring worker pool drained no micro-batches",
                  file=sys.stderr)
            return 1
        if args.min_worker_speedup and \
                result.worker_speedup < args.min_worker_speedup:
            print(f"FAIL: multi-worker speedup {result.worker_speedup:.2f}x "
                  f"is below the {args.min_worker_speedup:.1f}x floor",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
