"""Benchmark: model-artifact cold start vs retrain-per-process.

Before the ``repro.api`` facade a trained ``FuzzyHashClassifier`` could
not be persisted, so every serving process (and every ``repro
classify`` invocation) re-trained from the software tree before
answering its first query.  This benchmark quantifies what
``save_model``/``load_model`` buys on the ``small`` corpus preset:

* **retrain** — cold start the old way (what ``repro classify TREE
  TARGET`` did on every invocation): scan the on-disk software tree,
  re-hash every training executable, fit the classifier, then classify
  a 50-record batch;
* **load** — cold start from a saved ``model.rpm`` artifact
  (:func:`repro.api.load_model`), then classify the same batch;
* the two paths must produce **identical decisions** — the artifact
  round-trip is bit-exact by design and this benchmark enforces it.

Run directly (``python benchmarks/bench_model_load.py``; the whole run
takes a few seconds, so there is no separate quick mode).  Exit status
is non-zero when the cold-start speedup falls below ``--min-speedup``
(default 10x) or when the decision sets diverge, so the script doubles
as a regression tripwire; ``tests/test_model_bench_smoke.py`` runs it
as part of tier 1.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.api.service import ClassificationService
from repro.config import default_config
from repro.corpus.builder import CorpusBuilder
from repro.corpus.scanner import CorpusScanner
from repro.features.pipeline import FeatureExtractionPipeline

OUTPUT_DIR = Path(__file__).parent / "output"

BATCH_SIZE = 50


@dataclass(frozen=True)
class BenchResult:
    n_train: int
    n_batch: int
    n_estimators: int
    retrain_seconds: float
    load_seconds: float
    save_seconds: float
    file_bytes: int
    decisions_match: bool

    @property
    def speedup(self) -> float:
        if self.load_seconds <= 0:
            return float("inf")
        return self.retrain_seconds / self.load_seconds

    def table(self) -> str:
        lines = [
            f"corpus: small preset, {self.n_train} training samples, "
            f"{self.n_estimators} trees, {self.n_batch}-record batch",
            f"{'cold-start path':<40} {'total (s)':>10}",
            f"{'scan tree + retrain + classify batch':<40} "
            f"{self.retrain_seconds:>10.3f}",
            f"{'load model.rpm + classify batch':<40} "
            f"{self.load_seconds:>10.3f}",
            f"one-time save: {self.save_seconds * 1e3:.1f} ms, "
            f"artifact size: {self.file_bytes} bytes",
            f"cold-start speedup (retrain / load): {self.speedup:.1f}x",
            f"loaded decisions identical to retrained: {self.decisions_match}",
        ]
        return "\n".join(lines)


def run(n_estimators: int, seed: int = 11, repeats: int = 3) -> BenchResult:
    config = default_config("small", seed=seed)
    train_params = dict(n_estimators=n_estimators, random_state=seed,
                        confidence_threshold=0.5)

    with tempfile.TemporaryDirectory(prefix="repro-bench-model-") as tmp:
        # Setup (untimed): the software tree exists on every production
        # cluster; the query batch is pre-extracted because both paths
        # classify the same records.
        tree = Path(tmp) / "software"
        CorpusBuilder(config=config).materialize_tree(tree)
        batch_features = FeatureExtractionPipeline().extract_dataset(
            CorpusScanner(tree).scan().dataset)
        batch = (batch_features
                 * ((BATCH_SIZE // len(batch_features)) + 1))[:BATCH_SIZE]

        # Retrain-per-process path (the only option before repro.api):
        # every cold start re-scans and re-hashes the whole training
        # tree before fitting — this is what `repro classify TREE ...`
        # paid on each invocation.  Both paths take the best of
        # ``repeats`` trials so a scheduler hiccup cannot flip the
        # regression tripwire.
        retrain_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            train_features = FeatureExtractionPipeline().extract_dataset(
                CorpusScanner(tree).scan().dataset)
            retrained = ClassificationService.train(train_features,
                                                    **train_params)
            retrain_decisions = retrained.classify_features(batch)
            retrain_seconds = min(retrain_seconds,
                                  time.perf_counter() - start)

        model_path = Path(tmp) / "model.rpm"
        start = time.perf_counter()
        retrained.save(model_path)
        save_seconds = time.perf_counter() - start
        file_bytes = model_path.stat().st_size

        # Artifact cold-start path.
        load_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            loaded = ClassificationService.load(model_path)
            load_decisions = loaded.classify_features(batch)
            load_seconds = min(load_seconds, time.perf_counter() - start)

        n_train = len(train_features)

    return BenchResult(
        n_train=n_train,
        n_batch=len(batch),
        n_estimators=n_estimators,
        retrain_seconds=retrain_seconds,
        load_seconds=load_seconds,
        save_seconds=save_seconds,
        file_bytes=file_bytes,
        decisions_match=(retrain_decisions == load_decisions),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--estimators", type=int, default=100,
                        help="forest size (default 100, the classifier's "
                             "own default — what `repro classify` retrained "
                             "with)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail (exit 1) below this cold-start speedup")
    parser.add_argument("--repeats", type=int, default=3,
                        help="trials per path; the best is reported")
    args = parser.parse_args(argv)

    result = run(args.estimators, repeats=args.repeats)

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "bench_model_load.txt"
    out.write_text(result.table() + "\n", encoding="utf-8")
    print(result.table())
    print(f"(written to {out})")

    if not result.decisions_match:
        print("FAIL: loaded-model decisions diverge from the retrain path",
              file=sys.stderr)
        return 1
    if result.speedup < args.min_speedup:
        print(f"FAIL: cold-start speedup {result.speedup:.1f}x is below the "
              f"{args.min_speedup:.1f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
