"""Benchmark: model-artifact cold start vs retrain-per-process.

Before the ``repro.api`` facade a trained ``FuzzyHashClassifier`` could
not be persisted, so every serving process (and every ``repro
classify`` invocation) re-trained from the software tree before
answering its first query.  This benchmark quantifies what
``save_model``/``load_model`` buys on the ``small`` corpus preset:

* **retrain** — cold start the old way (what ``repro classify TREE
  TARGET`` did on every invocation): scan the on-disk software tree,
  re-hash every training executable, fit the classifier, then classify
  a 50-record batch;
* **load** — cold start from a saved ``model.rpm`` artifact
  (:func:`repro.api.load_model`), then classify the same batch;
* the two paths must produce **identical decisions** — the artifact
  round-trip is bit-exact by design and this benchmark enforces it.

Since format v4 the artifact supports a **zero-copy mmap load mode**
(``mmap_mode="r"`` / ``ClassificationService.load(..., mmap=True)``),
and this benchmark also quantifies that:

* **raw container read** — ``read_container`` eager (stream every
  payload into fresh arrays) vs mapped (parse the header, map the file
  once, return views) on a synthetic multi-megabyte container.  The
  mapped path is O(header), so the speedup grows with payload size;
  the ``--min-mmap-speedup`` floor (default 20x at the default 32 MiB
  payload) is the acceptance criterion and is CI-enforced;
* **service cold start** — ``ClassificationService.load`` eager vs
  ``mmap=True`` on a real trained artifact, with **bit-identical
  decisions** enforced on a classification batch (reported, not
  floored: on small models fixed Python costs dominate, so the raw
  container read is where the floor lives);
* **legacy compatibility** — the same arrays re-emitted as an
  unpadded pre-v4 file must load bit-identically through the eager
  path and through the ``mmap_mode="r"`` materialising fallback.

Run directly (``python benchmarks/bench_model_load.py``; ``--quick``
shrinks the synthetic payload for CI smoke runs).  Exit status is
non-zero when any speedup floor is missed or any bit-identity check
fails, so the script doubles as a regression tripwire;
``tests/test_model_bench_smoke.py`` and
``tests/test_mmap_bench_smoke.py`` run it as part of tier 1, and a
JSON trajectory is written to ``benchmarks/output/BENCH_mmap_load.json``
for CI archiving.
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.api.service import ClassificationService
from repro.config import default_config
from repro.corpus.builder import CorpusBuilder
from repro.corpus.scanner import CorpusScanner
from repro.features.pipeline import FeatureExtractionPipeline
from repro.index.storage import read_container, write_container

OUTPUT_DIR = Path(__file__).parent / "output"

BATCH_SIZE = 50


@dataclass(frozen=True)
class BenchResult:
    n_train: int
    n_batch: int
    n_estimators: int
    retrain_seconds: float
    load_seconds: float
    save_seconds: float
    file_bytes: int
    decisions_match: bool

    @property
    def speedup(self) -> float:
        if self.load_seconds <= 0:
            return float("inf")
        return self.retrain_seconds / self.load_seconds

    def table(self) -> str:
        lines = [
            f"corpus: small preset, {self.n_train} training samples, "
            f"{self.n_estimators} trees, {self.n_batch}-record batch",
            f"{'cold-start path':<40} {'total (s)':>10}",
            f"{'scan tree + retrain + classify batch':<40} "
            f"{self.retrain_seconds:>10.3f}",
            f"{'load model.rpm + classify batch':<40} "
            f"{self.load_seconds:>10.3f}",
            f"one-time save: {self.save_seconds * 1e3:.1f} ms, "
            f"artifact size: {self.file_bytes} bytes",
            f"cold-start speedup (retrain / load): {self.speedup:.1f}x",
            f"loaded decisions identical to retrained: {self.decisions_match}",
        ]
        return "\n".join(lines)


def run(n_estimators: int, seed: int = 11, repeats: int = 3) -> BenchResult:
    config = default_config("small", seed=seed)
    train_params = dict(n_estimators=n_estimators, random_state=seed,
                        confidence_threshold=0.5)

    with tempfile.TemporaryDirectory(prefix="repro-bench-model-") as tmp:
        # Setup (untimed): the software tree exists on every production
        # cluster; the query batch is pre-extracted because both paths
        # classify the same records.
        tree = Path(tmp) / "software"
        CorpusBuilder(config=config).materialize_tree(tree)
        batch_features = FeatureExtractionPipeline().extract_dataset(
            CorpusScanner(tree).scan().dataset)
        batch = (batch_features
                 * ((BATCH_SIZE // len(batch_features)) + 1))[:BATCH_SIZE]

        # Retrain-per-process path (the only option before repro.api):
        # every cold start re-scans and re-hashes the whole training
        # tree before fitting — this is what `repro classify TREE ...`
        # paid on each invocation.  Both paths take the best of
        # ``repeats`` trials so a scheduler hiccup cannot flip the
        # regression tripwire.
        retrain_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            train_features = FeatureExtractionPipeline().extract_dataset(
                CorpusScanner(tree).scan().dataset)
            retrained = ClassificationService.train(train_features,
                                                    **train_params)
            retrain_decisions = retrained.classify_features(batch)
            retrain_seconds = min(retrain_seconds,
                                  time.perf_counter() - start)

        model_path = Path(tmp) / "model.rpm"
        start = time.perf_counter()
        retrained.save(model_path)
        save_seconds = time.perf_counter() - start
        file_bytes = model_path.stat().st_size

        # Artifact cold-start path.
        load_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            loaded = ClassificationService.load(model_path)
            load_decisions = loaded.classify_features(batch)
            load_seconds = min(load_seconds, time.perf_counter() - start)

        n_train = len(train_features)

    return BenchResult(
        n_train=n_train,
        n_batch=len(batch),
        n_estimators=n_estimators,
        retrain_seconds=retrain_seconds,
        load_seconds=load_seconds,
        save_seconds=save_seconds,
        file_bytes=file_bytes,
        decisions_match=(retrain_decisions == load_decisions),
    )


@dataclass(frozen=True)
class MmapBenchResult:
    payload_bytes: int
    n_arrays: int
    eager_read_seconds: float
    mmap_read_seconds: float
    service_eager_seconds: float
    service_mmap_seconds: float
    raw_arrays_match: bool
    legacy_arrays_match: bool
    decisions_match: bool

    @property
    def raw_speedup(self) -> float:
        if self.mmap_read_seconds <= 0:
            return float("inf")
        return self.eager_read_seconds / self.mmap_read_seconds

    @property
    def service_speedup(self) -> float:
        if self.service_mmap_seconds <= 0:
            return float("inf")
        return self.service_eager_seconds / self.service_mmap_seconds

    def table(self) -> str:
        mib = self.payload_bytes / (1024 * 1024)
        mapped_label = 'mmap_mode="r" (map, return views)'
        lines = [
            f"container: {mib:.0f} MiB payload across {self.n_arrays} "
            f"arrays (v4 aligned layout)",
            f"{'read_container path':<40} {'total (s)':>10}",
            f"{'eager (stream payloads into memory)':<40} "
            f"{self.eager_read_seconds:>10.4f}",
            f"{mapped_label:<40} "
            f"{self.mmap_read_seconds:>10.4f}",
            f"raw container-read speedup (eager / mmap): "
            f"{self.raw_speedup:.1f}x",
            f"service cold start: eager {self.service_eager_seconds:.3f} s, "
            f"mmap {self.service_mmap_seconds:.3f} s "
            f"({self.service_speedup:.1f}x, reported only — fixed Python "
            f"costs dominate on small models)",
            f"mapped arrays bit-identical to eager: {self.raw_arrays_match}",
            f"legacy (unpadded pre-v4) file loads bit-identically: "
            f"{self.legacy_arrays_match}",
            f"mmap-loaded decisions identical to eager: "
            f"{self.decisions_match}",
        ]
        return "\n".join(lines)


def _synthetic_arrays(payload_bytes: int, seed: int) -> dict:
    """A container-shaped payload: a few large arrays of mixed dtypes."""

    rng = np.random.default_rng(seed)
    quarter = payload_bytes // 4
    return {
        "offsets": np.cumsum(rng.integers(1, 9, size=quarter // 8)
                             ).astype("<i8"),
        "signatures": rng.integers(0, 256, size=quarter).astype("|u1"),
        "vectors": rng.integers(0, 2**63, size=(quarter // 32, 4)
                                ).astype("<u8"),
        "scores": rng.integers(0, 100, size=quarter // 2).astype("<i2"),
    }


def _downgrade_to_unpadded(path: Path, out_path: Path) -> Path:
    """Re-emit a v4 container as an unpadded pre-v4 file (version 3)."""

    preamble = struct.Struct("<8sIQ")
    data = path.read_bytes()
    magic, _version, header_len = preamble.unpack_from(data)
    header = json.loads(data[preamble.size:preamble.size + header_len])
    align = header.pop("payload_alignment")
    header["format_version"] = 3
    new_header = json.dumps(header, separators=(",", ":"),
                            sort_keys=True).encode("utf-8")
    out = bytearray(preamble.pack(magic, 3, len(new_header))) + new_header
    offset = preamble.size + header_len
    for descriptor in header["arrays"]:
        offset += -offset % align
        n_bytes = np.dtype(descriptor["dtype"]).itemsize * int(
            np.prod(descriptor["shape"], dtype=np.int64))
        out += data[offset:offset + n_bytes]
        offset += n_bytes
    out_path.write_bytes(bytes(out))
    return out_path


def _arrays_equal(left: dict, right: dict) -> bool:
    return set(left) == set(right) and all(
        np.array_equal(left[name], right[name]) for name in left)


def run_mmap(payload_bytes: int, n_estimators: int, seed: int = 11,
             repeats: int = 5) -> MmapBenchResult:
    arrays = _synthetic_arrays(payload_bytes, seed)

    with tempfile.TemporaryDirectory(prefix="repro-bench-mmap-") as tmp:
        container = write_container(Path(tmp) / "payload.rpsi",
                                    {"bench": "mmap"}, arrays)
        # Warm the page cache once so both paths read from memory — the
        # comparison is copy-vs-map, not disk-vs-disk.
        container.read_bytes()

        eager_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            _header, eager = read_container(container)
            eager_seconds = min(eager_seconds, time.perf_counter() - start)

        mmap_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            _header, mapped = read_container(container, mmap_mode="r")
            mmap_seconds = min(mmap_seconds, time.perf_counter() - start)

        raw_match = _arrays_equal(eager, mapped) and _arrays_equal(
            mapped, arrays)

        legacy = _downgrade_to_unpadded(container, Path(tmp) / "legacy.rpsi")
        _header, legacy_eager = read_container(legacy)
        _header, legacy_fallback = read_container(legacy, mmap_mode="r")
        legacy_match = _arrays_equal(legacy_eager, arrays) and \
            _arrays_equal(legacy_fallback, arrays)
        del eager, mapped, legacy_eager, legacy_fallback

        # Service-level cold start on a real trained artifact.
        config = default_config("small", seed=seed)
        tree = Path(tmp) / "software"
        CorpusBuilder(config=config).materialize_tree(tree)
        features = FeatureExtractionPipeline().extract_dataset(
            CorpusScanner(tree).scan().dataset)
        service = ClassificationService.train(
            features, n_estimators=n_estimators, random_state=seed,
            confidence_threshold=0.5)
        model_path = Path(tmp) / "model.rpm"
        service.save(model_path)
        batch = (features * ((BATCH_SIZE // len(features)) + 1))[:BATCH_SIZE]

        service_eager_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            loaded_eager = ClassificationService.load(model_path)
            service_eager_seconds = min(service_eager_seconds,
                                        time.perf_counter() - start)
        service_mmap_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            loaded_mmap = ClassificationService.load(model_path, mmap=True)
            service_mmap_seconds = min(service_mmap_seconds,
                                       time.perf_counter() - start)
        decisions_match = (loaded_eager.classify_features(batch) ==
                           loaded_mmap.classify_features(batch))

    return MmapBenchResult(
        payload_bytes=payload_bytes,
        n_arrays=len(arrays),
        eager_read_seconds=eager_seconds,
        mmap_read_seconds=mmap_seconds,
        service_eager_seconds=service_eager_seconds,
        service_mmap_seconds=service_mmap_seconds,
        raw_arrays_match=raw_match,
        legacy_arrays_match=legacy_match,
        decisions_match=decisions_match,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--estimators", type=int, default=100,
                        help="forest size (default 100, the classifier's "
                             "own default — what `repro classify` retrained "
                             "with)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail (exit 1) below this cold-start speedup")
    parser.add_argument("--min-mmap-speedup", type=float, default=20.0,
                        help="fail (exit 1) below this raw container-read "
                             "eager-vs-mmap speedup (0 disables)")
    parser.add_argument("--payload-mb", type=int, default=None,
                        help="synthetic container payload in MiB "
                             "(default 32, quick 8)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="trials per path; the best is reported")
    parser.add_argument("--quick", action="store_true",
                        help="smaller synthetic payload and forest for CI "
                             "smoke runs")
    args = parser.parse_args(argv)

    payload_mb = (args.payload_mb if args.payload_mb
                  else (8 if args.quick else 32))
    mmap_estimators = min(args.estimators, 30) if args.quick \
        else args.estimators

    result = run(args.estimators, repeats=args.repeats)
    mmap_result = run_mmap(payload_mb * 1024 * 1024, mmap_estimators,
                           repeats=max(args.repeats, 5))

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "bench_model_load.txt"
    out.write_text(result.table() + "\n\n" + mmap_result.table() + "\n",
                   encoding="utf-8")
    trajectory = dict(asdict(mmap_result),
                      raw_speedup=mmap_result.raw_speedup,
                      service_speedup=mmap_result.service_speedup,
                      cold_start_speedup=result.speedup)
    (OUTPUT_DIR / "BENCH_mmap_load.json").write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(result.table())
    print()
    print(mmap_result.table())
    print(f"(written to {out} and BENCH_mmap_load.json)")

    if not result.decisions_match:
        print("FAIL: loaded-model decisions diverge from the retrain path",
              file=sys.stderr)
        return 1
    if result.speedup < args.min_speedup:
        print(f"FAIL: cold-start speedup {result.speedup:.1f}x is below the "
              f"{args.min_speedup:.1f}x floor", file=sys.stderr)
        return 1
    if not mmap_result.raw_arrays_match:
        print("FAIL: mapped arrays diverge from the eager read",
              file=sys.stderr)
        return 1
    if not mmap_result.legacy_arrays_match:
        print("FAIL: legacy unpadded container no longer loads "
              "bit-identically", file=sys.stderr)
        return 1
    if not mmap_result.decisions_match:
        print("FAIL: mmap-loaded decisions diverge from the eager load",
              file=sys.stderr)
        return 1
    if args.min_mmap_speedup and \
            mmap_result.raw_speedup < args.min_mmap_speedup:
        print(f"FAIL: container-read mmap speedup "
              f"{mmap_result.raw_speedup:.1f}x is below the "
              f"{args.min_mmap_speedup:.1f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
