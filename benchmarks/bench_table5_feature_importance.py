"""Table 5 — normalised feature importance per fuzzy-hash type.

The paper reports ssdeep-symbols 0.7879, ssdeep-strings 0.1404,
ssdeep-file 0.0718: the symbol-table hash dominates, the raw-content
hash matters least.  This benchmark aggregates the fitted forest's Gini
importances per hash type and checks that ordering.
"""

from __future__ import annotations

import pytest

from repro.analysis.importance import group_importances, importance_by_class
from repro.core.reporting import feature_importance_table, render_table


@pytest.mark.benchmark(group="table5")
def test_table5_feature_importance(benchmark, fitted_model, similarity_matrices,
                                   emit_table):
    _, train_matrix, _ = similarity_matrices

    grouped = benchmark(lambda: group_importances(
        fitted_model.feature_importances_, train_matrix.feature_groups))

    assert sum(grouped.values()) == pytest.approx(1.0)
    # The paper's ordering: symbols >> strings > raw file content.
    assert grouped["ssdeep-symbols"] > grouped["ssdeep-strings"]
    assert grouped["ssdeep-strings"] > grouped["ssdeep-file"]
    assert grouped["ssdeep-symbols"] > 0.4

    table = feature_importance_table(grouped)
    table += ("\n\npaper reference: ssdeep-file 0.0718, ssdeep-strings 0.1404, "
              "ssdeep-symbols 0.7879")
    top_columns = importance_by_class(fitted_model.feature_importances_,
                                      train_matrix.feature_names, top=10)
    table += "\n\n" + render_table(
        ["column (type|class)", "importance"],
        [(name, f"{value:.4f}") for name, value in top_columns],
        title="Most important individual columns")
    emit_table("table5_feature_importance", table)
