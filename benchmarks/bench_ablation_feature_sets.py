"""Ablation — classification quality per fuzzy-hash feature set.

The paper's Table 5 implies (and its discussion argues) that the symbol
hash carries most of the signal.  This ablation trains the thresholded
Random Forest on each individual feature type and on the full feature
set, under the identical split, and compares macro f1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import ThresholdRandomForest
from repro.core.reporting import render_table
from repro.ml.metrics import f1_score


def _fit_on_columns(X_train, y_train, X_test, columns, *, threshold, seed, n_estimators):
    model = ThresholdRandomForest(
        n_estimators=n_estimators, confidence_threshold=threshold,
        class_weight="balanced", random_state=seed)
    model.fit(X_train[:, columns], y_train)
    return model.predict(X_test[:, columns])


@pytest.mark.benchmark(group="ablation")
def test_ablation_feature_sets(benchmark, bench_config, similarity_matrices,
                               paper_split, grid_outcome, emit_table):
    _, train_matrix, test_matrix = similarity_matrices
    y_train = np.asarray(paper_split.train_labels, dtype=object)
    expected = paper_split.expected_test_labels
    threshold = grid_outcome.best_threshold
    n_estimators = max(40, bench_config.scale.n_estimators // 2)

    variants = {name: idx for name, idx in train_matrix.feature_groups.items()}
    variants["all three features"] = list(range(train_matrix.n_features))

    scores: dict[str, float] = {}

    def run_all_variants():
        for name, columns in variants.items():
            predictions = _fit_on_columns(
                train_matrix.X, y_train, test_matrix.X, columns,
                threshold=threshold, seed=bench_config.seed,
                n_estimators=n_estimators)
            scores[name] = f1_score(expected, predictions, average="macro")
        return scores

    benchmark.pedantic(run_all_variants, rounds=1, iterations=1)

    # The paper's qualitative claims: symbols alone are the strongest
    # single feature; the raw file hash alone is the weakest; combining
    # all three is at least as good as the strongest single feature
    # (within a small tolerance for forest randomness).
    assert scores["ssdeep-symbols"] > scores["ssdeep-file"]
    assert scores["all three features"] >= scores["ssdeep-symbols"] - 0.03
    assert scores["all three features"] >= scores["ssdeep-file"]

    table = render_table(
        ["feature set", "macro f1"],
        [(name, f"{score:.3f}") for name, score in sorted(
            scores.items(), key=lambda kv: -kv[1])],
        title="Ablation: macro f1 by feature set (same split and threshold)")
    table += ("\npaper reference: feature importance ssdeep-symbols 0.79 >> "
              "ssdeep-strings 0.14 > ssdeep-file 0.07")
    emit_table("ablation_feature_sets", table)
