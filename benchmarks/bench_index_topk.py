"""Benchmark: prebuilt SimilarityIndex top-k queries vs per-call rebuild.

The seed code rebuilt its candidate structures (digest expansion plus the
7-gram inverted index) from scratch every time a builder was fitted; a
service answering similarity queries that way pays the full indexing cost
on every call.  This benchmark quantifies what the persistent
:class:`repro.index.SimilarityIndex` buys on a ~1k-digest corpus:

* **rebuild** — for every query, construct a fresh index over the corpus
  and answer one ``top_k`` (the rebuild-every-time pattern);
* **prebuilt** — build the index once, answer every query against it;
* **reload** — save the index, load it back, and verify the reloaded
  index returns identical results (persistence round-trip).

Run directly (``python benchmarks/bench_index_topk.py``, add ``--quick``
for the small CI-friendly configuration).  Exit status is non-zero when
the measured speedup falls below ``--min-speedup`` (default 5x), so the
script doubles as a perf-regression tripwire; ``scripts/smoke_index_bench.sh``
and the tier-1 smoke test run it in ``--quick`` mode.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.hashing.ssdeep import fuzzy_hash
from repro.index import SimilarityIndex

OUTPUT_DIR = Path(__file__).parent / "output"

FEATURE_TYPE = "ssdeep-file"


@dataclass(frozen=True)
class BenchResult:
    n_corpus: int
    n_queries: int
    k: int
    build_seconds: float
    rebuild_seconds: float
    prebuilt_seconds: float
    reload_seconds: float
    file_bytes: int
    results_match: bool

    @property
    def speedup(self) -> float:
        if self.prebuilt_seconds <= 0:
            return float("inf")
        return self.rebuild_seconds / self.prebuilt_seconds

    def table(self) -> str:
        per_rebuild = self.rebuild_seconds / self.n_queries * 1e3
        per_prebuilt = self.prebuilt_seconds / self.n_queries * 1e3
        lines = [
            f"corpus: {self.n_corpus} digests, {self.n_queries} queries, "
            f"k={self.k}",
            f"{'path':<28} {'total (s)':>10} {'per query (ms)':>15}",
            f"{'rebuild index per query':<28} {self.rebuild_seconds:>10.3f} "
            f"{per_rebuild:>15.3f}",
            f"{'prebuilt index':<28} {self.prebuilt_seconds:>10.3f} "
            f"{per_prebuilt:>15.3f}",
            f"one-time index build: {self.build_seconds * 1e3:.1f} ms, "
            f"save+load round-trip: {self.reload_seconds * 1e3:.1f} ms, "
            f"file size: {self.file_bytes} bytes",
            f"speedup (rebuild / prebuilt): {self.speedup:.1f}x",
            f"reloaded index matches in-memory results: {self.results_match}",
        ]
        return "\n".join(lines)


def make_corpus(n: int, seed: int = 20240924,
                n_families: int = 24) -> list[tuple[str, dict[str, str], str]]:
    """Synthetic digest corpus: ``n`` members across mutated families."""

    rnd = random.Random(seed)
    bases = [rnd.randbytes(3000 + rnd.randrange(2000))
             for _ in range(n_families)]
    members = []
    for i in range(n):
        family = i % n_families
        blob = bytearray(bases[family])
        for _ in range(rnd.randrange(1, 40)):
            blob[rnd.randrange(len(blob))] = rnd.randrange(256)
        digest = fuzzy_hash(bytes(blob))
        members.append((f"sample-{i:05d}", {FEATURE_TYPE: digest},
                        f"family-{family:02d}"))
    return members


def make_queries(corpus, n: int, seed: int = 97) -> list[str]:
    """Query digests drawn from corpus members (already-hashed strings)."""

    rnd = random.Random(seed)
    return [rnd.choice(corpus)[1][FEATURE_TYPE] for _ in range(n)]


def run(n_corpus: int, n_queries: int, k: int = 10,
        index_path: Path | None = None) -> BenchResult:
    corpus = make_corpus(n_corpus)
    queries = make_queries(corpus, n_queries)

    # Rebuild-per-query path.
    start = time.perf_counter()
    rebuild_results = []
    for digest in queries:
        fresh = SimilarityIndex([FEATURE_TYPE])
        fresh.add_many(corpus)
        rebuild_results.append(fresh.top_k(digest, k))
    rebuild_seconds = time.perf_counter() - start

    # Prebuilt path: one build, many queries.
    start = time.perf_counter()
    index = SimilarityIndex([FEATURE_TYPE])
    index.add_many(corpus)
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    prebuilt_results = [index.top_k(digest, k) for digest in queries]
    prebuilt_seconds = time.perf_counter() - start

    # Persistence round-trip.
    if index_path is None:
        index_path = OUTPUT_DIR / "bench_index_topk.rpsi"
        index_path.parent.mkdir(exist_ok=True)
    start = time.perf_counter()
    index.save(index_path)
    reloaded = SimilarityIndex.load(index_path)
    reload_seconds = time.perf_counter() - start
    file_bytes = index_path.stat().st_size
    reload_results = [reloaded.top_k(digest, k) for digest in queries]

    return BenchResult(
        n_corpus=n_corpus,
        n_queries=n_queries,
        k=k,
        build_seconds=build_seconds,
        rebuild_seconds=rebuild_seconds,
        prebuilt_seconds=prebuilt_seconds,
        reload_seconds=reload_seconds,
        file_bytes=file_bytes,
        results_match=(rebuild_results == prebuilt_results == reload_results),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--corpus", type=int, default=None,
                        help="corpus size (default 1000, quick 200)")
    parser.add_argument("--queries", type=int, default=None,
                        help="query count (default 100, quick 15)")
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail (exit 1) below this speedup")
    args = parser.parse_args(argv)

    n_corpus = args.corpus if args.corpus else (200 if args.quick else 1000)
    n_queries = args.queries if args.queries else (15 if args.quick else 100)
    result = run(n_corpus, n_queries, k=args.k)

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "bench_index_topk.txt"
    out.write_text(result.table() + "\n", encoding="utf-8")
    print(result.table())
    print(f"(written to {out})")

    if not result.results_match:
        print("FAIL: prebuilt/reloaded results diverge from rebuild path",
              file=sys.stderr)
        return 1
    if result.speedup < args.min_speedup:
        print(f"FAIL: speedup {result.speedup:.1f}x is below the "
              f"{args.min_speedup:.1f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
