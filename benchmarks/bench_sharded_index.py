"""Benchmark: sharded index fan-out vs single-shard serial queries.

The :class:`repro.index.ShardedSimilarityIndex` exists to let one corpus
answer on more than one core: candidate generation runs per shard and
the batched edit-distance scoring — the hot loop of every query — fans
out over an execution backend.  This benchmark quantifies that on a
synthetic mutated-family corpus:

* **1 shard, serial** — the baseline: the same code path a plain
  :class:`~repro.index.SimilarityIndex` takes, one core;
* **N shards, process:N** — the same corpus partitioned by sample-id
  hash, queries fanned over N worker processes;
* both paths must return **bit-identical results** (also checked
  against a plain single index) — sharding is a performance knob, never
  a semantics knob, and this benchmark enforces it.

Workloads: a batch of ``top_k_digests`` queries (the serving path) and
one budgeted ``pairwise_matrix`` sweep (the corpus-analytics path).

Run directly (``python benchmarks/bench_sharded_index.py``, add
``--quick`` for the small CI-friendly configuration).  Exit status is
non-zero when either workload's multi-worker speedup falls below
``--min-speedup`` (default 2x at 4 shards) or when any result diverges,
so the script doubles as a regression tripwire;
``tests/test_sharded_bench_smoke.py`` runs the identity checks (and, on
multi-core machines, a conservative speedup floor) in tier 1.  Note the
speedup floor needs real cores: on a single-CPU machine only the
identity checks are meaningful (``--min-speedup 0`` skips the floor).
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.hashing.ssdeep import fuzzy_hash
from repro.index import ShardedSimilarityIndex, SimilarityIndex

OUTPUT_DIR = Path(__file__).parent / "output"

FEATURE_TYPE = "ssdeep-file"


@dataclass(frozen=True)
class BenchResult:
    n_corpus: int
    n_queries: int
    n_shards: int
    n_workers: int
    max_pairs: int
    topk_serial_seconds: float
    topk_parallel_seconds: float
    pairwise_serial_seconds: float
    pairwise_parallel_seconds: float
    n_candidate_pairs: int
    results_match: bool

    @property
    def topk_speedup(self) -> float:
        if self.topk_parallel_seconds <= 0:
            return float("inf")
        return self.topk_serial_seconds / self.topk_parallel_seconds

    @property
    def pairwise_speedup(self) -> float:
        if self.pairwise_parallel_seconds <= 0:
            return float("inf")
        return self.pairwise_serial_seconds / self.pairwise_parallel_seconds

    @property
    def min_speedup(self) -> float:
        return min(self.topk_speedup, self.pairwise_speedup)

    def table(self) -> str:
        lines = [
            f"corpus: {self.n_corpus} digests, {self.n_queries} top-k "
            f"queries, {self.n_candidate_pairs} scored pairwise candidates",
            f"layouts: 1 shard serial vs {self.n_shards} shards on "
            f"process:{self.n_workers} ({os.cpu_count()} CPUs visible)",
            f"{'workload':<24} {'1 shard (s)':>12} "
            f"{f'{self.n_shards} shards (s)':>14} {'speedup':>8}",
            f"{'top_k_digests batch':<24} {self.topk_serial_seconds:>12.3f} "
            f"{self.topk_parallel_seconds:>14.3f} {self.topk_speedup:>7.1f}x",
            f"{'pairwise_matrix':<24} {self.pairwise_serial_seconds:>12.3f} "
            f"{self.pairwise_parallel_seconds:>14.3f} "
            f"{self.pairwise_speedup:>7.1f}x",
            f"all results bit-identical (incl. unsharded reference): "
            f"{self.results_match}",
        ]
        return "\n".join(lines)


def make_corpus(n: int, seed: int = 20260729,
                n_families: int = 6) -> list[tuple[str, dict[str, str], str]]:
    """Synthetic digest corpus: ``n`` members across mutated families.

    The mutation rate (2–25 byte flips on 3–5 KB blobs) is tuned so
    family members get *distinct* digests that still share 7-grams:
    every query then has hundreds of unique signature pairs to score,
    which is the DP-bound regime the shard fan-out exists for (heavier
    mutation makes digests unrelated and the n-gram gate rejects
    everything; lighter mutation collapses digests to identical strings
    that de-duplicate away).
    """

    rnd = random.Random(seed)
    bases = [rnd.randbytes(3000 + rnd.randrange(2000))
             for _ in range(n_families)]
    members = []
    for i in range(n):
        family = i % n_families
        blob = bytearray(bases[family])
        for _ in range(rnd.randrange(2, 25)):
            blob[rnd.randrange(len(blob))] = rnd.randrange(256)
        digest = fuzzy_hash(bytes(blob))
        members.append((f"sample-{i:05d}", {FEATURE_TYPE: digest},
                        f"family-{family:02d}"))
    return members


def run(n_corpus: int, n_queries: int, *, n_shards: int = 4,
        n_workers: int | None = None, max_pairs: int = 150_000,
        k: int = 10) -> BenchResult:
    if n_workers is None:
        n_workers = n_shards
    corpus = make_corpus(n_corpus)
    rnd = random.Random(97)
    queries = [{FEATURE_TYPE: rnd.choice(corpus)[1][FEATURE_TYPE]}
               for _ in range(n_queries)]

    reference = SimilarityIndex([FEATURE_TYPE])
    reference.add_many(corpus)
    ref_topk = [reference.top_k_digests(q, k, min_score=0) for q in queries]
    ref_pairs = reference.pairwise_matrix(max_pairs=max_pairs)

    serial = ShardedSimilarityIndex([FEATURE_TYPE], n_shards=1,
                                    executor="serial")
    serial.add_many(corpus)
    parallel = ShardedSimilarityIndex([FEATURE_TYPE], n_shards=n_shards,
                                      executor=f"process:{n_workers}")
    parallel.add_many(corpus)
    try:
        # Warm-up (untimed): the first parallel query pays worker
        # start-up; a serving deployment pays it once per process, so it
        # does not belong in the per-query comparison.
        serial.top_k_digests(queries[0], k, min_score=0)
        parallel.top_k_digests(queries[0], k, min_score=0)

        start = time.perf_counter()
        serial_topk = [serial.top_k_digests(q, k, min_score=0)
                       for q in queries]
        topk_serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel_topk = [parallel.top_k_digests(q, k, min_score=0)
                         for q in queries]
        topk_parallel_seconds = time.perf_counter() - start

        start = time.perf_counter()
        serial_pairs = serial.pairwise_matrix(max_pairs=max_pairs)
        pairwise_serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel_pairs = parallel.pairwise_matrix(max_pairs=max_pairs)
        pairwise_parallel_seconds = time.perf_counter() - start
    finally:
        serial.close()
        parallel.close()

    results_match = (serial_topk == parallel_topk == ref_topk
                     and serial_pairs == parallel_pairs == ref_pairs)
    return BenchResult(
        n_corpus=n_corpus,
        n_queries=n_queries,
        n_shards=n_shards,
        n_workers=n_workers,
        max_pairs=max_pairs,
        topk_serial_seconds=topk_serial_seconds,
        topk_parallel_seconds=topk_parallel_seconds,
        pairwise_serial_seconds=pairwise_serial_seconds,
        pairwise_parallel_seconds=pairwise_parallel_seconds,
        n_candidate_pairs=len(serial_pairs),
        results_match=results_match,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--corpus", type=int, default=None,
                        help="corpus size (default 2500, quick 400)")
    parser.add_argument("--queries", type=int, default=None,
                        help="top-k query count (default 40, quick 8)")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard / worker count for the parallel layout")
    parser.add_argument("--max-pairs", type=int, default=None,
                        help="pairwise budget (default 150000, quick 20000)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail (exit 1) when either workload's speedup "
                             "is below this floor (0 disables; needs >= "
                             "--shards real cores to be meaningful)")
    args = parser.parse_args(argv)

    n_corpus = args.corpus if args.corpus else (400 if args.quick else 4000)
    n_queries = args.queries if args.queries else (8 if args.quick else 40)
    max_pairs = args.max_pairs if args.max_pairs else (20_000 if args.quick
                                                      else 150_000)
    result = run(n_corpus, n_queries, n_shards=args.shards,
                 max_pairs=max_pairs)

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "bench_sharded_index.txt"
    out.write_text(result.table() + "\n", encoding="utf-8")
    print(result.table())
    print(f"(written to {out})")

    if not result.results_match:
        print("FAIL: sharded results diverge from the single-index reference",
              file=sys.stderr)
        return 1
    if args.min_speedup and result.min_speedup < args.min_speedup:
        print(f"FAIL: multi-worker speedup {result.min_speedup:.1f}x is "
              f"below the {args.min_speedup:.1f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
