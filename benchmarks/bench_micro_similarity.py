"""Micro-benchmarks of the similarity engine.

The similarity feature matrix is the computational core of the method:
millions of digest pairs at paper scale.  These benchmarks compare the
batched NumPy edit-distance engine against the scalar reference and
measure the end-to-end matrix construction on the benchmark corpus.
"""

from __future__ import annotations

import random

import pytest

from repro.distance.batch import BatchEditDistance
from repro.distance.damerau import weighted_edit_distance
from repro.features.similarity import SimilarityFeatureBuilder

_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdef012345+/"


def _signature_pairs(n_pairs: int, seed: int = 0) -> tuple[list[str], list[str]]:
    rnd = random.Random(seed)
    left, right = [], []
    for _ in range(n_pairs):
        base = "".join(rnd.choices(_ALPHABET, k=rnd.randint(30, 64)))
        mutated = list(base)
        for _ in range(rnd.randint(0, 10)):
            mutated[rnd.randrange(len(mutated))] = rnd.choice(_ALPHABET)
        left.append(base)
        right.append("".join(mutated))
    return left, right


@pytest.mark.benchmark(group="micro-similarity")
def test_batched_edit_distance_5000_pairs(benchmark):
    left, right = _signature_pairs(5000)
    engine = BatchEditDistance(substitute_cost=3, transpose_cost=5)
    distances = benchmark(lambda: engine.distances_two_lists(left, right))
    assert distances.shape == (5000,)


@pytest.mark.benchmark(group="micro-similarity")
def test_scalar_edit_distance_200_pairs(benchmark):
    left, right = _signature_pairs(200, seed=1)

    def run():
        return [weighted_edit_distance(a, b) for a, b in zip(left, right)]

    distances = benchmark(run)
    assert len(distances) == 200


@pytest.mark.benchmark(group="micro-similarity")
def test_batched_matches_scalar_throughput_sanity():
    """Correctness guard for the two timed paths above (same answers)."""

    left, right = _signature_pairs(300, seed=2)
    engine = BatchEditDistance(substitute_cost=3, transpose_cost=5)
    batched = engine.distances_two_lists(left, right)
    scalar = [weighted_edit_distance(a, b) for a, b in zip(left, right)]
    assert batched.tolist() == scalar


@pytest.mark.benchmark(group="micro-similarity")
def test_similarity_matrix_construction(benchmark, bench_config, corpus_features,
                                        paper_split):
    train_features = [corpus_features[i] for i in paper_split.train_indices]
    query_features = [corpus_features[i] for i in paper_split.test_indices[:200]]
    builder = SimilarityFeatureBuilder(bench_config.feature_types)
    builder.fit(train_features)
    matrix = benchmark.pedantic(lambda: builder.transform(query_features),
                                rounds=1, iterations=2)
    assert matrix.n_samples == len(query_features)
