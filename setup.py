"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that the package can be installed in fully offline
environments where pip must fall back to a legacy (non-PEP 517)
editable install.
"""

from setuptools import setup

setup()
